#include "workloads/missrate.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "checkpoint/state_io.hh"
#include "common/logging.hh"
#include "harness/parallel_sweep.hh"

namespace memwall {

const CacheMissResult &
WorkloadMissRates::icache(const std::string &label) const
{
    for (const auto &r : icaches)
        if (r.label == label)
            return r;
    MW_FATAL("no icache measurement labelled '", label, "'");
}

const CacheMissResult &
WorkloadMissRates::dcache(const std::string &label) const
{
    for (const auto &r : dcaches)
        if (r.label == label)
            return r;
    MW_FATAL("no dcache measurement labelled '", label, "'");
}

namespace {

CacheConfig
conv(std::uint64_t capacity, std::uint32_t ways, const char *name)
{
    CacheConfig c;
    c.capacity = capacity;
    c.line_size = 32;
    c.assoc = ways;
    c.name = name;
    return c;
}

ColumnCacheConfig
withoutVictim(ColumnCacheConfig c)
{
    c.victim_enabled = false;
    return c;
}

/**
 * The full Figure 7 + Figure 8 comparison set. Shared between the
 * exhaustive and the sampled measurement loops so both study exactly
 * the same configurations.
 */
struct ComparisonCaches
{
    // Proposed device caches.
    ColumnCacheConfig pim_cfg;
    ColumnInstrCache icache_pim{pim_cfg};
    ColumnDataCache dcache_plain{withoutVictim(pim_cfg)};
    ColumnDataCache dcache_vc{pim_cfg};

    // Conventional comparison set (32-byte lines).
    std::vector<std::pair<std::string, Cache>> conv_i;
    std::vector<std::pair<std::string, Cache>> conv_d;

    ComparisonCaches()
    {
        using namespace cachelabels;
        conv_i.emplace_back(conv8, Cache(conv(8 * KiB, 1, conv8)));
        conv_i.emplace_back(conv16, Cache(conv(16 * KiB, 1, conv16)));
        conv_i.emplace_back(conv32, Cache(conv(32 * KiB, 1, conv32)));
        conv_i.emplace_back(conv64, Cache(conv(64 * KiB, 1, conv64)));
        conv_d.emplace_back(conv16, Cache(conv(16 * KiB, 1, conv16)));
        conv_d.emplace_back(conv16w2,
                            Cache(conv(16 * KiB, 2, conv16w2)));
        conv_d.emplace_back(conv64, Cache(conv(64 * KiB, 1, conv64)));
        conv_d.emplace_back(conv256w2,
                            Cache(conv(256 * KiB, 2, conv256w2)));
    }

    /** Full-detail fan-out: every cache models the reference and
     * counts it. One statically typed sink per replay loop:
     * generateInto() inlines the generator's emission loop and this
     * body together (no per-ref std::function dispatch), and the
     * interleaved replay keeps all the small tag arrays hot. A
     * buffered per-cache replay variant measured consistently slower
     * here (the dense ref buffers evict exactly the tag lines the
     * replay loops need), so the straight fan-out is the fast path as
     * well as the simple one. */
    void
    detail(const MemRef &ref)
    {
        if (ref.type == RefType::IFetch) {
            icache_pim.fetch(ref.pc);
            for (auto &[label, cache] : conv_i)
                cache.access(ref.pc, false);
        } else {
            const bool store = ref.type == RefType::Store;
            dcache_plain.access(ref.addr, store);
            dcache_vc.access(ref.addr, store);
            for (auto &[label, cache] : conv_d)
                cache.access(ref.addr, store);
        }
    }

    /** Functional warming: identical state transitions, no stats. */
    void
    warm(const MemRef &ref)
    {
        if (ref.type == RefType::IFetch) {
            icache_pim.warmFetch(ref.pc);
            for (auto &[label, cache] : conv_i)
                cache.warmAccess(ref.pc, false);
        } else {
            const bool store = ref.type == RefType::Store;
            dcache_plain.warmAccess(ref.addr, store);
            dcache_vc.warmAccess(ref.addr, store);
            for (auto &[label, cache] : conv_d)
                cache.warmAccess(ref.addr, store);
        }
    }

    void
    resetStats()
    {
        icache_pim.resetStats();
        dcache_plain.resetStats();
        dcache_vc.resetStats();
        for (auto &[label, cache] : conv_i)
            cache.resetStats();
        for (auto &[label, cache] : conv_d)
            cache.resetStats();
    }

    /**
     * Serialize every cache in the comparison set, in a fixed
     * order. Geometry guards live inside each cache's saveState.
     */
    void
    saveState(ckpt::Encoder &e) const
    {
        icache_pim.saveState(e);
        dcache_plain.saveState(e);
        dcache_vc.saveState(e);
        for (const auto &[label, cache] : conv_i)
            cache.saveState(e);
        for (const auto &[label, cache] : conv_d)
            cache.saveState(e);
    }

    /**
     * All-or-nothing restore. Applies cache by cache (never by
     * reassigning the vectors) so the AccessStats addresses the
     * UnitRates views captured at construction stay valid.
     */
    void
    loadState(ckpt::Decoder &d)
    {
        ComparisonCaches tmp = *this;
        tmp.icache_pim.loadState(d);
        tmp.dcache_plain.loadState(d);
        tmp.dcache_vc.loadState(d);
        for (auto &[label, cache] : tmp.conv_i)
            cache.loadState(d);
        for (auto &[label, cache] : tmp.conv_d)
            cache.loadState(d);
        if (d.failed())
            return;
        if (!d.atEnd()) {
            d.fail("comparison caches: trailing bytes");
            return;
        }
        icache_pim = tmp.icache_pim;
        dcache_plain = tmp.dcache_plain;
        dcache_vc = tmp.dcache_vc;
        for (std::size_t i = 0; i < conv_i.size(); ++i)
            conv_i[i].second = tmp.conv_i[i].second;
        for (std::size_t i = 0; i < conv_d.size(); ++i)
            conv_d[i].second = tmp.conv_d[i].second;
    }

    /** Label -> live stats views, in the result ordering. */
    std::vector<std::pair<std::string, const AccessStats *>>
    icacheViews() const
    {
        std::vector<std::pair<std::string, const AccessStats *>> v;
        v.emplace_back(cachelabels::proposed, &icache_pim.stats());
        for (const auto &[label, cache] : conv_i)
            v.emplace_back(label, &cache.stats());
        return v;
    }

    std::vector<std::pair<std::string, const AccessStats *>>
    dcacheViews() const
    {
        std::vector<std::pair<std::string, const AccessStats *>> v;
        v.emplace_back(cachelabels::proposed, &dcache_plain.stats());
        v.emplace_back(cachelabels::proposed_vc, &dcache_vc.stats());
        for (const auto &[label, cache] : conv_d)
            v.emplace_back(label, &cache.stats());
        return v;
    }
};

/**
 * Per-unit miss-rate accumulator over a set of stats views: snapshot
 * the counters at unit start, turn the deltas into one rate sample
 * per cache at unit end (caches a unit never touched contribute no
 * sample for that unit).
 */
class UnitRates
{
  public:
    explicit UnitRates(
        std::vector<std::pair<std::string, const AccessStats *>> views)
        : views_(std::move(views)), start_(views_.size()),
          unit_rates_(views_.size())
    {
    }

    void
    beginUnit()
    {
        for (std::size_t i = 0; i < views_.size(); ++i)
            start_[i] = {views_[i].second->accesses(),
                         views_[i].second->misses()};
    }

    void
    endUnit()
    {
        for (std::size_t i = 0; i < views_.size(); ++i) {
            const std::uint64_t accesses =
                views_[i].second->accesses() - start_[i].first;
            const std::uint64_t misses =
                views_[i].second->misses() - start_[i].second;
            if (accesses > 0)
                unit_rates_[i].add(static_cast<double>(misses) /
                                   static_cast<double>(accesses));
        }
    }

    const SampleStat &
    rates(const std::string &label) const
    {
        for (std::size_t i = 0; i < views_.size(); ++i)
            if (views_[i].first == label)
                return unit_rates_[i];
        MW_FATAL("no sampled cache labelled '", label, "'");
    }

    std::vector<SampledCacheMissRate>
    results(double level) const
    {
        std::vector<SampledCacheMissRate> out;
        out.reserve(views_.size());
        for (std::size_t i = 0; i < views_.size(); ++i)
            out.push_back(SampledCacheMissRate{
                views_[i].first, unit_rates_[i],
                confidenceInterval(unit_rates_[i], level)});
        return out;
    }

  private:
    std::vector<std::pair<std::string, const AccessStats *>> views_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> start_;
    std::vector<SampleStat> unit_rates_;
};

/**
 * Adaptive stop rule on the headline metrics (proposed icache and
 * proposed+victim dcache): converged once the half-width is within
 * target_ci relative to the mean, floored at a 1% miss rate so
 * near-zero rates (where any relative target is unreachable) still
 * terminate.
 */
bool
headlineConverged(const SamplingPlan &plan, const UnitRates &icaches,
                  const UnitRates &dcaches)
{
    const auto converged = [&](const SampleStat &s) {
        const ConfidenceInterval ci = confidenceInterval(s, plan.level);
        if (!ci.valid)
            return false;
        return ci.half_width <=
               plan.target_ci * std::max(ci.mean, 0.01);
    };
    return converged(icaches.rates(cachelabels::proposed)) &&
           converged(dcaches.rates(cachelabels::proposed_vc));
}

// Per-unit checkpoint sections: the comparison caches' post-warm
// state and the unit's generator cursor.
constexpr std::uint32_t sec_caches = ckpt::fourcc("CCHE");
constexpr std::uint32_t sec_source = ckpt::fourcc("WSRC");

std::string
unitKey(const std::string &workload, std::uint64_t unit)
{
    return workload + "-u" + std::to_string(unit);
}

/**
 * Try to replace @p caches' and @p source's state with the unit's
 * checkpoint. Applies both or neither; any container or payload
 * failure is counted by the store and reported as false (rewarm).
 */
bool
tryRestoreUnit(ckpt::CheckpointStore &store, const std::string &key,
               ComparisonCaches &caches, SyntheticWorkload &source)
{
    ckpt::CheckpointReader reader;
    if (store.load(key, reader) != ckpt::LoadError::None)
        return false;
    if (!reader.hasSection(sec_caches) ||
        !reader.hasSection(sec_source)) {
        store.noteMalformed();
        return false;
    }
    // Validate the generator payload first, then apply the caches
    // in place (ComparisonCaches::loadState is all-or-nothing and
    // keeps the stats addresses stable), then the generator: no
    // failure path leaves only one of the two applied.
    SyntheticWorkload restored_source = source;
    ckpt::Decoder ds = reader.section(sec_source);
    restored_source.loadState(ds);
    ckpt::Decoder dc = reader.section(sec_caches);
    if (ds.failed() || !ds.atEnd()) {
        store.noteMalformed();
        return false;
    }
    caches.loadState(dc);
    if (dc.failed()) {
        store.noteMalformed();
        return false;
    }
    source = std::move(restored_source);
    return true;
}

/** Populate the unit's checkpoint (best-effort: write errors are
 *  counted by the store, never fatal). */
bool
saveUnit(ckpt::CheckpointStore &store, const std::string &key,
         const ComparisonCaches &caches,
         const SyntheticWorkload &source)
{
    ckpt::CheckpointWriter w(store.configHash());
    caches.saveState(w.section(sec_caches));
    source.saveState(w.section(sec_source));
    std::string why;
    if (!store.save(key, w, &why)) {
        MW_WARN("checkpoint population failed: ", why);
        return false;
    }
    return true;
}

} // namespace

WorkloadMissRates
measureMissRates(const SpecWorkload &workload,
                 const MissRateParams &params)
{
    using namespace cachelabels;

    ComparisonCaches caches;
    SyntheticWorkload source(workload.proxy);
    if (params.stationary_start)
        source.scatterState();

    const auto replay = [&](std::uint64_t total) {
        source.generateInto(
            total, [&](const MemRef &ref) { caches.detail(ref); });
    };

    // Warm up, then reset statistics and measure.
    replay(params.warmup_refs);
    caches.resetStats();
    replay(params.measured_refs);

    WorkloadMissRates out;
    out.workload = workload.name;
    out.icaches.push_back(
        CacheMissResult{proposed, caches.icache_pim.stats()});
    for (auto &[label, cache] : caches.conv_i)
        out.icaches.push_back(CacheMissResult{label, cache.stats()});
    out.dcaches.push_back(
        CacheMissResult{proposed, caches.dcache_plain.stats()});
    out.dcaches.push_back(
        CacheMissResult{proposed_vc, caches.dcache_vc.stats()});
    for (auto &[label, cache] : caches.conv_d)
        out.dcaches.push_back(CacheMissResult{label, cache.stats()});
    return out;
}

const SampledCacheMissRate &
SampledWorkloadMissRates::icache(const std::string &label) const
{
    for (const auto &r : icaches)
        if (r.label == label)
            return r;
    MW_FATAL("no sampled icache measurement labelled '", label, "'");
}

const SampledCacheMissRate &
SampledWorkloadMissRates::dcache(const std::string &label) const
{
    for (const auto &r : dcaches)
        if (r.label == label)
            return r;
    MW_FATAL("no sampled dcache measurement labelled '", label, "'");
}

SampledWorkloadMissRates
measureMissRatesSampled(const SpecWorkload &workload,
                        const MissRateParams &params,
                        const SamplingPlan &plan)
{
    return measureMissRatesSampled(workload, params, plan, nullptr);
}

SampledWorkloadMissRates
measureMissRatesSampled(const SpecWorkload &workload,
                        const MissRateParams &params,
                        const SamplingPlan &plan,
                        ckpt::CheckpointStore *store)
{
    plan.validate();

    ComparisonCaches caches;
    UnitRates icaches(caches.icacheViews());
    UnitRates dcaches(caches.dcacheViews());

    SampledWorkloadMissRates out;
    out.workload = workload.name;
    out.plan = plan.describe();

    const auto detail_sink = [&](const MemRef &ref) {
        caches.detail(ref);
    };
    const auto warm_sink = [&](const MemRef &ref) {
        caches.warm(ref);
    };
    const auto ff_sink = [](const MemRef &) {};

    if (plan.scheme == SampleScheme::Systematic) {
        // Walk the one stream the full measurement would replay,
        // phase by phase. A trailing partial detail unit (stream
        // exhausted mid-unit) is discarded.
        SyntheticWorkload source(workload.proxy);
        SystematicCursor cursor(plan);
        std::uint64_t remaining =
            params.warmup_refs + params.measured_refs;
        // Fixed-size plans stop once every unit the stream can hold
        // has run; adaptive plans may stop earlier.
        while (remaining > 0) {
            const std::uint64_t chunk =
                std::min(cursor.phaseRemaining(), remaining);
            switch (cursor.mode()) {
            case SampleMode::FastForward:
                source.generateInto(chunk, ff_sink);
                out.ff_refs += chunk;
                break;
            case SampleMode::Warm:
                source.generateInto(chunk, warm_sink);
                out.warm_refs += chunk;
                break;
            case SampleMode::Detail:
                if (cursor.phaseRemaining() == plan.unit_refs) {
                    icaches.beginUnit();
                    dcaches.beginUnit();
                }
                source.generateInto(chunk, detail_sink);
                out.detail_refs += chunk;
                break;
            }
            cursor.advance(chunk);
            remaining -= chunk;
            if (cursor.unitJustCompleted()) {
                ++out.units;
                icaches.endUnit();
                dcaches.endUnit();
                if (plan.adaptive() && out.units >= plan.units &&
                    (out.units >= plan.max_units ||
                     headlineConverged(plan, icaches, dcaches)))
                    break;
            }
        }
    } else {
        // Stratified: each unit is an independent substream, started
        // from a stationary-state draw of the generator (see
        // SyntheticWorkload::scatterState()), measured against the
        // shared, cumulatively warmed caches. The gap between units
        // is never generated at all, which is where the speedup
        // comes from. Cache history is approximate by construction —
        // the units splice 12+ short stretches of unrelated stream
        // positions into one cache lifetime, so long-reuse-distance
        // behaviour deviates by a bounded amount from a continuous
        // run (the crosscheck bench gates the headline metrics
        // against a steady-state exhaustive run with a documented
        // tolerance). Cold per-unit caches would be worse: warming a
        // large cache from scratch inside each unit's warm window is
        // exactly the cost this scheme exists to avoid.
        const std::uint64_t base =
            pointSeed(plan.seed, workload.proxy.seed);
        const std::uint64_t floor_units = plan.units;
        const std::uint64_t cap =
            plan.adaptive() ? plan.max_units : plan.units;
        for (std::uint64_t unit = 0; unit < cap; ++unit) {
            SyntheticSpec spec = workload.proxy;
            spec.seed = pointSeed(base, unit);
            SyntheticWorkload source(spec);
            source.scatterState();
            // Checkpoint-accelerated warm phase: a hit swaps in the
            // exact post-warm cache+generator state a cold run
            // reaches here; a miss warms functionally and populates
            // the store for the next run.
            bool restored = false;
            if (store) {
                const std::string key =
                    unitKey(workload.name, unit);
                restored = tryRestoreUnit(*store, key, caches,
                                          source);
                if (restored) {
                    ++out.ckpt_restored_units;
                } else {
                    ++out.ckpt_degraded_units;
                    source.generateInto(plan.warmup_refs,
                                        warm_sink);
                    if (saveUnit(*store, key, caches, source))
                        ++out.ckpt_saved_units;
                }
            } else {
                source.generateInto(plan.warmup_refs, warm_sink);
            }
            out.warm_refs += plan.warmup_refs;
            icaches.beginUnit();
            dcaches.beginUnit();
            source.generateInto(plan.unit_refs, detail_sink);
            out.detail_refs += plan.unit_refs;
            icaches.endUnit();
            dcaches.endUnit();
            ++out.units;
            if (plan.adaptive() && out.units >= floor_units &&
                headlineConverged(plan, icaches, dcaches))
                break;
        }
    }

    out.icaches = icaches.results(plan.level);
    out.dcaches = dcaches.results(plan.level);
    return out;
}

namespace {

void
putCi(ckpt::Encoder &e, const ConfidenceInterval &ci)
{
    e.f64(ci.mean);
    e.f64(ci.half_width);
    e.f64(ci.level);
    e.varint(ci.n);
    e.u8(ci.valid ? 1 : 0);
}

void
getCi(ckpt::Decoder &d, ConfidenceInterval &ci)
{
    ci.mean = d.f64();
    ci.half_width = d.f64();
    ci.level = d.f64();
    ci.n = d.varint();
    const std::uint8_t valid = d.u8();
    if (valid > 1) {
        d.fail("confidence interval: invalid flag");
        return;
    }
    ci.valid = valid != 0;
}

} // namespace

void
encodeResult(ckpt::Encoder &e, const WorkloadMissRates &r)
{
    e.str(r.workload);
    const auto putSide = [&](const std::vector<CacheMissResult> &v) {
        e.varint(v.size());
        for (const CacheMissResult &c : v) {
            e.str(c.label);
            ckpt::putAccessStats(e, c.stats);
        }
    };
    putSide(r.icaches);
    putSide(r.dcaches);
}

bool
decodeResult(ckpt::Decoder &d, WorkloadMissRates &r)
{
    WorkloadMissRates out;
    out.workload = d.str();
    const auto getSide = [&](std::vector<CacheMissResult> &v) {
        const std::uint64_t n = d.varint();
        for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
            CacheMissResult c;
            c.label = d.str();
            ckpt::getAccessStats(d, c.stats);
            v.push_back(std::move(c));
        }
    };
    getSide(out.icaches);
    getSide(out.dcaches);
    if (d.failed() || !d.atEnd())
        return false;
    r = std::move(out);
    return true;
}

void
encodeResult(ckpt::Encoder &e, const SampledWorkloadMissRates &r)
{
    e.str(r.workload);
    e.str(r.plan);
    e.varint(r.units);
    e.varint(r.detail_refs);
    e.varint(r.warm_refs);
    e.varint(r.ff_refs);
    e.varint(r.ckpt_restored_units);
    e.varint(r.ckpt_saved_units);
    e.varint(r.ckpt_degraded_units);
    const auto putSide =
        [&](const std::vector<SampledCacheMissRate> &v) {
            e.varint(v.size());
            for (const SampledCacheMissRate &c : v) {
                e.str(c.label);
                ckpt::putSampleStat(e, c.unit_rates);
                putCi(e, c.ci);
            }
        };
    putSide(r.icaches);
    putSide(r.dcaches);
}

bool
decodeResult(ckpt::Decoder &d, SampledWorkloadMissRates &r)
{
    SampledWorkloadMissRates out;
    out.workload = d.str();
    out.plan = d.str();
    out.units = d.varint();
    out.detail_refs = d.varint();
    out.warm_refs = d.varint();
    out.ff_refs = d.varint();
    out.ckpt_restored_units = d.varint();
    out.ckpt_saved_units = d.varint();
    out.ckpt_degraded_units = d.varint();
    const auto getSide =
        [&](std::vector<SampledCacheMissRate> &v) {
            const std::uint64_t n = d.varint();
            for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
                SampledCacheMissRate c;
                c.label = d.str();
                ckpt::getSampleStat(d, c.unit_rates);
                getCi(d, c.ci);
                v.push_back(std::move(c));
            }
        };
    getSide(out.icaches);
    getSide(out.dcaches);
    if (d.failed() || !d.atEnd())
        return false;
    r = std::move(out);
    return true;
}

HierarchyRates
measureHierarchyRates(const SpecWorkload &workload,
                      const HierarchyConfig &config,
                      const MissRateParams &params)
{
    Cache l1i(config.l1i);
    Cache l1d(config.l1d);
    std::unique_ptr<Cache> l2;
    if (config.has_l2)
        l2 = std::make_unique<Cache>(config.l2);

    struct ClassCounters
    {
        std::uint64_t accesses = 0;
        std::uint64_t l1_hits = 0;
        std::uint64_t l2_hits = 0;
    };
    ClassCounters ifetch, load, store;
    bool counting = false;

    SyntheticWorkload source(workload.proxy);
    const auto sink = [&](const MemRef &ref) {
        const bool is_store = ref.type == RefType::Store;
        ClassCounters &ctr = ref.type == RefType::IFetch
            ? ifetch
            : (is_store ? store : load);
        Cache &l1 = ref.type == RefType::IFetch ? l1i : l1d;
        const bool l1_hit = l1.access(ref.addr, is_store).hit;
        bool l2_hit = false;
        if (!l1_hit && l2)
            l2_hit = l2->access(ref.addr, is_store).hit;
        if (counting) {
            ++ctr.accesses;
            if (l1_hit)
                ++ctr.l1_hits;
            else if (l2_hit)
                ++ctr.l2_hits;
        }
    };

    source.generateInto(params.warmup_refs, sink);
    counting = true;
    source.generateInto(params.measured_refs, sink);

    auto rates = [](const ClassCounters &ctr, double &hit,
                    double &l2_cond) {
        if (ctr.accesses == 0) {
            hit = 1.0;
            l2_cond = 1.0;
            return;
        }
        hit = static_cast<double>(ctr.l1_hits) /
              static_cast<double>(ctr.accesses);
        const std::uint64_t misses = ctr.accesses - ctr.l1_hits;
        l2_cond = misses
            ? static_cast<double>(ctr.l2_hits) /
                  static_cast<double>(misses)
            : 1.0;
    };

    HierarchyRates out;
    rates(ifetch, out.icache_hit, out.icache_l2_hit);
    rates(load, out.load_hit, out.load_l2_hit);
    rates(store, out.store_hit, out.store_l2_hit);
    return out;
}

HierarchyRates
measureIntegratedRates(const SpecWorkload &workload, bool victim_cache,
                       const MissRateParams &params)
{
    ColumnCacheConfig cfg;
    cfg.victim_enabled = victim_cache;
    ColumnInstrCache icache(cfg);
    ColumnDataCache dcache(cfg);

    SyntheticWorkload source(workload.proxy);
    const auto sink = [&](const MemRef &ref) {
        if (ref.type == RefType::IFetch)
            icache.fetch(ref.pc);
        else
            dcache.access(ref.addr, ref.type == RefType::Store);
    };

    source.generateInto(params.warmup_refs, sink);
    icache.resetStats();
    dcache.resetStats();
    source.generateInto(params.measured_refs, sink);

    const AccessStats &is = icache.stats();
    const AccessStats &ds = dcache.stats();

    HierarchyRates out;
    out.icache_hit = is.accesses()
        ? 1.0 - static_cast<double>(is.misses()) /
                    static_cast<double>(is.accesses())
        : 1.0;
    out.load_hit = ds.loads()
        ? static_cast<double>(ds.load_hits.value()) /
              static_cast<double>(ds.loads())
        : 1.0;
    out.store_hit = ds.stores()
        ? static_cast<double>(ds.store_hits.value()) /
              static_cast<double>(ds.stores())
        : 1.0;
    // No second level on the integrated device.
    out.icache_l2_hit = 0.0;
    out.load_l2_hit = 0.0;
    out.store_l2_hit = 0.0;
    return out;
}

} // namespace memwall
