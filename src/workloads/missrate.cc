#include "workloads/missrate.hh"

#include <memory>

#include "common/logging.hh"

namespace memwall {

const CacheMissResult &
WorkloadMissRates::icache(const std::string &label) const
{
    for (const auto &r : icaches)
        if (r.label == label)
            return r;
    MW_FATAL("no icache measurement labelled '", label, "'");
}

const CacheMissResult &
WorkloadMissRates::dcache(const std::string &label) const
{
    for (const auto &r : dcaches)
        if (r.label == label)
            return r;
    MW_FATAL("no dcache measurement labelled '", label, "'");
}

namespace {

CacheConfig
conv(std::uint64_t capacity, std::uint32_t ways, const char *name)
{
    CacheConfig c;
    c.capacity = capacity;
    c.line_size = 32;
    c.assoc = ways;
    c.name = name;
    return c;
}

} // namespace

WorkloadMissRates
measureMissRates(const SpecWorkload &workload,
                 const MissRateParams &params)
{
    using namespace cachelabels;

    // Proposed device caches.
    ColumnCacheConfig pim_cfg;
    ColumnInstrCache icache_pim(pim_cfg);
    ColumnCacheConfig no_vc = pim_cfg;
    no_vc.victim_enabled = false;
    ColumnDataCache dcache_plain(no_vc);
    ColumnDataCache dcache_vc(pim_cfg);

    // Conventional comparison set (32-byte lines).
    std::vector<std::pair<std::string, Cache>> conv_i;
    conv_i.emplace_back(conv8, Cache(conv(8 * KiB, 1, conv8)));
    conv_i.emplace_back(conv16, Cache(conv(16 * KiB, 1, conv16)));
    conv_i.emplace_back(conv32, Cache(conv(32 * KiB, 1, conv32)));
    conv_i.emplace_back(conv64, Cache(conv(64 * KiB, 1, conv64)));

    std::vector<std::pair<std::string, Cache>> conv_d;
    conv_d.emplace_back(conv16, Cache(conv(16 * KiB, 1, conv16)));
    conv_d.emplace_back(conv16w2, Cache(conv(16 * KiB, 2, conv16w2)));
    conv_d.emplace_back(conv64, Cache(conv(64 * KiB, 1, conv64)));
    conv_d.emplace_back(conv256w2,
                        Cache(conv(256 * KiB, 2, conv256w2)));

    SyntheticWorkload source(workload.proxy);

    // One statically typed sink fans each reference out to every
    // cache under study: generateInto() inlines the generator's
    // emission loop and this sink into a single body (no per-ref
    // std::function dispatch), and the interleaved replay keeps all
    // the small tag arrays hot. A buffered per-cache replay variant
    // measured consistently slower here (the dense ref buffers evict
    // exactly the tag lines the replay loops need), so the straight
    // fan-out is the fast path as well as the simple one.
    const auto sink = [&](const MemRef &ref) {
        if (ref.type == RefType::IFetch) {
            icache_pim.fetch(ref.pc);
            for (auto &[label, cache] : conv_i)
                cache.access(ref.pc, false);
        } else {
            const bool store = ref.type == RefType::Store;
            dcache_plain.access(ref.addr, store);
            dcache_vc.access(ref.addr, store);
            for (auto &[label, cache] : conv_d)
                cache.access(ref.addr, store);
        }
    };
    const auto replay = [&](std::uint64_t total) {
        source.generateInto(total, sink);
    };

    // Warm up, then reset statistics and measure.
    replay(params.warmup_refs);
    icache_pim.resetStats();
    dcache_plain.resetStats();
    dcache_vc.resetStats();
    for (auto &[label, cache] : conv_i)
        cache.resetStats();
    for (auto &[label, cache] : conv_d)
        cache.resetStats();

    replay(params.measured_refs);

    WorkloadMissRates out;
    out.workload = workload.name;
    out.icaches.push_back(
        CacheMissResult{proposed, icache_pim.stats()});
    for (auto &[label, cache] : conv_i)
        out.icaches.push_back(CacheMissResult{label, cache.stats()});
    out.dcaches.push_back(
        CacheMissResult{proposed, dcache_plain.stats()});
    out.dcaches.push_back(
        CacheMissResult{proposed_vc, dcache_vc.stats()});
    for (auto &[label, cache] : conv_d)
        out.dcaches.push_back(CacheMissResult{label, cache.stats()});
    return out;
}

HierarchyRates
measureHierarchyRates(const SpecWorkload &workload,
                      const HierarchyConfig &config,
                      const MissRateParams &params)
{
    Cache l1i(config.l1i);
    Cache l1d(config.l1d);
    std::unique_ptr<Cache> l2;
    if (config.has_l2)
        l2 = std::make_unique<Cache>(config.l2);

    struct ClassCounters
    {
        std::uint64_t accesses = 0;
        std::uint64_t l1_hits = 0;
        std::uint64_t l2_hits = 0;
    };
    ClassCounters ifetch, load, store;
    bool counting = false;

    SyntheticWorkload source(workload.proxy);
    const auto sink = [&](const MemRef &ref) {
        const bool is_store = ref.type == RefType::Store;
        ClassCounters &ctr = ref.type == RefType::IFetch
            ? ifetch
            : (is_store ? store : load);
        Cache &l1 = ref.type == RefType::IFetch ? l1i : l1d;
        const bool l1_hit = l1.access(ref.addr, is_store).hit;
        bool l2_hit = false;
        if (!l1_hit && l2)
            l2_hit = l2->access(ref.addr, is_store).hit;
        if (counting) {
            ++ctr.accesses;
            if (l1_hit)
                ++ctr.l1_hits;
            else if (l2_hit)
                ++ctr.l2_hits;
        }
    };

    source.generateInto(params.warmup_refs, sink);
    counting = true;
    source.generateInto(params.measured_refs, sink);

    auto rates = [](const ClassCounters &ctr, double &hit,
                    double &l2_cond) {
        if (ctr.accesses == 0) {
            hit = 1.0;
            l2_cond = 1.0;
            return;
        }
        hit = static_cast<double>(ctr.l1_hits) /
              static_cast<double>(ctr.accesses);
        const std::uint64_t misses = ctr.accesses - ctr.l1_hits;
        l2_cond = misses
            ? static_cast<double>(ctr.l2_hits) /
                  static_cast<double>(misses)
            : 1.0;
    };

    HierarchyRates out;
    rates(ifetch, out.icache_hit, out.icache_l2_hit);
    rates(load, out.load_hit, out.load_l2_hit);
    rates(store, out.store_hit, out.store_l2_hit);
    return out;
}

HierarchyRates
measureIntegratedRates(const SpecWorkload &workload, bool victim_cache,
                       const MissRateParams &params)
{
    ColumnCacheConfig cfg;
    cfg.victim_enabled = victim_cache;
    ColumnInstrCache icache(cfg);
    ColumnDataCache dcache(cfg);

    SyntheticWorkload source(workload.proxy);
    const auto sink = [&](const MemRef &ref) {
        if (ref.type == RefType::IFetch)
            icache.fetch(ref.pc);
        else
            dcache.access(ref.addr, ref.type == RefType::Store);
    };

    source.generateInto(params.warmup_refs, sink);
    icache.resetStats();
    dcache.resetStats();
    source.generateInto(params.measured_refs, sink);

    const AccessStats &is = icache.stats();
    const AccessStats &ds = dcache.stats();

    HierarchyRates out;
    out.icache_hit = is.accesses()
        ? 1.0 - static_cast<double>(is.misses()) /
                    static_cast<double>(is.accesses())
        : 1.0;
    out.load_hit = ds.loads()
        ? static_cast<double>(ds.load_hits.value()) /
              static_cast<double>(ds.loads())
        : 1.0;
    out.store_hit = ds.stores()
        ? static_cast<double>(ds.store_hits.value()) /
              static_cast<double>(ds.stores())
        : 1.0;
    // No second level on the integrated device.
    out.icache_l2_hit = 0.0;
    out.load_l2_hit = 0.0;
    out.store_l2_hit = 0.0;
    return out;
}

} // namespace memwall
