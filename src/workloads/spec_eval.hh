/**
 * @file
 * End-to-end SPEC'95 estimation — the Table 3 / Table 4 pipeline.
 *
 * For each benchmark: measure the proposed device's cache hit ratios
 * (Sections 5.2-5.4), dial them into the processor/memory GSPN
 * (Section 5.5), combine the resulting memory CPI with the
 * benchmark's base CPI, and convert to a SPEC ratio via the
 * per-benchmark calibration.
 */

#ifndef MEMWALL_WORKLOADS_SPEC_EVAL_HH
#define MEMWALL_WORKLOADS_SPEC_EVAL_HH

#include <string>
#include <vector>

#include "cpu/cpi_model.hh"
#include "gspn/models.hh"
#include "workloads/missrate.hh"

namespace memwall {

/** One row of Table 3 or Table 4. */
struct SpecEstimate
{
    std::string name;
    /** Measured hit ratios fed into the GSPN. */
    HierarchyRates rates;
    /** base + memory CPI decomposition. */
    CpiBreakdown cpi;
    /** Estimated SPEC ratio (k / CPI calibration). */
    double spec_ratio = 0.0;
    /** Mean memory-bank utilisation from the GSPN. */
    double bank_utilisation = 0.0;
};

/** Knobs for the estimation pipeline. */
struct SpecEvalParams
{
    MissRateParams missrate = {};
    /** Monte-Carlo instructions per GSPN evaluation. */
    std::uint64_t gspn_instructions = 150'000;
    std::uint64_t seed = 42;
    /** Banks in the integrated device (Section 5.6 sweeps this). */
    unsigned banks = 16;
    /** DRAM array access time in cycles. */
    double bank_access = 6.0;
    double bank_precharge = 4.0;
};

/**
 * Estimate one benchmark on the integrated device.
 * @param victim_cache false reproduces Table 3, true Table 4
 */
SpecEstimate estimateIntegrated(const SpecWorkload &workload,
                                bool victim_cache,
                                const SpecEvalParams &params = {});

/**
 * Estimate one benchmark on the conventional reference system of
 * Section 5.5 (16 KB split L1, 256 KB unified L2) with the given
 * L2 and memory latencies in cycles — the Figure 11 configuration.
 */
SpecEstimate estimateReference(const SpecWorkload &workload,
                               double l2_latency_cycles,
                               double memory_latency_cycles,
                               const SpecEvalParams &params = {});

/** Run estimateIntegrated over the whole SPEC table set. */
std::vector<SpecEstimate> estimateSuite(bool victim_cache,
                                        const SpecEvalParams &params = {});

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPEC_EVAL_HH
