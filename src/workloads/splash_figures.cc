#include "workloads/splash_figures.hh"

#include <cinttypes>

#include "common/logging.hh"
#include "workloads/json_text.hh"

namespace memwall {

using jsontext::appendf;

namespace {

struct FigureMeta
{
    const char *name;
    const char *title;
    const char *kernel;
    const char *dataset;
    double full_scale;
};

const FigureMeta &
meta(SplashFigure fig)
{
    static const FigureMeta table[] = {
        {"fig13_lu", "Figure 13", "lu", "200x200-matrix", 0.5},
        {"fig14_mp3d", "Figure 14", "mp3d", "10K-particles-10-steps", 1.0},
        {"fig15_ocean", "Figure 15", "ocean", "128x128-grid", 1.0},
        {"fig16_water", "Figure 16", "water", "288-molecules-4-steps", 1.0},
        {"fig17_pthor", "Figure 17", "pthor", "RISC-circuit-1000-steps", 0.3},
    };
    const auto index = static_cast<std::size_t>(fig);
    MW_ASSERT(index < sizeof(table) / sizeof(table[0]),
              "unknown SPLASH figure");
    return table[index];
}

} // namespace

const char *
splashFigureName(SplashFigure fig)
{
    return meta(fig).name;
}

const char *
splashFigureTitle(SplashFigure fig)
{
    return meta(fig).title;
}

const char *
splashFigureKernel(SplashFigure fig)
{
    return meta(fig).kernel;
}

const char *
splashFigureDataset(SplashFigure fig)
{
    return meta(fig).dataset;
}

double
splashFigureFullScale(SplashFigure fig)
{
    return meta(fig).full_scale;
}

double
resolveSplashScale(SplashFigure fig, bool quick)
{
    const double full = splashFigureFullScale(fig);
    return quick ? full / 6.0 : full;
}

const std::vector<std::string> &
splashArchs()
{
    static const std::vector<std::string> archs{
        "reference", "integrated", "integrated+vc"};
    return archs;
}

NumaConfig
splashMachineFor(const std::string &arch, unsigned nodes)
{
    NumaConfig config;
    config.nodes = nodes;
    if (arch == "reference") {
        config.arch = NodeArch::ReferenceCcNuma;
    } else if (arch == "integrated") {
        config.arch = NodeArch::Integrated;
        config.victim_cache = false;
    } else { // "integrated+vc"
        config.arch = NodeArch::Integrated;
        config.victim_cache = true;
    }
    return config;
}

std::vector<unsigned>
splashCpuCounts(std::uint64_t nodes)
{
    if (nodes == 0)
        return {1, 2, 4, 8, 16};
    MW_ASSERT(nodes <= splash_max_nodes,
              "node count above the figure's axis");
    return {static_cast<unsigned>(nodes)};
}

SplashResult
runSplashFigurePoint(SplashFigure fig, const std::string &arch,
                     unsigned ncpus, double scale,
                     const SamplingPlan *plan)
{
    SplashParams params;
    params.nprocs = ncpus;
    params.machine = splashMachineFor(arch, ncpus);
    params.scale = scale;
    params.sampling = plan;
    return runSplash(splashFigureKernel(fig), params);
}

std::vector<SplashResult>
runSplashFigure(SplashFigure fig, double scale, std::uint64_t nodes,
                const SamplingPlan *plan)
{
    std::vector<SplashResult> points;
    for (const auto &arch : splashArchs())
        for (unsigned ncpus : splashCpuCounts(nodes))
            points.push_back(
                runSplashFigurePoint(fig, arch, ncpus, scale, plan));
    return points;
}

namespace {

/** Common document head: bench tag, sampled flag, scale, nodes. */
std::string
figureHead(SplashFigure fig, bool sampled, double scale,
           std::uint64_t nodes)
{
    std::string out;
    appendf(out,
            "{\n  \"bench\": \"%s\", \"sampled\": %s, "
            "\"scale\": %s, \"nodes\": %" PRIu64 ",\n"
            "  \"points\": [\n",
            splashFigureName(fig), sampled ? "true" : "false",
            jsontext::num(scale).c_str(), nodes);
    return out;
}

/** The (arch, cpus) labels of point @p index, sweep order. */
void
pointLabels(std::uint64_t nodes, std::size_t index,
            std::string &arch, unsigned &ncpus)
{
    const auto counts = splashCpuCounts(nodes);
    arch = splashArchs()[index / counts.size()];
    ncpus = counts[index % counts.size()];
}

} // namespace

std::string
splashFigureJson(SplashFigure fig, double scale, std::uint64_t nodes,
                 const std::vector<SplashResult> &points)
{
    MW_ASSERT(points.size() ==
                  splashArchs().size() * splashCpuCounts(nodes).size(),
              "SPLASH renderer given a partial sweep");
    std::string out = figureHead(fig, false, scale, nodes);
    const double base = static_cast<double>(points[0].makespan);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SplashResult &res = points[i];
        std::string arch;
        unsigned ncpus = 0;
        pointLabels(nodes, i, arch, ncpus);
        appendf(out,
                "    {\"arch\": \"%s\", \"cpus\": %u, "
                "\"makespan\": %" PRIu64 ", \"relative_time\": %s, "
                "\"checksum\": %s}%s\n",
                arch.c_str(), ncpus,
                static_cast<std::uint64_t>(res.makespan),
                jsontext::num(static_cast<double>(res.makespan) /
                              base)
                    .c_str(),
                jsontext::num(res.checksum).c_str(),
                i + 1 < points.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

std::string
splashFigureSampledJson(SplashFigure fig, double scale,
                        std::uint64_t nodes,
                        const std::vector<SplashResult> &points)
{
    MW_ASSERT(points.size() ==
                  splashArchs().size() * splashCpuCounts(nodes).size(),
              "SPLASH renderer given a partial sweep");
    std::string out = figureHead(fig, true, scale, nodes);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SplashResult &res = points[i];
        std::string arch;
        unsigned ncpus = 0;
        pointLabels(nodes, i, arch, ncpus);
        appendf(out,
                "    {\"arch\": \"%s\", \"cpus\": %u, "
                "\"latency_mean\": %s, \"latency_half\": %s, "
                "\"units\": %" PRIu64 ", \"detail_accesses\": %" PRIu64
                ", \"ff_accesses\": %" PRIu64 ", \"checksum\": %s}%s\n",
                arch.c_str(), ncpus,
                jsontext::num(res.sampled_latency).c_str(),
                jsontext::num(res.sampled_latency_half).c_str(),
                res.sample_units, res.detail_accesses,
                res.ff_accesses,
                jsontext::num(res.checksum).c_str(),
                i + 1 < points.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace memwall
