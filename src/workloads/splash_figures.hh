/**
 * @file
 * Shared metadata, runners and JSON renderers for the SPLASH
 * figure experiments (Figures 13-17).
 *
 * The missrate_figures pattern applied to the multiprocessor
 * evaluation: the one-shot bench binaries (fig13_lu .. fig17_pthor)
 * and the resident experiment service both enumerate the same
 * (architecture x processor-count) points, execute them through
 * runSplashFigurePoint() and render the --format=json document
 * through the renderers here — so a served response is
 * byte-identical to the one-shot output by construction.
 */

#ifndef MEMWALL_WORKLOADS_SPLASH_FIGURES_HH
#define MEMWALL_WORKLOADS_SPLASH_FIGURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/splash/splash.hh"

namespace memwall {

/** Which SPLASH figure a request regenerates. */
enum class SplashFigure {
    Fig13Lu,
    Fig14Mp3d,
    Fig15Ocean,
    Fig16Water,
    Fig17Pthor,
};

/** All figures, for enumeration. */
inline constexpr SplashFigure splash_figures[] = {
    SplashFigure::Fig13Lu, SplashFigure::Fig14Mp3d,
    SplashFigure::Fig15Ocean, SplashFigure::Fig16Water,
    SplashFigure::Fig17Pthor,
};

/** "fig13_lu" .. "fig17_pthor" (the JSON "bench" tag). */
const char *splashFigureName(SplashFigure fig);
/** "Figure 13" .. "Figure 17" (banner title). */
const char *splashFigureTitle(SplashFigure fig);
/** Kernel dispatch name: "lu", "mp3d", "ocean", "water", "pthor". */
const char *splashFigureKernel(SplashFigure fig);
/** Data-set description for the banner ("200x200-matrix", ...). */
const char *splashFigureDataset(SplashFigure fig);
/** The paper-scale problem factor (1.0 = the paper's data set). */
double splashFigureFullScale(SplashFigure fig);

/** quick = full scale / 6, exactly as the bench binaries resolve. */
double resolveSplashScale(SplashFigure fig, bool quick);

/** The three Section 6 architectures, in sweep order. */
const std::vector<std::string> &splashArchs();

/** NUMA machine for one architecture name at @p nodes nodes. */
NumaConfig splashMachineFor(const std::string &arch, unsigned nodes);

/** Upper bound on a requested node count (the figures' x-axis). */
constexpr unsigned splash_max_nodes = 16;

/**
 * Processor counts swept: the full {1, 2, 4, 8, 16} axis when
 * @p nodes is 0, or just {nodes} for a single-point run.
 */
std::vector<unsigned> splashCpuCounts(std::uint64_t nodes);

/**
 * Execute one (arch, ncpus) point of @p fig at problem @p scale;
 * @p plan attaches a sampled-simulation schedule (null = exhaustive).
 * Deterministic: the kernels seed from the problem, not the caller.
 */
SplashResult runSplashFigurePoint(SplashFigure fig,
                                  const std::string &arch,
                                  unsigned ncpus, double scale,
                                  const SamplingPlan *plan);

/**
 * Run the full sweep serially, arch-major in splashArchs() order
 * then ascending processor count — the order every renderer below
 * expects.
 */
std::vector<SplashResult> runSplashFigure(SplashFigure fig,
                                          double scale,
                                          std::uint64_t nodes,
                                          const SamplingPlan *plan);

/**
 * Render exhaustive results as the figure's --format=json document
 * (trailing newline included). relative_time is normalised to the
 * first point (reference architecture, lowest processor count),
 * matching the text chart's normalisation.
 */
std::string splashFigureJson(SplashFigure fig, double scale,
                             std::uint64_t nodes,
                             const std::vector<SplashResult> &points);

/**
 * Render sampled results: mean data-access latency with its
 * confidence half-width per point. Non-finite moments (a one-unit
 * sample has no variance) render as `null`, never bare nan/inf.
 */
std::string
splashFigureSampledJson(SplashFigure fig, double scale,
                        std::uint64_t nodes,
                        const std::vector<SplashResult> &points);

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPLASH_FIGURES_HH
