#include "workloads/spec_eval.hh"

namespace memwall {

SpecEstimate
estimateIntegrated(const SpecWorkload &workload, bool victim_cache,
                   const SpecEvalParams &params)
{
    SpecEstimate est;
    est.name = workload.name;
    est.rates = measureIntegratedRates(workload, victim_cache,
                                       params.missrate);

    ProcessorModelParams model;
    model.p_load = workload.load_frac;
    model.p_store = workload.store_frac;
    model.icache_hit = est.rates.icache_hit;
    model.load_hit = est.rates.load_hit;
    model.store_hit = est.rates.store_hit;
    model.has_l2 = false;
    model.banks = params.banks;
    model.bank_access = params.bank_access;
    model.bank_precharge = params.bank_precharge;
    model.scoreboarding = true;

    const CpiEstimate mc =
        estimateCpi(model, params.gspn_instructions, params.seed);

    est.cpi.base = workload.base_cpi;
    est.cpi.memory = mc.memory_cpi;
    est.bank_utilisation = mc.bank_utilisation;
    est.spec_ratio = workload.in_spec_tables
        ? workload.calibration().ratio(est.cpi.total())
        : 0.0;
    return est;
}

SpecEstimate
estimateReference(const SpecWorkload &workload,
                  double l2_latency_cycles,
                  double memory_latency_cycles,
                  const SpecEvalParams &params)
{
    SpecEstimate est;
    est.name = workload.name;
    est.rates = measureHierarchyRates(
        workload, HierarchyConfig::reference(), params.missrate);

    ProcessorModelParams model;
    model.p_load = workload.load_frac;
    model.p_store = workload.store_frac;
    model.icache_hit = est.rates.icache_hit;
    model.icache_l2_hit = est.rates.icache_l2_hit;
    model.load_hit = est.rates.load_hit;
    model.load_l2_hit = est.rates.load_l2_hit;
    model.store_hit = est.rates.store_hit;
    model.store_l2_hit = est.rates.store_l2_hit;
    model.has_l2 = true;
    model.l2_latency = l2_latency_cycles;
    // The conventional reference machine has a dual-banked main
    // memory by default (Section 5.5); Section 5.6 sweeps 2..8.
    model.banks = params.banks ? params.banks : 2;
    model.bank_access = memory_latency_cycles;
    model.bank_precharge = params.bank_precharge;
    model.scoreboarding = true;

    const CpiEstimate mc =
        estimateCpi(model, params.gspn_instructions, params.seed);

    est.cpi.base = workload.base_cpi;
    est.cpi.memory = mc.memory_cpi;
    est.bank_utilisation = mc.bank_utilisation;
    est.spec_ratio = workload.in_spec_tables
        ? workload.calibration().ratio(est.cpi.total())
        : 0.0;
    return est;
}

std::vector<SpecEstimate>
estimateSuite(bool victim_cache, const SpecEvalParams &params)
{
    std::vector<SpecEstimate> rows;
    for (const auto &w : specSuite()) {
        if (!w.in_spec_tables)
            continue;
        rows.push_back(estimateIntegrated(w, victim_cache, params));
    }
    return rows;
}

} // namespace memwall
