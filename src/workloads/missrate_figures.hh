/**
 * @file
 * Shared runner and JSON renderer for the Figure 7/8 miss-rate
 * experiments.
 *
 * Both the one-shot bench binaries (fig7_icache_miss,
 * fig8_dcache_miss) and the resident experiment service (mw-server)
 * produce these figures; factoring the point execution and the JSON
 * text generation here is what makes "a cached server response is
 * byte-identical to the one-shot binary's --format=json output" a
 * structural property instead of a test hope: there is exactly one
 * piece of code that renders the bytes.
 */

#ifndef MEMWALL_WORKLOADS_MISSRATE_FIGURES_HH
#define MEMWALL_WORKLOADS_MISSRATE_FIGURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/missrate.hh"

namespace memwall {

class ThreadPool;

/** Which miss-rate figure a request regenerates. */
enum class MissRateFigure {
    ICache, ///< Figure 7: instruction caches
    DCache, ///< Figure 8: data caches (with victim-cache split)
};

/** "fig7_icache_miss" / "fig8_dcache_miss" (the JSON "bench" tag). */
const char *missRateFigureName(MissRateFigure fig);

/**
 * Resolve the measurement window exactly like the bench binaries do:
 * an explicit @p refs wins, otherwise quick/full defaults; warm-up is
 * a quarter of the measured window. Canonicalizing requests through
 * this function makes {"quick":true} and {"refs":400000} the same
 * cache entry.
 */
MissRateParams resolveMissRateParams(bool quick, std::uint64_t refs);

/**
 * Run every specSuite() point of @p fig serially and return the
 * results in suite order. The non-sampled miss-rate measurement is a
 * fixed function of (figure, params) — workload streams are seeded
 * from the workload proxies, not the sweep seed — so the output is
 * byte-identical no matter where or how often it runs.
 */
std::vector<WorkloadMissRates>
runMissRateFigure(MissRateFigure fig, const MissRateParams &params);

/**
 * Same sweep sharded across @p pool (one task per workload), results
 * still committed in suite order. Byte-identical to the serial
 * overload; points must not touch shared mutable state.
 */
std::vector<WorkloadMissRates>
runMissRateFigure(MissRateFigure fig, const MissRateParams &params,
                  ThreadPool &pool);

/**
 * Render @p all as the figure's --format=json document, byte for
 * byte what the one-shot binary prints (including the trailing
 * newline).
 */
std::string
missRateFigureJson(MissRateFigure fig,
                   const std::vector<WorkloadMissRates> &all);

/**
 * Run every specSuite() point of the figure under @p plan serially,
 * in suite order. The sampled measurement is a fixed function of
 * (params, plan) — stratified substreams are seeded from the plan,
 * not the sweep — so the result is position- and schedule-
 * independent, like the exhaustive runner above.
 */
std::vector<SampledWorkloadMissRates>
runMissRateFigureSampled(MissRateFigure fig,
                         const MissRateParams &params,
                         const SamplingPlan &plan);

/**
 * Render sampled results as the figure's --format=json document:
 * per-config {"mean": m, "half": h} objects plus the unit count.
 * A non-finite value (a single-unit sample has no variance, so its
 * half-width is NaN) renders as `null` — bare nan/inf would not be
 * JSON at all, and the service's strict parser rejects it.
 */
std::string missRateFigureSampledJson(
    MissRateFigure fig,
    const std::vector<SampledWorkloadMissRates> &all);

} // namespace memwall

#endif // MEMWALL_WORKLOADS_MISSRATE_FIGURES_HH
