#include "workloads/missrate_figures.hh"

#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "common/logging.hh"
#include "harness/thread_pool.hh"

namespace memwall {

namespace {

/** printf into a std::string (the figures were written with printf;
 *  keeping the exact format strings keeps the exact bytes). */
template <typename... Args>
void
appendf(std::string &out, const char *fmt, Args... args)
{
    char buf[512];
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    MW_ASSERT(n >= 0 && n < static_cast<int>(sizeof(buf)),
              "figure JSON row overflows the format buffer");
    out.append(buf, static_cast<std::size_t>(n));
}

} // namespace

const char *
missRateFigureName(MissRateFigure fig)
{
    switch (fig) {
    case MissRateFigure::ICache:
        return "fig7_icache_miss";
    case MissRateFigure::DCache:
        return "fig8_dcache_miss";
    }
    MW_PANIC("unreachable figure kind");
}

MissRateParams
resolveMissRateParams(bool quick, std::uint64_t refs)
{
    MissRateParams params;
    params.measured_refs =
        refs ? refs : (quick ? 400'000 : 4'000'000);
    params.warmup_refs = params.measured_refs / 4;
    return params;
}

std::vector<WorkloadMissRates>
runMissRateFigure(MissRateFigure fig, const MissRateParams &params)
{
    (void)fig; // both figures measure the same comparison set
    std::vector<WorkloadMissRates> all;
    for (const auto &w : specSuite())
        all.push_back(measureMissRates(w, params));
    return all;
}

std::vector<WorkloadMissRates>
runMissRateFigure(MissRateFigure fig, const MissRateParams &params,
                  ThreadPool &pool)
{
    (void)fig;
    const auto &suite = specSuite();
    std::vector<WorkloadMissRates> all(suite.size());
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        pool.submit([&, i] {
            WorkloadMissRates r = measureMissRates(suite[i], params);
            std::lock_guard<std::mutex> lock(mu);
            all[i] = std::move(r);
            ++done;
            cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == suite.size(); });
    return all;
}

std::string
missRateFigureJson(MissRateFigure fig,
                   const std::vector<WorkloadMissRates> &all)
{
    using namespace cachelabels;
    std::string out;
    appendf(out,
            "{\n  \"bench\": \"%s\", \"sampled\": false,\n"
            "  \"workloads\": [\n",
            missRateFigureName(fig));
    for (std::size_t i = 0; i < all.size(); ++i) {
        const auto &r = all[i];
        if (fig == MissRateFigure::ICache) {
            appendf(out,
                    "    {\"name\": \"%s\", \"proposed\": %.9g, "
                    "\"conv8\": %.9g, \"conv16\": %.9g, "
                    "\"conv32\": %.9g, \"conv64\": %.9g}%s\n",
                    r.workload.c_str(),
                    r.icache(proposed).missRate(),
                    r.icache(conv8).missRate(),
                    r.icache(conv16).missRate(),
                    r.icache(conv32).missRate(),
                    r.icache(conv64).missRate(),
                    i + 1 < all.size() ? "," : "");
        } else {
            const auto &pv = r.dcache(proposed_vc);
            appendf(out,
                    "    {\"name\": \"%s\", \"proposed\": %.9g, "
                    "\"conv16\": %.9g, \"conv16w2\": %.9g, "
                    "\"conv64\": %.9g, \"conv256w2\": %.9g, "
                    "\"proposed_vc\": %.9g, \"vc_load_miss\": %.9g, "
                    "\"vc_store_miss\": %.9g}%s\n",
                    r.workload.c_str(),
                    r.dcache(proposed).missRate(),
                    r.dcache(conv16).missRate(),
                    r.dcache(conv16w2).missRate(),
                    r.dcache(conv64).missRate(),
                    r.dcache(conv256w2).missRate(),
                    pv.missRate(), pv.stats.loadMissRate(),
                    pv.stats.storeMissRate(),
                    i + 1 < all.size() ? "," : "");
        }
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace memwall
