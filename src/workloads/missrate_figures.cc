#include "workloads/missrate_figures.hh"

#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "common/logging.hh"
#include "harness/thread_pool.hh"
#include "workloads/json_text.hh"

namespace memwall {

using jsontext::appendf;

const char *
missRateFigureName(MissRateFigure fig)
{
    switch (fig) {
    case MissRateFigure::ICache:
        return "fig7_icache_miss";
    case MissRateFigure::DCache:
        return "fig8_dcache_miss";
    }
    MW_PANIC("unreachable figure kind");
}

MissRateParams
resolveMissRateParams(bool quick, std::uint64_t refs)
{
    MissRateParams params;
    params.measured_refs =
        refs ? refs : (quick ? 400'000 : 4'000'000);
    params.warmup_refs = params.measured_refs / 4;
    return params;
}

std::vector<WorkloadMissRates>
runMissRateFigure(MissRateFigure fig, const MissRateParams &params)
{
    (void)fig; // both figures measure the same comparison set
    std::vector<WorkloadMissRates> all;
    for (const auto &w : specSuite())
        all.push_back(measureMissRates(w, params));
    return all;
}

std::vector<WorkloadMissRates>
runMissRateFigure(MissRateFigure fig, const MissRateParams &params,
                  ThreadPool &pool)
{
    (void)fig;
    const auto &suite = specSuite();
    std::vector<WorkloadMissRates> all(suite.size());
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        pool.submit([&, i] {
            WorkloadMissRates r = measureMissRates(suite[i], params);
            std::lock_guard<std::mutex> lock(mu);
            all[i] = std::move(r);
            ++done;
            cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == suite.size(); });
    return all;
}

std::string
missRateFigureJson(MissRateFigure fig,
                   const std::vector<WorkloadMissRates> &all)
{
    using namespace cachelabels;
    std::string out;
    appendf(out,
            "{\n  \"bench\": \"%s\", \"sampled\": false,\n"
            "  \"workloads\": [\n",
            missRateFigureName(fig));
    for (std::size_t i = 0; i < all.size(); ++i) {
        const auto &r = all[i];
        if (fig == MissRateFigure::ICache) {
            appendf(out,
                    "    {\"name\": \"%s\", \"proposed\": %.9g, "
                    "\"conv8\": %.9g, \"conv16\": %.9g, "
                    "\"conv32\": %.9g, \"conv64\": %.9g}%s\n",
                    r.workload.c_str(),
                    r.icache(proposed).missRate(),
                    r.icache(conv8).missRate(),
                    r.icache(conv16).missRate(),
                    r.icache(conv32).missRate(),
                    r.icache(conv64).missRate(),
                    i + 1 < all.size() ? "," : "");
        } else {
            const auto &pv = r.dcache(proposed_vc);
            appendf(out,
                    "    {\"name\": \"%s\", \"proposed\": %.9g, "
                    "\"conv16\": %.9g, \"conv16w2\": %.9g, "
                    "\"conv64\": %.9g, \"conv256w2\": %.9g, "
                    "\"proposed_vc\": %.9g, \"vc_load_miss\": %.9g, "
                    "\"vc_store_miss\": %.9g}%s\n",
                    r.workload.c_str(),
                    r.dcache(proposed).missRate(),
                    r.dcache(conv16).missRate(),
                    r.dcache(conv16w2).missRate(),
                    r.dcache(conv64).missRate(),
                    r.dcache(conv256w2).missRate(),
                    pv.missRate(), pv.stats.loadMissRate(),
                    pv.stats.storeMissRate(),
                    i + 1 < all.size() ? "," : "");
        }
    }
    out += "  ]\n}\n";
    return out;
}

std::vector<SampledWorkloadMissRates>
runMissRateFigureSampled(MissRateFigure fig,
                         const MissRateParams &params,
                         const SamplingPlan &plan)
{
    (void)fig; // both figures measure the same comparison set
    std::vector<SampledWorkloadMissRates> all;
    for (const auto &w : specSuite())
        all.push_back(measureMissRatesSampled(w, params, plan));
    return all;
}

namespace {

/** One sampled config as `"key": {"mean": m, "half": h}`; a
 *  non-finite moment renders as null, never bare nan/inf. */
void
appendSampledField(std::string &out, const char *key,
                   const SampledCacheMissRate &r, bool last = false)
{
    appendf(out, "\"%s\": {\"mean\": %s, \"half\": %s}%s", key,
            jsontext::num(r.mean()).c_str(),
            jsontext::num(r.ci.half_width).c_str(),
            last ? "" : ", ");
}

} // namespace

std::string
missRateFigureSampledJson(
    MissRateFigure fig, const std::vector<SampledWorkloadMissRates> &all)
{
    using namespace cachelabels;
    std::string out;
    appendf(out,
            "{\n  \"bench\": \"%s\", \"sampled\": true,\n"
            "  \"workloads\": [\n",
            missRateFigureName(fig));
    for (std::size_t i = 0; i < all.size(); ++i) {
        const auto &r = all[i];
        appendf(out, "    {\"name\": \"%s\", ", r.workload.c_str());
        if (fig == MissRateFigure::ICache) {
            appendSampledField(out, "proposed", r.icache(proposed));
            appendSampledField(out, "conv8", r.icache(conv8));
            appendSampledField(out, "conv16", r.icache(conv16));
            appendSampledField(out, "conv32", r.icache(conv32));
            appendSampledField(out, "conv64", r.icache(conv64));
        } else {
            appendSampledField(out, "proposed", r.dcache(proposed));
            appendSampledField(out, "conv16", r.dcache(conv16));
            appendSampledField(out, "conv16w2", r.dcache(conv16w2));
            appendSampledField(out, "conv64", r.dcache(conv64));
            appendSampledField(out, "conv256w2", r.dcache(conv256w2));
            appendSampledField(out, "proposed_vc",
                               r.dcache(proposed_vc));
        }
        appendf(out, "\"units\": %" PRIu64 "}%s\n", r.units,
                i + 1 < all.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace memwall
