/**
 * @file
 * The SPEC'95 + Synopsys workload registry (paper Table 2).
 *
 * Each entry couples the paper's published metadata (description,
 * base CPI from the MicroSparc-II simulator, the Table 3/4 operating
 * points used for SPEC-ratio calibration) with a SyntheticSpec proxy
 * whose instruction and data streams reproduce the benchmark's
 * locality structure. See DESIGN.md "Substitutions" for why proxies
 * stand in for the original binaries and how they were shaped.
 */

#ifndef MEMWALL_WORKLOADS_SPEC_SUITE_HH
#define MEMWALL_WORKLOADS_SPEC_SUITE_HH

#include <string>
#include <vector>

#include "cpu/cpi_model.hh"
#include "trace/synthetic.hh"

namespace memwall {

/** One benchmark: paper metadata plus its proxy model. */
struct SpecWorkload
{
    /** SPEC name, e.g. "126.gcc" (or "synopsys"). */
    std::string name;
    /** Table 2 description. */
    std::string description;
    /** True for the floating-point half of the suite. */
    bool floating_point = false;
    /** Part of the SPEC'95 tables (synopsys is not). */
    bool in_spec_tables = true;

    /** Base (functional-unit) CPI — Table 3 "cpu" component. */
    double base_cpi = 1.0;
    /** Paper's memory CPI without the victim cache (Table 3). */
    double paper_mem_cpi_novc = 0.0;
    /** Paper's total CPI with the victim cache (Table 4). */
    double paper_total_cpi_vc = 1.0;
    /** Paper's SPEC ratio without victim cache (Table 3). */
    double paper_ratio_novc = 0.0;
    /** Paper's SPEC ratio with victim cache (Table 4). */
    double paper_ratio_vc = 0.0;
    /** Alpha 21164 / DEC 8200 published ratio (Table 4). */
    double alpha_ratio = 0.0;

    /** Fraction of instructions that are loads / stores. */
    double load_frac = 0.2;
    double store_frac = 0.1;

    /** The reference-stream proxy. */
    SyntheticSpec proxy;

    /** SPEC-ratio calibration from the Table 3 operating point. */
    SpecCalibration
    calibration() const
    {
        return SpecCalibration::fromPaper(
            base_cpi + paper_mem_cpi_novc, paper_ratio_novc);
    }
};

/** @return the 18 SPEC'95 components plus the Synopsys workload. */
const std::vector<SpecWorkload> &specSuite();

/** @return the entry named @p name; fatal when unknown. */
const SpecWorkload &findWorkload(const std::string &name);

/** Names of the integer subset, in paper order. */
std::vector<std::string> integerNames();
/** Names of the floating-point subset, in paper order. */
std::vector<std::string> floatNames();

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPEC_SUITE_HH
