#include "workloads/spec_tables.hh"

#include "common/logging.hh"
#include "harness/parallel_sweep.hh"
#include "mem/hierarchy.hh"
#include "workloads/json_text.hh"

namespace memwall {

using jsontext::appendf;

std::uint64_t
resolveTable1Refs(bool quick, std::uint64_t refs)
{
    return refs ? refs : (quick ? 500'000 : 6'000'000);
}

namespace {

struct Table1Point
{
    const char *workload;
    const char *machine;
    bool half_refs; ///< SPEC'92-like composite runs at refs/2
};

constexpr Table1Point table1_layout[table1_points] = {
    {"synopsys", "SS-5", false},   {"synopsys", "SS-10/61", false},
    {"130.li", "SS-5", true},      {"130.li", "SS-10/61", true},
    {"132.ijpeg", "SS-5", true},   {"132.ijpeg", "SS-10/61", true},
};

HierarchyConfig
table1Machine(const char *name)
{
    return std::string(name) == "SS-5" ? HierarchyConfig::ss5()
                                       : HierarchyConfig::ss10();
}

} // namespace

const char *
table1PointWorkload(std::size_t index)
{
    MW_ASSERT(index < table1_points, "table1 point out of range");
    return table1_layout[index].workload;
}

const char *
table1PointMachine(std::size_t index)
{
    MW_ASSERT(index < table1_points, "table1 point out of range");
    return table1_layout[index].machine;
}

std::uint64_t
table1PointRefs(std::size_t index, std::uint64_t refs)
{
    MW_ASSERT(index < table1_points, "table1 point out of range");
    return table1_layout[index].half_refs ? refs / 2 : refs;
}

MachineRun
runTable1Point(std::size_t index, std::uint64_t refs)
{
    MW_ASSERT(index < table1_points, "table1 point out of range");
    const HierarchyConfig config =
        table1Machine(table1_layout[index].machine);
    const SpecWorkload &w =
        findWorkload(table1_layout[index].workload);
    const std::uint64_t point_refs = table1PointRefs(index, refs);

    MemoryHierarchy machine(config);
    SyntheticWorkload source(w.proxy);

    std::uint64_t instructions = 0;
    double cycles = 0;
    const RefSink sink = [&](const MemRef &ref) {
        const RefKind kind = ref.type == RefType::IFetch
            ? RefKind::IFetch
            : (ref.type == RefType::Store ? RefKind::Store
                                          : RefKind::Load);
        const auto res = machine.access(kind, ref.addr);
        if (kind == RefKind::IFetch) {
            ++instructions;
            // Base issue slot (superscalar cores spend less than a
            // cycle per instruction) plus any fetch stall.
            cycles += 1.0 / config.issue_width +
                      static_cast<double>(res.latency - 1);
        } else {
            // Data latency beyond one cycle stalls the pipeline.
            cycles += static_cast<double>(res.latency - 1);
        }
    };
    // Warm up.
    source.generate(point_refs / 4, sink);
    instructions = 0;
    cycles = 0;
    source.generate(point_refs, sink);

    MachineRun out;
    out.cpi = instructions
        ? cycles / static_cast<double>(instructions)
        : 0.0;
    out.seconds_per_ginstr =
        out.cpi * 1e9 / (config.freq_mhz * 1e6);
    return out;
}

std::vector<MachineRun>
runTable1(std::uint64_t refs)
{
    std::vector<MachineRun> points;
    for (std::size_t i = 0; i < table1_points; ++i)
        points.push_back(runTable1Point(i, refs));
    return points;
}

std::string
table1Json(const std::vector<MachineRun> &points)
{
    MW_ASSERT(points.size() == table1_points,
              "table1 renderer needs all six points");
    const MachineRun &syn5 = points[0];
    const MachineRun &syn10 = points[1];
    // "Spec'92-like" score: instructions/second on the composite,
    // normalised to the SS-5 = 64 of the paper's table.
    const double ips5 = 2.0 / (points[2].seconds_per_ginstr +
                               points[4].seconds_per_ginstr);
    const double ips10 = 2.0 / (points[3].seconds_per_ginstr +
                                points[5].seconds_per_ginstr);

    std::string out;
    appendf(out,
            "{\n  \"bench\": \"table1_ss5_vs_ss10\", "
            "\"sampled\": false,\n  \"machines\": [\n");
    appendf(out,
            "    {\"name\": \"SS-5\", \"spec92_like\": %s, "
            "\"synopsys_cpi\": %s, \"synopsys_s_per_ginstr\": %s, "
            "\"normalised_time\": %s},\n",
            jsontext::num(64.0).c_str(),
            jsontext::num(syn5.cpi).c_str(),
            jsontext::num(syn5.seconds_per_ginstr).c_str(),
            jsontext::num(1.0).c_str());
    appendf(out,
            "    {\"name\": \"SS-10/61\", \"spec92_like\": %s, "
            "\"synopsys_cpi\": %s, \"synopsys_s_per_ginstr\": %s, "
            "\"normalised_time\": %s}\n",
            jsontext::num(64.0 * ips10 / ips5).c_str(),
            jsontext::num(syn10.cpi).c_str(),
            jsontext::num(syn10.seconds_per_ginstr).c_str(),
            jsontext::num(syn10.seconds_per_ginstr /
                          syn5.seconds_per_ginstr)
                .c_str());
    out += "  ]\n}\n";
    return out;
}

SpecEvalParams
resolveSpecEvalParams(bool quick, std::uint64_t refs,
                      std::uint64_t seed)
{
    SpecEvalParams params;
    params.seed = seed;
    if (quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }
    if (refs) {
        params.missrate.measured_refs = refs;
        params.missrate.warmup_refs = refs / 4;
    }
    return params;
}

std::vector<const SpecWorkload *>
specTableWorkloads()
{
    std::vector<const SpecWorkload *> rows;
    for (const auto &w : specSuite())
        if (w.in_spec_tables)
            rows.push_back(&w);
    return rows;
}

std::uint64_t
specTablePointSeed(std::uint64_t seed, std::size_t index)
{
    return pointSeed(seed, index);
}

SpecEstimate
runSpecTablePoint(const SpecWorkload &workload, bool victim_cache,
                  const SpecEvalParams &params)
{
    return estimateIntegrated(workload, victim_cache, params);
}

std::vector<SpecEstimate>
runSpecTable(bool victim_cache, const SpecEvalParams &params)
{
    std::vector<SpecEstimate> rows;
    const auto workloads = specTableWorkloads();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        SpecEvalParams p = params;
        // Per-point stream derived from (seed, index), matching the
        // ParallelSweep derivation the one-shot binaries use.
        p.seed = specTablePointSeed(params.seed, i);
        rows.push_back(
            runSpecTablePoint(*workloads[i], victim_cache, p));
    }
    return rows;
}

const char *
specTableName(bool victim_cache)
{
    return victim_cache ? "table4_spec_estimates_vc"
                        : "table3_spec_estimates";
}

std::string
specTableJson(bool victim_cache,
              const std::vector<SpecEstimate> &rows)
{
    std::string out;
    appendf(out,
            "{\n  \"bench\": \"%s\", \"sampled\": false,\n"
            "  \"workloads\": [\n",
            specTableName(victim_cache));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SpecEstimate &est = rows[i];
        appendf(out,
                "    {\"name\": \"%s\", \"base_cpi\": %s, "
                "\"mem_cpi\": %s, \"total_cpi\": %s, "
                "\"spec_ratio\": %s, \"bank_utilisation\": %s}%s\n",
                est.name.c_str(),
                jsontext::num(est.cpi.base).c_str(),
                jsontext::num(est.cpi.memory).c_str(),
                jsontext::num(est.cpi.total()).c_str(),
                jsontext::num(est.spec_ratio).c_str(),
                jsontext::num(est.bank_utilisation).c_str(),
                i + 1 < rows.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace memwall
