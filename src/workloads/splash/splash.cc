#include "workloads/splash/splash.hh"

#include "common/logging.hh"

namespace memwall {

SplashResult
runSplash(const std::string &name, const SplashParams &params)
{
    if (name == "lu")
        return runLu(params);
    if (name == "mp3d")
        return runMp3d(params);
    if (name == "ocean")
        return runOcean(params);
    if (name == "water")
        return runWater(params);
    if (name == "pthor")
        return runPthor(params);
    MW_FATAL("unknown SPLASH kernel '", name, "'");
}

} // namespace memwall
