/**
 * @file
 * SPLASH kernels for the multiprocessor evaluation (Table 5).
 *
 * Five kernels reimplemented against the execution-driven
 * shared-memory runtime, at the paper's problem sizes:
 *
 *   LU     LU decomposition               200x200 matrix
 *   MP3D   3-D particle wind tunnel       10 K particles, 10 steps
 *   OCEAN  ocean basin simulator          128x128 grids
 *   WATER  N-body molecular dynamics      288 molecules, 4 steps
 *   PTHOR  distributed circuit simulator  RISC circuit, 1000 steps
 *
 * Each kernel computes real results (checksums verify that all
 * three architectures execute identical work) while every shared
 * access is timed by the NumaMachine.
 */

#ifndef MEMWALL_WORKLOADS_SPLASH_SPLASH_HH
#define MEMWALL_WORKLOADS_SPLASH_SPLASH_HH

#include <cstdint>
#include <string>

#include "coherence/numa.hh"
#include "sampling/plan.hh"

namespace memwall {

/** Outcome of one SPLASH run. */
struct SplashResult
{
    /** Parallel execution time in cycles (the figures' y-axis). */
    Tick makespan = 0;
    /** Total simulated data references. */
    std::uint64_t accesses = 0;
    std::uint64_t remote_loads = 0;
    std::uint64_t invalidations = 0;
    /** Numerical checksum for cross-architecture validation. */
    double checksum = 0.0;

    // Sampled-run extras (SplashParams::sampling attached). The
    // kernel still executes every instruction and every access runs
    // the full machine model (continuous functional warming), so
    // checksum, accesses and coherence counters are exact; only the
    // timing is approximate — fast-forwarded stretches charge
    // batched latencies under an inflated scheduling quantum.
    /** True when the run was sampled. */
    bool sampled = false;
    /** Detail units completed. */
    std::uint64_t sample_units = 0;
    /** Mean data-access latency over the detail units (cycles) —
     * the sampled metric of record. */
    double sampled_latency = 0.0;
    /** Confidence half-width of sampled_latency at the plan level. */
    double sampled_latency_half = 0.0;
    /** Accesses simulated in full detail / skipped entirely. */
    std::uint64_t detail_accesses = 0;
    std::uint64_t ff_accesses = 0;
};

/** Common run parameters. */
struct SplashParams
{
    /** Number of processors (= machine nodes used). */
    unsigned nprocs = 4;
    /** Machine model. */
    NumaConfig machine = {};
    /** Problem scale factor: 1.0 = the paper's data set. */
    double scale = 1.0;
    /**
     * Optional sampled-simulation plan (systematic scheme, in units
     * of data accesses). Null = exhaustive run, bit-for-bit the
     * pre-sampling behaviour.
     */
    const SamplingPlan *sampling = nullptr;
};

/** LU decomposition of an n x n matrix (paper: n = 200). */
SplashResult runLu(const SplashParams &params);

/** Particle wind tunnel (paper: 10 K particles, 10 steps). */
SplashResult runMp3d(const SplashParams &params);

/** Ocean basin red-black SOR (paper: 128x128, tol 1e-7). */
SplashResult runOcean(const SplashParams &params);

/** Water molecular dynamics (paper: 288 molecules, 4 steps). */
SplashResult runWater(const SplashParams &params);

/** Distributed digital circuit simulation (paper: RISC circuit,
 * 1000 time steps). */
SplashResult runPthor(const SplashParams &params);

/** Dispatch by name: "lu", "mp3d", "ocean", "water", "pthor". */
SplashResult runSplash(const std::string &name,
                       const SplashParams &params);

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPLASH_SPLASH_HH
