/**
 * @file
 * SPLASH LU: dense LU decomposition without pivoting, with
 * block-cyclic column ownership (the contiguous-block assignment the
 * SPLASH report recommends so that column data can be placed at its
 * owner).
 *
 * For each step k: the owner of column k scales the sub-column,
 * everyone synchronises, then each processor updates the trailing
 * columns it owns with the (remotely read) pivot column — the
 * pivot-column reads are the coherence traffic of interest.
 */

#include "workloads/splash/splash.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mp/shared.hh"
#include "workloads/splash/splash_common.hh"

namespace memwall {

namespace {

/** Column-major index. */
inline std::size_t
idx(unsigned n, unsigned i, unsigned j)
{
    return static_cast<std::size_t>(j) * n + i;
}

} // namespace

SplashResult
runLu(const SplashParams &params)
{
    const unsigned n = std::max(
        16u, static_cast<unsigned>(200 * std::sqrt(params.scale)));
    const unsigned p = params.nprocs;
    // Block-cyclic column ownership: blocks of 8 columns, so a
    // processor's columns are contiguous at roughly page granularity
    // and first-touch places them in its local DRAM.
    const unsigned block_cols = 8;
    auto owner = [&](unsigned j) {
        return (j / block_cols) % p;
    };

    MpRuntime rt(p, params.machine);
    SamplerScope sampling(rt, params);
    SharedArray<double> a(rt, static_cast<std::size_t>(n) * n, "A");

    // Deterministic diagonally dominant matrix.
    Rng rng(7321);
    for (unsigned j = 0; j < n; ++j)
        for (unsigned i = 0; i < n; ++i)
            a.raw(idx(n, i, j)) =
                (i == j) ? n + 1.0 : rng.uniformReal();

    SimBarrier barrier(p);

    rt.run([&](SimContext &ctx) {
        const unsigned me = ctx.cpuId();
        for (unsigned k = 0; k < n; ++k) {
            // Column k's owner scales the sub-column.
            if (owner(k) == me) {
                const double pivot = a.read(ctx, idx(n, k, k));
                for (unsigned i = k + 1; i < n; ++i)
                    a.update(ctx, idx(n, i, k),
                             [&](double v) { return v / pivot; });
            }
            barrier.wait(ctx);
            // Update trailing columns owned by this processor.
            for (unsigned j = k + 1; j < n; ++j) {
                if (owner(j) != me)
                    continue;
                const double akj = a.read(ctx, idx(n, k, j));
                for (unsigned i = k + 1; i < n; ++i) {
                    const double aik = a.read(ctx, idx(n, i, k));
                    a.update(ctx, idx(n, i, j), [&](double v) {
                        return v - aik * akj;
                    });
                }
            }
            barrier.wait(ctx);
        }
    });

    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i)
        sum += std::fabs(a.raw(idx(n, i, i)));
    return collectResult(rt, sum, sampling);
}

} // namespace memwall
