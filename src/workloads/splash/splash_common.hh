/**
 * @file
 * Shared helpers for the SPLASH kernel implementations.
 */

#ifndef MEMWALL_WORKLOADS_SPLASH_SPLASH_COMMON_HH
#define MEMWALL_WORKLOADS_SPLASH_SPLASH_COMMON_HH

#include <algorithm>

#include "mp/shared.hh"
#include "workloads/splash/splash.hh"

namespace memwall {

/** Collect makespan and machine counters after a run. */
inline SplashResult
collectResult(MpRuntime &rt, double checksum)
{
    SplashResult res;
    for (unsigned cpu = 0; cpu < rt.ncpus(); ++cpu)
        res.makespan =
            std::max(res.makespan, rt.scheduler().cpuTime(cpu));
    res.accesses = rt.machine().totalAccesses();
    res.remote_loads = rt.machine().totalRemoteLoads();
    res.invalidations = rt.machine().totalInvalidations();
    res.checksum = checksum;
    return res;
}

/** [first, last) slice of @p total items for @p cpu of @p p. */
struct Slice
{
    unsigned first;
    unsigned last;
};

inline Slice
sliceOf(unsigned total, unsigned cpu, unsigned p)
{
    const unsigned base = total / p;
    const unsigned extra = total % p;
    const unsigned first = cpu * base + std::min(cpu, extra);
    const unsigned count = base + (cpu < extra ? 1 : 0);
    return Slice{first, first + count};
}

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPLASH_SPLASH_COMMON_HH
