/**
 * @file
 * Shared helpers for the SPLASH kernel implementations.
 */

#ifndef MEMWALL_WORKLOADS_SPLASH_SPLASH_COMMON_HH
#define MEMWALL_WORKLOADS_SPLASH_SPLASH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/logging.hh"
#include "mp/shared.hh"
#include "sampling/splash_sampler.hh"
#include "workloads/splash/splash.hh"

namespace memwall {

/**
 * Attaches a SplashSampler to the runtime for the duration of a
 * kernel run when the params carry a sampling plan; a no-op
 * otherwise. Construct after the runtime, before rt.run().
 */
class SamplerScope
{
  public:
    SamplerScope(MpRuntime &rt, const SplashParams &params) : rt_(&rt)
    {
        if (!params.sampling)
            return;
        sampler_ = std::make_unique<SplashSampler>(
            *params.sampling, rt.ncpus(), rt.scheduler().quantum());
        rt.attachSampler(sampler_.get());
    }

    ~SamplerScope()
    {
        if (sampler_)
            rt_->attachSampler(nullptr);
    }

    SamplerScope(const SamplerScope &) = delete;
    SamplerScope &operator=(const SamplerScope &) = delete;

    /** Copy the sampled metrics into @p res (no-op when unsampled). */
    void
    fill(SplashResult &res) const
    {
        if (!sampler_)
            return;
        res.sampled = true;
        res.sample_units = sampler_->unitLatency().count();
        res.sampled_latency = sampler_->unitLatency().mean();
        res.sampled_latency_half = sampler_->latencyCi().half_width;
        res.detail_accesses = sampler_->detailAccesses();
        res.ff_accesses = sampler_->ffAccesses();
    }

    /** The attached sampler; null when the run is unsampled. */
    const SplashSampler *sampler() const { return sampler_.get(); }

  private:
    MpRuntime *rt_;
    std::unique_ptr<SplashSampler> sampler_;
};

/** Collect makespan and machine counters after a run. */
inline SplashResult
collectResult(MpRuntime &rt, double checksum)
{
    SplashResult res;
    for (unsigned cpu = 0; cpu < rt.ncpus(); ++cpu)
        res.makespan =
            std::max(res.makespan, rt.scheduler().cpuTime(cpu));
    res.accesses = rt.machine().totalAccesses();
    res.remote_loads = rt.machine().totalRemoteLoads();
    res.invalidations = rt.machine().totalInvalidations();
    res.checksum = checksum;
    return res;
}

/** collectResult() plus the sampled metrics from @p scope. */
inline SplashResult
collectResult(MpRuntime &rt, double checksum,
              const SamplerScope &scope)
{
    SplashResult res = collectResult(rt, checksum);
    scope.fill(res);
    return res;
}

/** [first, last) slice of @p total items for @p cpu of @p p. */
struct Slice
{
    unsigned first;
    unsigned last;
};

inline Slice
sliceOf(unsigned total, unsigned cpu, unsigned p)
{
    // cpu < p keeps every intermediate below `total`; without the
    // bound an out-of-range cpu silently wraps `cpu * base` in
    // unsigned arithmetic for large synthetic-scaling totals.
    MW_ASSERT(p > 0 && cpu < p,
              "sliceOf: cpu ", cpu, " out of range for ", p,
              " processors");
    const std::uint64_t base = total / p;
    const std::uint64_t extra = total % p;
    const std::uint64_t first =
        cpu * base + std::min<std::uint64_t>(cpu, extra);
    const std::uint64_t count = base + (cpu < extra ? 1 : 0);
    return Slice{static_cast<unsigned>(first),
                 static_cast<unsigned>(first + count)};
}

} // namespace memwall

#endif // MEMWALL_WORKLOADS_SPLASH_SPLASH_COMMON_HH
