/**
 * @file
 * SPLASH PTHOR: parallel distributed-time digital circuit
 * simulation. A synthetic RISC-datapath-like netlist of two-input
 * gates is simulated for 1000 time steps with the conservative
 * synchronous algorithm: on each step every processor evaluates the
 * active gates it owns (reading the — possibly remote — outputs of
 * their fan-in gates), and schedules the fan-out of toggled gates
 * for the next step through per-processor work lists.
 */

#include "workloads/splash/splash.hh"

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "workloads/splash/splash_common.hh"

namespace memwall {

namespace {

/** Gate types of the synthetic RISC circuit. */
enum GateOp : std::uint8_t { OpAnd, OpOr, OpXor, OpNand };

} // namespace

SplashResult
runPthor(const SplashParams &params)
{
    const unsigned gates = std::max(
        512u, static_cast<unsigned>(4000 * params.scale));
    const unsigned steps = std::max(
        20u, static_cast<unsigned>(1000 * params.scale));
    const unsigned p = params.nprocs;

    MpRuntime rt(p, params.machine);
    SamplerScope sampling(rt, params);
    // Netlist: per gate a 32-byte element record (output value plus
    // timestamps/event bookkeeping, as in the real PTHOR element
    // structures); the output value is the shared state the
    // processors exchange. Outputs are double-buffered so each step
    // reads the previous step's values — the conservative
    // synchronous evaluation — which also makes the computation
    // identical on every architecture.
    constexpr unsigned rec_words = 8;  // 8 x int32 = 32 bytes
    SharedArray<std::int32_t> output0(rt, gates * rec_words,
                                      "outputs0");
    SharedArray<std::int32_t> output1(rt, gates * rec_words,
                                      "outputs1");
    // Next-step activation flags (shared, written by fan-in owners).
    SharedArray<std::int32_t> active(rt, gates, "active");
    SharedArray<std::int32_t> next_active(rt, gates, "next_active");

    std::vector<std::uint32_t> fanin0(gates), fanin1(gates);
    std::vector<std::uint8_t> op(gates);
    std::vector<std::vector<std::uint32_t>> fanout(gates);

    // Build a layered netlist: gate g reads two earlier gates,
    // biased towards near neighbours (datapath locality) with a
    // fraction of long wires (control signals).
    Rng rng(194507);
    for (unsigned g = 0; g < gates; ++g) {
        auto pick = [&](unsigned limit) -> std::uint32_t {
            if (limit == 0)
                return 0;
            if (rng.bernoulli(0.8)) {
                const unsigned window = std::min(limit, 64u);
                return limit - 1 -
                       static_cast<std::uint32_t>(
                           rng.uniformInt(window));
            }
            return static_cast<std::uint32_t>(
                rng.uniformInt(limit));
        };
        fanin0[g] = pick(g);
        fanin1[g] = pick(g);
        op[g] = static_cast<std::uint8_t>(rng.uniformInt(4));
        const std::int32_t init = rng.bernoulli(0.5) ? 1 : 0;
        output0.raw(static_cast<std::size_t>(g) * rec_words) = init;
        output1.raw(static_cast<std::size_t>(g) * rec_words) = init;
        active.raw(g) = 1;
        if (g > 0) {
            fanout[fanin0[g]].push_back(g);
            fanout[fanin1[g]].push_back(g);
        }
    }

    SimBarrier barrier(p);
    std::uint64_t toggles = 0;
    SimLock toggle_lock;

    rt.run([&](SimContext &ctx) {
        const Slice mine = sliceOf(gates, ctx.cpuId(), p);
        std::uint64_t my_toggles = 0;
        std::uint64_t quiet = 0;
        (void)quiet;

        for (unsigned step = 0; step < steps; ++step) {
            SharedArray<std::int32_t> &cur =
                (step & 1) ? output1 : output0;
            SharedArray<std::int32_t> &nxt =
                (step & 1) ? output0 : output1;
            for (unsigned g = mine.first; g < mine.last; ++g) {
                if (!active.read(ctx, g))
                    continue;
                const std::int32_t a = cur.read(
                    ctx, static_cast<std::size_t>(fanin0[g]) *
                             rec_words);
                const std::int32_t b = cur.read(
                    ctx, static_cast<std::size_t>(fanin1[g]) *
                             rec_words);
                std::int32_t v = 0;
                switch (static_cast<GateOp>(op[g])) {
                  case OpAnd: v = a & b; break;
                  case OpOr: v = a | b; break;
                  case OpXor: v = a ^ b; break;
                  case OpNand: v = 1 - (a & b); break;
                }
                const std::int32_t old = cur.read(
                    ctx, static_cast<std::size_t>(g) * rec_words);
                nxt.write(ctx,
                          static_cast<std::size_t>(g) * rec_words,
                          v);
                if (v != old) {
                    ++my_toggles;
                    // Activate the fan-out for the next step
                    // (writes into other processors' partitions:
                    // the coherence traffic of event scheduling).
                    for (std::uint32_t sink : fanout[g])
                        next_active.write(ctx, sink, 1);
                } else {
                    ++quiet;
                }
            }
            barrier.wait(ctx);
            // Swap activation arrays: each processor clears its own
            // slice of the current array.
            for (unsigned g = mine.first; g < mine.last; ++g) {
                active.write(ctx, g, next_active.read(ctx, g));
                next_active.write(ctx, g, 0);
            }
            barrier.wait(ctx);
        }
        toggle_lock.acquire(ctx);
        toggles += my_toggles;
        toggle_lock.release(ctx);
    });

    return collectResult(rt, static_cast<double>(toggles), sampling);
}

} // namespace memwall
