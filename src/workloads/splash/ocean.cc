/**
 * @file
 * SPLASH OCEAN: ocean-basin simulation. The computational core is a
 * red-black successive-over-relaxation solver on a 128x128 grid,
 * iterating until the residual falls below the tolerance. Rows are
 * block-partitioned; boundary rows are the (true-sharing) coherence
 * traffic between neighbouring processors.
 */

#include "workloads/splash/splash.hh"

#include <cmath>

#include "common/rng.hh"
#include "workloads/splash/splash_common.hh"

namespace memwall {

SplashResult
runOcean(const SplashParams &params)
{
    const unsigned n = std::max(
        32u, static_cast<unsigned>(128 * std::sqrt(params.scale)));
    const double tolerance = 1e-7;
    const unsigned max_sweeps = 40;
    const unsigned p = params.nprocs;

    MpRuntime rt(p, params.machine);
    SamplerScope sampling(rt, params);
    SharedArray<double> grid(rt, static_cast<std::size_t>(n) * n,
                             "grid");
    // Per-processor partial residuals (padded to a coherence unit
    // each to avoid false sharing, as SPLASH codes do).
    const unsigned pad = coherence_unit / sizeof(double);
    SharedArray<double> residuals(rt, p * pad, "residuals");

    Rng rng(128128);
    for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < n; ++j)
            grid.raw(static_cast<std::size_t>(i) * n + j) =
                (i == 0 || j == 0 || i == n - 1 || j == n - 1)
                    ? 1.0
                    : rng.uniformReal();

    SimBarrier barrier(p);
    const double omega = 1.5;
    double final_residual = 0.0;

    rt.run([&](SimContext &ctx) {
        const unsigned me = ctx.cpuId();
        // Interior rows 1..n-2 block-partitioned.
        const Slice rows = sliceOf(n - 2, me, p);
        auto at = [&](unsigned i, unsigned j) {
            return static_cast<std::size_t>(i) * n + j;
        };

        for (unsigned sweep = 0; sweep < max_sweeps; ++sweep) {
            double local_res = 0.0;
            // Red then black half-sweeps.
            for (unsigned colour = 0; colour < 2; ++colour) {
                for (unsigned r = rows.first; r < rows.last; ++r) {
                    const unsigned i = r + 1;
                    for (unsigned j = 1 + ((i + colour) & 1);
                         j < n - 1; j += 2) {
                        const double up = grid.read(ctx, at(i - 1, j));
                        const double down =
                            grid.read(ctx, at(i + 1, j));
                        const double left =
                            grid.read(ctx, at(i, j - 1));
                        const double right =
                            grid.read(ctx, at(i, j + 1));
                        const double old = grid.read(ctx, at(i, j));
                        const double gauss =
                            0.25 * (up + down + left + right);
                        const double next =
                            old + omega * (gauss - old);
                        grid.write(ctx, at(i, j), next);
                        local_res += std::fabs(next - old);
                    }
                }
                barrier.wait(ctx);
            }
            residuals.write(ctx, me * pad, local_res);
            barrier.wait(ctx);
            // Everyone reads all partial residuals (reduction).
            double total = 0.0;
            for (unsigned q = 0; q < p; ++q)
                total += residuals.read(ctx, q * pad);
            if (me == 0)
                final_residual = total;
            if (total / (n * n) < tolerance)
                break;
            barrier.wait(ctx);
        }
    });

    return collectResult(rt, final_residual, sampling);
}

} // namespace memwall
