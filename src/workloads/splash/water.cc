/**
 * @file
 * SPLASH WATER: N-body water molecular dynamics (288 molecules,
 * 4 time steps). Each molecule is a ~600-byte structure (the paper
 * calls this out: structures are "only partially accessed", which
 * starves the 512-byte column buffers of locality, Section 6.2).
 * Molecules are statically partitioned; the O(N^2/2) force phase
 * reads every other molecule's position block and accumulates
 * forces into BOTH molecules of a pair — the true-sharing traffic
 * that dominates this benchmark.
 */

#include "workloads/splash/splash.hh"

#include <cmath>

#include "common/rng.hh"
#include "workloads/splash/splash_common.hh"

namespace memwall {

namespace {

// 600-byte molecule record = 75 doubles:
//   [0..8]   atom positions (O, H1, H2)
//   [9..17]  velocities
//   [18..26] forces
//   [27..74] higher-order predictor/corrector state (cold fields)
constexpr unsigned mol_doubles = 75;
constexpr unsigned off_pos = 0;
constexpr unsigned off_vel = 9;
constexpr unsigned off_force = 18;

} // namespace

SplashResult
runWater(const SplashParams &params)
{
    const unsigned molecules = std::max(
        16u, static_cast<unsigned>(288 * params.scale));
    const unsigned steps = 4;
    const unsigned p = params.nprocs;
    const double cutoff2 = 6.0;  // squared interaction cutoff

    MpRuntime rt(p, params.machine);
    SamplerScope sampling(rt, params);
    SharedArray<double> mol(rt,
                            static_cast<std::size_t>(molecules) *
                                mol_doubles,
                            "molecules");
    Rng rng(288288);
    const double box = std::cbrt(static_cast<double>(molecules));
    for (unsigned i = 0; i < molecules; ++i) {
        for (unsigned d = 0; d < 3; ++d) {
            const double centre = rng.uniformReal() * box * 3.1;
            // Three atoms clustered around the molecule centre.
            mol.raw(i * mol_doubles + off_pos + d) = centre;
            mol.raw(i * mol_doubles + off_pos + 3 + d) =
                centre + 0.1;
            mol.raw(i * mol_doubles + off_pos + 6 + d) =
                centre - 0.1;
            mol.raw(i * mol_doubles + off_vel + d) =
                rng.uniformReal() - 0.5;
        }
    }

    SimBarrier barrier(p);
    // One lock per molecule guards its force accumulator (the
    // SPLASH formulation).
    std::vector<SimLock> locks(molecules);

    rt.run([&](SimContext &ctx) {
        const Slice mine = sliceOf(molecules, ctx.cpuId(), p);
        auto fld = [&](unsigned m, unsigned f) {
            return static_cast<std::size_t>(m) * mol_doubles + f;
        };

        for (unsigned step = 0; step < steps; ++step) {
            // --- Force phase: owned i against all j > i ------------
            for (unsigned i = mine.first; i < mine.last; ++i) {
                double pi[3];
                double fi[3] = {0.0, 0.0, 0.0};
                // Molecule i's nine position doubles (three atoms);
                // use the centroid for the distance test.
                for (unsigned d = 0; d < 3; ++d) {
                    double c = 0.0;
                    for (unsigned atom = 0; atom < 3; ++atom)
                        c += mol.read(
                            ctx, fld(i, off_pos + 3 * atom + d));
                    pi[d] = c / 3.0;
                }
                for (unsigned j = i + 1; j < molecules; ++j) {
                    // Partial access of molecule j: the nine
                    // position doubles of its three atoms — 72 of
                    // 600 bytes, the "only partially accessed"
                    // structure of Section 6.2.
                    double pj[3];
                    double dist2 = 0.0;
                    for (unsigned d = 0; d < 3; ++d) {
                        double c = 0.0;
                        for (unsigned atom = 0; atom < 3; ++atom)
                            c += mol.read(
                                ctx,
                                fld(j, off_pos + 3 * atom + d));
                        pj[d] = c / 3.0;
                        const double dd = pi[d] - pj[d];
                        dist2 += dd * dd;
                    }
                    if (dist2 > cutoff2 || dist2 == 0.0)
                        continue;
                    const double f = 1.0 / (dist2 * dist2);
                    // The i-side sum stays in registers; only the
                    // partner molecule needs its lock (the SPLASH
                    // optimisation of accumulating locally and
                    // merging once).
                    for (unsigned d = 0; d < 3; ++d)
                        fi[d] += f * (pi[d] - pj[d]);
                    locks[j].acquire(ctx);
                    for (unsigned d = 0; d < 3; ++d)
                        mol.update(ctx, fld(j, off_force + d),
                                   [&](double v) {
                                       return v -
                                              f * (pi[d] - pj[d]);
                                   });
                    locks[j].release(ctx);
                }
                locks[i].acquire(ctx);
                for (unsigned d = 0; d < 3; ++d)
                    mol.update(ctx, fld(i, off_force + d),
                               [&](double v) { return v + fi[d]; });
                locks[i].release(ctx);
            }
            barrier.wait(ctx);
            // --- Update phase: integrate owned molecules ------------
            for (unsigned i = mine.first; i < mine.last; ++i) {
                for (unsigned d = 0; d < 3; ++d) {
                    const double f =
                        mol.read(ctx, fld(i, off_force + d));
                    const double v =
                        mol.read(ctx, fld(i, off_vel + d)) +
                        0.0001 * f;
                    mol.write(ctx, fld(i, off_vel + d), v);
                    // Move all three atoms.
                    for (unsigned atom = 0; atom < 3; ++atom)
                        mol.update(ctx,
                                   fld(i, off_pos + 3 * atom + d),
                                   [v](double x) {
                                       return x + 0.001 * v;
                                   });
                    mol.write(ctx, fld(i, off_force + d), 0.0);
                }
            }
            barrier.wait(ctx);
        }
    });

    double sum = 0.0;
    for (unsigned i = 0; i < molecules; ++i)
        for (unsigned d = 0; d < 3; ++d)
            sum += mol.raw(static_cast<std::size_t>(i) *
                               mol_doubles +
                           off_vel + d);
    return collectResult(rt, sum, sampling);
}

} // namespace memwall
