/**
 * @file
 * SPLASH MP3D: 3-D particle-based wind-tunnel simulation.
 *
 * Particles are statically assigned to processors; on every step a
 * particle moves, and the counters of the space-array cell it lands
 * in are updated in shared memory. Cell-counter updates by particles
 * owned by different processors are the notorious coherence traffic
 * that makes MP3D scale poorly on write-invalidate machines.
 */

#include "workloads/splash/splash.hh"

#include <cmath>

#include "common/rng.hh"
#include "workloads/splash/splash_common.hh"

namespace memwall {

SplashResult
runMp3d(const SplashParams &params)
{
    const unsigned particles = std::max(
        256u, static_cast<unsigned>(10'000 * params.scale));
    const unsigned steps = 10;
    const unsigned dim = 14;  // 14^3 = 2744 space cells
    const unsigned cells = dim * dim * dim;
    const unsigned p = params.nprocs;

    MpRuntime rt(p, params.machine);
    SamplerScope sampling(rt, params);
    // Particle state: x, y, z, vx, vy, vz per particle.
    SharedArray<float> part(rt, particles * 6ull, "particles");
    // Space array: population count and accumulated energy per cell.
    SharedArray<float> cell_energy(rt, cells, "cell_energy");
    SharedArray<std::int32_t> cell_count(rt, cells, "cell_count");

    Rng rng(40423);
    for (unsigned i = 0; i < particles; ++i) {
        part.raw(i * 6 + 0) = static_cast<float>(
            rng.uniformReal() * dim);
        part.raw(i * 6 + 1) = static_cast<float>(
            rng.uniformReal() * dim);
        part.raw(i * 6 + 2) = static_cast<float>(
            rng.uniformReal() * dim);
        part.raw(i * 6 + 3) =
            static_cast<float>(rng.uniformReal() - 0.2);
        part.raw(i * 6 + 4) =
            static_cast<float>(rng.uniformReal() - 0.5);
        part.raw(i * 6 + 5) =
            static_cast<float>(rng.uniformReal() - 0.5);
    }

    SimBarrier barrier(p);

    rt.run([&](SimContext &ctx) {
        const Slice mine = sliceOf(particles, ctx.cpuId(), p);
        for (unsigned step = 0; step < steps; ++step) {
            for (unsigned i = mine.first; i < mine.last; ++i) {
                // Move the particle (reads + writes, mostly local).
                float pos[3];
                for (unsigned d = 0; d < 3; ++d)
                    pos[d] = part.read(ctx, i * 6 + d);
                float vel[3];
                for (unsigned d = 0; d < 3; ++d)
                    vel[d] = part.read(ctx, i * 6 + 3 + d);
                for (unsigned d = 0; d < 3; ++d) {
                    pos[d] += vel[d];
                    // Reflecting boundaries.
                    if (pos[d] < 0.0f)
                        pos[d] = -pos[d];
                    while (pos[d] >= static_cast<float>(dim))
                        pos[d] -= static_cast<float>(dim);
                    part.write(ctx, i * 6 + d, pos[d]);
                }
                // Update the space cell (shared writes: the MP3D
                // hot spot).
                const unsigned cx = static_cast<unsigned>(pos[0]);
                const unsigned cy = static_cast<unsigned>(pos[1]);
                const unsigned cz = static_cast<unsigned>(pos[2]);
                const unsigned cell =
                    (cx * dim + cy) * dim + cz;
                cell_count.update(ctx, cell, [](std::int32_t c) {
                    return c + 1;
                });
                const float e = vel[0] * vel[0] + vel[1] * vel[1] +
                                vel[2] * vel[2];
                cell_energy.update(ctx, cell,
                                   [e](float v) { return v + e; });
            }
            barrier.wait(ctx);
        }
    });

    // Checksum over particle positions: these are written only by
    // their owners, so they are identical across architectures. The
    // cell counters are updated without locks — MP3D's famous data
    // races — and may differ by timing, exactly as on real machines.
    double sum = 0.0;
    for (unsigned i = 0; i < particles; ++i)
        for (unsigned d = 0; d < 3; ++d)
            sum += part.raw(i * 6 + d);
    return collectResult(rt, sum, sampling);
}

} // namespace memwall
