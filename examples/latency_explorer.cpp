/**
 * @file
 * Interactive version of the Figure 2 experiment: walk an array of
 * a chosen size and stride through any of the bundled machine
 * models and see the average loaded access time, level by level.
 *
 * Run: ./build/examples/latency_explorer [machine] [stride]
 *      machine: ss5 | ss10 | reference   (default: both SS models)
 *      stride : bytes between accesses   (default: 128)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/memwall.hh"

using namespace memwall;

namespace {

double
walk(const HierarchyConfig &config, std::uint64_t array_bytes,
     std::uint32_t stride, std::uint64_t refs)
{
    MemoryHierarchy machine(config);
    StrideWalker walker(0x10000000, array_bytes, stride);
    const RefSink sink = [&](const MemRef &ref) {
        machine.access(RefKind::Load, ref.addr);
    };
    walker.generate(
        std::max<std::uint64_t>(array_bytes / stride, 64), sink);
    machine.resetStats();
    walker.generate(refs, sink);
    return machine.meanLatencyNs();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<HierarchyConfig> machines;
    if (argc > 1 && std::strcmp(argv[1], "ss5") == 0)
        machines.push_back(HierarchyConfig::ss5());
    else if (argc > 1 && std::strcmp(argv[1], "ss10") == 0)
        machines.push_back(HierarchyConfig::ss10());
    else if (argc > 1 && std::strcmp(argv[1], "reference") == 0)
        machines.push_back(HierarchyConfig::reference());
    else {
        machines.push_back(HierarchyConfig::ss5());
        machines.push_back(HierarchyConfig::ss10());
    }
    const std::uint32_t stride =
        argc > 2 ? static_cast<std::uint32_t>(
                       std::strtoul(argv[2], nullptr, 0))
                 : 128;

    SeriesChart chart("Loaded memory latency, stride " +
                          std::to_string(stride) + " bytes",
                      "array KB", "ns / access");
    for (const auto &m : machines) {
        std::printf("walking %s (L1 %lluK", m.name.c_str(),
                    static_cast<unsigned long long>(
                        m.l1d.capacity / KiB));
        if (m.has_l2)
            std::printf(" + L2 %lluK",
                        static_cast<unsigned long long>(
                            m.l2.capacity / KiB));
        std::printf(", memory %.0f ns)...\n", m.memory_ns);
        for (std::uint64_t kb = 4; kb <= 32 * 1024; kb *= 2) {
            chart.addPoint(m.name, static_cast<double>(kb),
                           walk(m, kb * KiB, stride, 300'000));
        }
    }
    std::printf("\n");
    chart.print(std::cout);
    std::printf("\nEach plateau is a cache level; the cliff past "
                "the last level is the memory\nwall this library is "
                "about.\n");
    return 0;
}
