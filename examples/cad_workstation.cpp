/**
 * @file
 * The paper's motivating scenario (Sections 1-2): a big EDA job —
 * the Synopsys logic-synthesis proxy with a >50 MB working set —
 * running on three machines:
 *
 *   - the SS-5-class "low end" (slow CPU, close memory),
 *   - the SS-10/61-class "high end" (fast CPU, 1 MB L2, far memory),
 *   - the proposed integrated processor/memory device.
 *
 * SPEC-style small benchmarks reward the high-end machine; the CAD
 * job rewards whoever has the lowest memory latency. The integrated
 * device wins both ways.
 *
 * Run: ./build/examples/cad_workstation [refs]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/memwall.hh"

using namespace memwall;

namespace {

struct RunResult
{
    double cpi = 0.0;
    double ns_per_instr = 0.0;
};

/** Run @p workload's stream through a conventional machine model. */
RunResult
runConventional(const SpecWorkload &workload,
                const HierarchyConfig &config, std::uint64_t refs)
{
    MemoryHierarchy machine(config);
    SyntheticWorkload source(workload.proxy);
    std::uint64_t instructions = 0;
    double cycles = 0;
    const RefSink sink = [&](const MemRef &ref) {
        const RefKind kind = ref.type == RefType::IFetch
            ? RefKind::IFetch
            : (ref.type == RefType::Store ? RefKind::Store
                                          : RefKind::Load);
        const auto res = machine.access(kind, ref.addr);
        if (kind == RefKind::IFetch) {
            ++instructions;
            cycles += 1.0 / config.issue_width +
                      static_cast<double>(res.latency - 1);
        } else {
            cycles += static_cast<double>(res.latency - 1);
        }
    };
    source.generate(refs / 4, sink);  // warm
    instructions = 0;
    cycles = 0;
    source.generate(refs, sink);
    RunResult out;
    out.cpi = cycles / static_cast<double>(instructions);
    out.ns_per_instr = out.cpi * 1000.0 / config.freq_mhz;
    return out;
}

/** Run @p workload on the integrated device's pipeline. */
RunResult
runIntegrated(const SpecWorkload &workload, std::uint64_t refs)
{
    PimDevice device;
    SyntheticWorkload source(workload.proxy);
    PipelineSim pipeline(device, PipelineConfig{});
    source.generate(refs / 4, pipeline.sink());  // warm
    const std::uint64_t warm_instr = pipeline.instructions();
    const Tick warm_cycles = pipeline.cycles();
    source.generate(refs, pipeline.sink());
    pipeline.drain();
    RunResult out;
    out.cpi = static_cast<double>(pipeline.cycles() - warm_cycles) /
              static_cast<double>(pipeline.instructions() -
                                  warm_instr);
    out.ns_per_instr =
        out.cpi * 1000.0 / device.config().clock.freq_mhz;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 4'000'000;

    const HierarchyConfig ss5 = HierarchyConfig::ss5();
    const HierarchyConfig ss10 = HierarchyConfig::ss10();

    std::printf("The CAD-workstation scenario: who runs a >50MB "
                "logic-synthesis job fastest?\n\n");

    TextTable table("Synopsys proxy vs. a cache-friendly code "
                    "(132.ijpeg), ns per instruction");
    table.setHeader({"machine", "clock", "ijpeg ns/instr",
                     "synopsys ns/instr", "synopsys CPI"});

    const SpecWorkload &synopsys = findWorkload("synopsys");
    const SpecWorkload &ijpeg = findWorkload("132.ijpeg");

    struct Machine
    {
        const char *name;
        double mhz;
        RunResult ijpeg;
        RunResult syn;
    };
    Machine machines[3];
    machines[0] = {"SS-5 (85 MHz)", ss5.freq_mhz,
                   runConventional(ijpeg, ss5, refs / 2),
                   runConventional(synopsys, ss5, refs)};
    machines[1] = {"SS-10/61 (60 MHz + 1MB L2)", ss10.freq_mhz,
                   runConventional(ijpeg, ss10, refs / 2),
                   runConventional(synopsys, ss10, refs)};
    machines[2] = {"integrated PIM (200 MHz)", 200.0,
                   runIntegrated(ijpeg, refs / 2),
                   runIntegrated(synopsys, refs)};

    for (const auto &m : machines) {
        table.addRow({m.name, TextTable::num(m.mhz, 0) + " MHz",
                      TextTable::num(m.ijpeg.ns_per_instr, 1),
                      TextTable::num(m.syn.ns_per_instr, 1),
                      TextTable::num(m.syn.cpi, 2)});
    }
    table.print(std::cout);

    std::printf("\nReading the table:\n"
                " - On the cache-friendly code, the high-end SS-10 "
                "style machine beats the SS-5.\n"
                " - On the big EDA job the ranking flips: the SS-5's "
                "closer memory wins (the\n   paper's Table 1 "
                "anecdote).\n"
                " - The integrated device wins both, because its "
                "memory is ON the chip: a 30ns\n   array access "
                "instead of a system bus.\n");
    return 0;
}
