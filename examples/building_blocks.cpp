/**
 * @file
 * The "Lego brick" vision (Section 8): plug more integrated
 * processor/memory devices into a silicon-less motherboard and the
 * machine grows into a cache-coherent shared-memory multiprocessor.
 *
 * This example scales SPLASH OCEAN from 1 to 8 devices on the
 * execution-driven CC-NUMA model, comparing the integrated design
 * (with victim cache) against the idealised conventional CC-NUMA of
 * Section 6.1, and prints the coherence traffic each configuration
 * generated.
 *
 * Run: ./build/examples/building_blocks [scale]
 *      (scale 1.0 = the paper's 128x128 grid; default 0.3)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/memwall.hh"
#include "workloads/splash/splash.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    const double scale =
        argc > 1 ? std::strtod(argv[1], nullptr) : 0.3;

    std::printf("Scaling SPLASH OCEAN across integrated "
                "processor/memory building blocks\n(scale %.2f; 1.0 "
                "= the paper's 128x128 grid)\n\n",
                scale);

    TextTable table("OCEAN execution time and coherence traffic");
    table.setHeader({"nodes", "architecture", "Mcycles",
                     "speedup", "remote loads", "invalidations"});

    for (const char *arch : {"reference", "integrated+vc"}) {
        double base = 0.0;
        for (unsigned nodes : {1u, 2u, 4u, 8u}) {
            NumaConfig machine;
            machine.nodes = nodes;
            if (std::string(arch) == "reference") {
                machine.arch = NodeArch::ReferenceCcNuma;
            } else {
                machine.arch = NodeArch::Integrated;
                machine.victim_cache = true;
            }
            SplashParams params;
            params.nprocs = nodes;
            params.machine = machine;
            params.scale = scale;
            const SplashResult res = runSplash("ocean", params);
            if (nodes == 1)
                base = static_cast<double>(res.makespan);
            table.addRow(
                {std::to_string(nodes), arch,
                 TextTable::num(res.makespan / 1e6, 2),
                 TextTable::num(base / res.makespan, 2) + "x",
                 TextTable::intWithCommas(res.remote_loads),
                 TextTable::intWithCommas(res.invalidations)});
        }
        table.addRule();
    }
    table.print(std::cout);

    std::printf(
        "\nEach added device brings its own DRAM, its own banks and "
        "its own serial links,\nso memory bandwidth and capacity "
        "grow with the compute - the paper's Figure 18\nvision of "
        "incremental, silicon-less-motherboard scaling.\n");
    return 0;
}
