/**
 * @file
 * Quickstart: the whole library in one file.
 *
 *  1. Build the paper's integrated processor/memory device.
 *  2. Assemble a small MW32 program (vector scale + reduction).
 *  3. Execute it functionally while the device's pipeline model
 *     times every instruction fetch and data access.
 *  4. Print CPI and cache statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/memwall.hh"

using namespace memwall;

namespace {

constexpr const char *program = R"(
    ; Fill a 4 KiB array with i*3, then compute its sum.
    .equ N, 1024
    .org 0x1000
    start:
        li   r10, 0x100000      ; array base
        li   r11, N
        addi r1, r0, 0          ; i
        addi r2, r0, 0          ; value
    fill:
        sw   r2, 0(r10)
        addi r10, r10, 4
        addi r2, r2, 3
        addi r1, r1, 1
        bne  r1, r11, fill

        li   r10, 0x100000
        addi r1, r0, 0
        addi r3, r0, 0          ; sum
    sum:
        lw   r4, 0(r10)
        add  r3, r3, r4
        addi r10, r10, 4
        addi r1, r1, 1
        bne  r1, r11, sum
        halt
)";

} // namespace

int
main()
{
    // --- 1. The device: 256 Mbit DRAM + 200 MHz core + column
    // buffer caches + victim cache, exactly the Section 4 design.
    PimDevice device;
    std::printf("memwall quickstart\n");
    std::printf("device: %u DRAM banks, %llu KiB D-cache, "
                "%llu KiB I-cache, %u-entry victim cache\n\n",
                device.config().dram.banks,
                static_cast<unsigned long long>(
                    device.config().caches.dataCapacity() / KiB),
                static_cast<unsigned long long>(
                    device.config().caches.instrCapacity() / KiB),
                device.config().caches.victim.entries);

    // --- 2. Assemble.
    const AssembledProgram prog = assembleOrDie(program);
    std::printf("assembled %zu words at 0x%llx\n", prog.words.size(),
                static_cast<unsigned long long>(prog.entry));

    // --- 3. Execute: the interpreter computes; the pipeline+device
    // pair charge cycles for every reference the program makes.
    BackingStore memory;
    prog.loadInto(memory);
    Interpreter cpu(memory);
    cpu.setPc(prog.entry);

    PipelineSim pipeline(device, PipelineConfig{});
    const RefSink sink = pipeline.sink();
    const StopReason stop = cpu.run(1'000'000, &sink);
    pipeline.drain();
    if (stop != StopReason::Halted) {
        std::fprintf(stderr, "program did not halt cleanly\n");
        return 1;
    }

    // --- 4. Results: the program's answer and the machine's cost.
    const std::uint32_t sum = cpu.state().reg(3);
    std::printf("\nprogram result: sum = %u (expected %u)\n", sum,
                3u * 1023 * 1024 / 2);

    const PimDeviceStats stats = device.stats();
    std::printf("\ninstructions    : %llu\n",
                static_cast<unsigned long long>(
                    pipeline.instructions()));
    std::printf("cycles          : %llu\n",
                static_cast<unsigned long long>(pipeline.cycles()));
    std::printf("CPI             : %.3f\n", pipeline.cpi());
    std::printf("I-cache misses  : %llu (%.3f%%)\n",
                static_cast<unsigned long long>(
                    stats.icache.misses()),
                100.0 * stats.icache.missRate());
    std::printf("D-cache misses  : %llu (%.3f%%)\n",
                static_cast<unsigned long long>(
                    stats.dcache.misses()),
                100.0 * stats.dcache.missRate());
    std::printf("victim hits     : %llu\n",
                static_cast<unsigned long long>(
                    stats.victim.load_hits.value() +
                    stats.victim.store_hits.value()));
    std::printf("DRAM accesses   : %llu\n",
                static_cast<unsigned long long>(
                    stats.dram_accesses));
    std::printf("\nat 200 MHz this run takes %.1f microseconds of "
                "simulated time.\n",
                device.config().clock.cyclesToNs(pipeline.cycles()) /
                    1000.0);
    return 0;
}
