/**
 * @file
 * Regenerates Table 3: per-benchmark CPI (cpu + memory) and SPEC
 * ratio of the proposed 200 MHz integrated device with a 30 ns DRAM
 * array and NO victim cache. The paper's own numbers are printed
 * alongside for comparison.
 *
 * Parameter resolution, per-point seeding and the --format=json
 * renderer live in workloads/spec_tables so mw-server serves the
 * same bytes.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/spec_tables.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    if (!opt.json())
        benchutil::banner(
            "Table 3 - SPEC'95 estimates, no victim cache", opt);

    const SpecEvalParams params =
        resolveSpecEvalParams(opt.quick, opt.refs, opt.seed);

    // Estimate every row as an independent sweep point; commits land
    // in suite order, so `rows` matches the serial library runner.
    std::vector<SpecEstimate> rows;
    ParallelSweep<SpecEstimate> sweep(opt.jobs, opt.seed);
    for (const SpecWorkload *w : specTableWorkloads()) {
        sweep.submit(
            [w, &params](const PointContext &ctx) {
                // Per-point stream derived from (--seed, index):
                // reordering or parallelising points cannot perturb
                // another point's draws.
                SpecEvalParams p = params;
                p.seed = ctx.seed;
                return runSpecTablePoint(*w, /*victim_cache=*/false,
                                         p);
            },
            [&rows](const PointContext &, SpecEstimate est) {
                rows.push_back(std::move(est));
            });
    }
    sweep.finish();

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(specTableJson(false, rows).c_str(), stdout);
        return 0;
    }

    TextTable table("Table 3: SPEC'95 estimates (no victim cache)");
    table.setHeader({"name", "CPI [cpu+mem]", "Spec-ratio",
                     "paper CPI", "paper ratio"});
    bool fp_rule_done = false;
    const auto workloads = specTableWorkloads();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SpecWorkload &w = *workloads[i];
        const SpecEstimate &est = rows[i];
        if (w.floating_point && !fp_rule_done) {
            table.addRule();
            fp_rule_done = true;
        }
        table.addRow({w.name,
                      TextTable::num(est.cpi.base, 2) + " + " +
                          TextTable::num(est.cpi.memory, 2),
                      TextTable::num(est.spec_ratio, 1),
                      TextTable::num(w.base_cpi, 2) + " + " +
                          TextTable::num(w.paper_mem_cpi_novc, 2),
                      TextTable::num(w.paper_ratio_novc, 1)});
    }
    table.print(std::cout);
    return 0;
}
