/**
 * @file
 * Regenerates Table 3: per-benchmark CPI (cpu + memory) and SPEC
 * ratio of the proposed 200 MHz integrated device with a 30 ns DRAM
 * array and NO victim cache. The paper's own numbers are printed
 * alongside for comparison.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Table 3 - SPEC'95 estimates, no victim cache",
                      opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    if (opt.quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }
    if (opt.refs) {
        params.missrate.measured_refs = opt.refs;
        params.missrate.warmup_refs = opt.refs / 4;
    }

    TextTable table("Table 3: SPEC'95 estimates (no victim cache)");
    table.setHeader({"name", "CPI [cpu+mem]", "Spec-ratio",
                     "paper CPI", "paper ratio"});

    bool fp_rule_done = false;
    ParallelSweep<SpecEstimate> sweep(opt.jobs, opt.seed);
    for (const auto &w : specSuite()) {
        if (!w.in_spec_tables)
            continue;
        sweep.submit(
            [&w, &params](const PointContext &ctx) {
                // Per-point stream derived from (--seed, index):
                // reordering or parallelising points cannot perturb
                // another point's draws.
                SpecEvalParams p = params;
                p.seed = ctx.seed;
                return estimateIntegrated(w, /*victim_cache=*/false,
                                          p);
            },
            [&, &w = w](const PointContext &, SpecEstimate est) {
                if (w.floating_point && !fp_rule_done) {
                    table.addRule();
                    fp_rule_done = true;
                }
                table.addRow(
                    {w.name,
                     TextTable::num(est.cpi.base, 2) + " + " +
                         TextTable::num(est.cpi.memory, 2),
                     TextTable::num(est.spec_ratio, 1),
                     TextTable::num(w.base_cpi, 2) + " + " +
                         TextTable::num(w.paper_mem_cpi_novc, 2),
                     TextTable::num(w.paper_ratio_novc, 1)});
            });
    }
    sweep.finish();
    table.print(std::cout);
    return 0;
}
