/**
 * @file
 * Regenerates Figure 8: data-cache miss rates of the proposed 16 KB
 * 2-way column-buffer cache (512-byte lines), with and without the
 * victim cache, vs conventional caches with 32-byte lines.
 * Load and store miss fractions are reported separately, as in the
 * paper's stacked bars.
 */

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "harness/sweep_resume.hh"
#include "resume_util.hh"
#include "workloads/missrate.hh"
#include "workloads/missrate_figures.hh"

using namespace memwall;
using namespace memwall::cachelabels;

namespace {

constexpr std::initializer_list<const char *> extra_flags = {
    "--sample", "--ckpt-dir", "--resume"};

/** "mean±half" table cell, in percent. */
std::string
ciCell(const SampledCacheMissRate &r)
{
    return TextTable::num(r.mean() * 100, 3) + "±" +
           TextTable::num(r.ci.half_width * 100, 3);
}

/** Sampled variant: mean ± CI half-width per configuration. */
int
runSampled(const benchutil::Options &opt, const MissRateParams &params,
           const SamplingPlan &plan, const std::string &ckpt_dir,
           const std::string &resume_path)
{
    TextTable table("Figure 8 (sampled): D-cache miss % ± " +
                    TextTable::num(plan.level * 100, 0) + "% CI");
    table.setHeader({"benchmark", "proposed", "conv 16K dm",
                     "conv 16K 2w", "conv 64K dm", "conv 256K 2w",
                     "proposed+VC", "units"});
    if (!opt.json())
        std::cout << "sampling plan: " << plan.describe() << "\n\n";

    std::unique_ptr<ckpt::CheckpointStore> store =
        benchutil::makeMissRateStore(ckpt_dir, plan);

    ParallelSweep<SampledWorkloadMissRates> sweep(opt.jobs, opt.seed);
    ckpt::SweepJournal journal;
    if (!resume_path.empty()) {
        benchutil::openJournal(
            journal, resume_path,
            benchutil::missRateRunHash("fig8-sampled", opt, params,
                                       &plan));
        attachSweepJournal(
            sweep, journal,
            [](ckpt::Encoder &e, const SampledWorkloadMissRates &r) {
                encodeResult(e, r);
            },
            [](ckpt::Decoder &d, SampledWorkloadMissRates &r) {
                return decodeResult(d, r);
            });
    }
    std::vector<SampledWorkloadMissRates> all;
    for (const auto &w : specSuite()) {
        sweep.submit(
            [&w, &params, &plan, &store](const PointContext &) {
                return measureMissRatesSampled(w, params, plan,
                                               store.get());
            },
            [&all](const PointContext &,
                   SampledWorkloadMissRates rates) {
                all.push_back(std::move(rates));
            });
    }
    sweep.finish();

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes
        // (non-finite moments render as null, never bare nan/inf).
        std::fputs(
            missRateFigureSampledJson(MissRateFigure::DCache, all)
                .c_str(),
            stdout);
        return 0;
    }

    for (const auto &r : all)
        table.addRow({r.workload, ciCell(r.dcache(proposed)),
                      ciCell(r.dcache(conv16)),
                      ciCell(r.dcache(conv16w2)),
                      ciCell(r.dcache(conv64)),
                      ciCell(r.dcache(conv256w2)),
                      ciCell(r.dcache(proposed_vc)),
                      std::to_string(r.units)});
    table.print(std::cout);
    if (store)
        benchutil::printStoreCounters(*store);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, extra_flags);
    const std::string ckpt_dir =
        benchutil::checkpointDirFlag(opt, argv[0], extra_flags);
    const std::string resume_path =
        benchutil::resumePathFlag(opt, argv[0], extra_flags);
    if (!opt.json())
        benchutil::banner("Figure 8 - data cache miss rates", opt);

    const MissRateParams params =
        resolveMissRateParams(opt.quick, opt.refs);

    const std::string sample = opt.extraOr("--sample", "");
    if (!sample.empty())
        return runSampled(opt, params, parseSamplingPlan(sample),
                          ckpt_dir, resume_path);

    TextTable table(
        "Figure 8: D-cache miss probability (%), load+store");
    table.setHeader({"benchmark", "proposed", "conv 16K dm",
                     "conv 16K 2w", "conv 64K dm", "conv 256K 2w",
                     "proposed+VC", "VC gain"});

    BarChart chart("Figure 8 (bars): D-cache miss rates", "%");

    // Measure every workload as an independent sweep point; commits
    // land in suite order, so `all` matches the serial loop exactly.
    std::vector<WorkloadMissRates> all;
    ParallelSweep<WorkloadMissRates> sweep(opt.jobs, opt.seed);
    ckpt::SweepJournal journal;
    if (!resume_path.empty()) {
        benchutil::openJournal(
            journal, resume_path,
            benchutil::missRateRunHash("fig8", opt, params,
                                       nullptr));
        attachSweepJournal(
            sweep, journal,
            [](ckpt::Encoder &e, const WorkloadMissRates &r) {
                encodeResult(e, r);
            },
            [](ckpt::Decoder &d, WorkloadMissRates &r) {
                return decodeResult(d, r);
            });
    }
    for (const auto &w : specSuite()) {
        sweep.submit(
            [&w, &params](const PointContext &) {
                return measureMissRates(w, params);
            },
            [&all](const PointContext &, WorkloadMissRates rates) {
                all.push_back(std::move(rates));
            });
    }
    sweep.finish();

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(missRateFigureJson(MissRateFigure::DCache, all)
                       .c_str(),
                   stdout);
        return 0;
    }

    for (std::size_t i = 0; i < all.size(); ++i) {
        const auto &w = specSuite()[i];
        const auto &rates = all[i];
        const auto &p = rates.dcache(proposed);
        const auto &pv = rates.dcache(proposed_vc);
        const double c16 = rates.dcache(conv16).missRate();
        const double c16w = rates.dcache(conv16w2).missRate();
        const double c64 = rates.dcache(conv64).missRate();
        const double c256 = rates.dcache(conv256w2).missRate();
        table.addRow(
            {w.name, TextTable::num(p.missRate() * 100, 3),
             TextTable::num(c16 * 100, 3),
             TextTable::num(c16w * 100, 3),
             TextTable::num(c64 * 100, 3),
             TextTable::num(c256 * 100, 3),
             TextTable::num(pv.missRate() * 100, 3),
             pv.missRate() > 0
                 ? TextTable::num(p.missRate() / pv.missRate(), 1) + "x"
                 : "inf"});
        chart.add(w.name, "proposed    ", p.missRate() * 100);
        chart.add(w.name, "proposed+VC ", pv.missRate() * 100);
        chart.add(w.name, "conv-16K-dm ", c16 * 100);
        chart.add(w.name, "conv-16K-2w ", c16w * 100);
    }

    table.print(std::cout);
    std::cout << '\n';
    chart.print(std::cout);

    std::cout << "\nLoad/store split (proposed+VC), per Figure 8's "
                 "stacked bars:\n";
    TextTable split("");
    split.setHeader({"benchmark", "load-miss %", "store-miss %"});
    for (std::size_t i = 0; i < all.size(); ++i) {
        const auto &w = specSuite()[i];
        const auto &pv = all[i].dcache(proposed_vc);
        split.addRow({w.name,
                      TextTable::num(pv.stats.loadMissRate() * 100, 3),
                      TextTable::num(pv.stats.storeMissRate() * 100,
                                     3)});
    }
    split.print(std::cout);
    return 0;
}
