/**
 * @file
 * Extension study: the Section 8 frame buffer in main memory.
 *
 * "Among the more interesting capabilities of such a system is to
 * build a framebuffer that retrieves its data from the main memory
 * as it refreshes a screen" — feasible because scan-out consumes
 * only a small slice of the device's 1.6 GB/s internal bandwidth.
 * This bench quantifies that slice for real display modes, together
 * with the ordinary DRAM refresh tax, by running a memory-hungry
 * workload with the agents on and off.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/pim_device.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Extension - framebuffer scan-out and DRAM "
                      "refresh",
                      opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 300'000 : 2'000'000);
    const SpecWorkload &swim = findWorkload("102.swim");

    struct Mode
    {
        const char *name;
        bool fb;
        std::uint32_t w, h, bpp;
        bool refresh;
    };
    const Mode modes[] = {
        {"no I/O (baseline)", false, 0, 0, 0, false},
        {"refresh only", false, 0, 0, 0, true},
        {"1024x768x8 @72Hz", true, 1024, 768, 8, true},
        {"1280x1024x16 @72Hz", true, 1280, 1024, 16, true},
        {"1920x1080x24 @72Hz", true, 1920, 1080, 24, true},
    };

    TextTable table("102.swim CPI under scan-out + refresh traffic");
    table.setHeader({"mode", "scan-out MB/s", "% of 1.6 GB/s",
                     "CPI", "slowdown"});
    double base_cpi = 0.0;
    for (const Mode &mode : modes) {
        PimDeviceConfig cfg;
        cfg.refresh_enabled = mode.refresh;
        cfg.framebuffer_enabled = mode.fb;
        if (mode.fb) {
            cfg.framebuffer.width = mode.w;
            cfg.framebuffer.height = mode.h;
            cfg.framebuffer.bits_per_pixel = mode.bpp;
        }
        PimDevice device(cfg);
        SyntheticWorkload source(swim.proxy);
        const double cpi = device.runWorkload(source, refs);
        if (base_cpi == 0.0)
            base_cpi = cpi;
        const double mbps =
            mode.fb ? cfg.framebuffer.bandwidthMBps() : 0.0;
        table.addRow({mode.name, TextTable::num(mbps, 1),
                      TextTable::num(100.0 * mbps / 1600.0, 2) + "%",
                      TextTable::num(cpi, 4),
                      TextTable::num(cpi / base_cpi, 3) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: even a 1920x1080x24 display — over a "
                 "quarter of a conventional\nmemory bus — costs well "
                 "under 1% CPI here, because the sixteen banks "
                 "absorb\nthe scan-out in parallel: the integration "
                 "dividend that makes the\nsilicon-less motherboard's "
                 "memory-resident framebuffer practical.\n";
    return 0;
}
