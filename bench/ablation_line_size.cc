/**
 * @file
 * Ablation: column-buffer line size.
 *
 * Section 5.6 claims that with fewer banks one could enlarge the
 * line size, but "simulation shows that increasing the line size
 * will degrade performance due to higher resultant cache conflicts".
 * This bench sweeps the line (column) size at constant 16 KB data
 * capacity and reports D-cache miss rates per workload class.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "mem/column_cache.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Ablation - column line size at 16 KB capacity",
                      opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 400'000 : 3'000'000);

    TextTable table("D-cache miss % vs line size (2-way, 16 KB + "
                    "victim cache)");
    table.setHeader({"benchmark", "128B", "256B", "512B (paper)",
                     "1024B", "2048B"});

    constexpr std::uint32_t lines[] = {128u, 256u, 512u, 1024u,
                                       2048u};
    // Each (workload, line size) cell is one sweep point; a row is
    // assembled as its five cells commit left to right.
    ParallelSweep<double> sweep(opt.jobs, opt.seed);
    std::vector<std::string> row;
    for (const char *name : {"107.mgrid", "126.gcc", "102.swim",
                             "099.go", "101.tomcatv"}) {
        const SpecWorkload &w = findWorkload(name);
        for (std::uint32_t line : lines) {
            sweep.submit(
                [&w, line, refs](const PointContext &) {
                    ColumnCacheConfig cfg;
                    cfg.column_bytes = line;
                    cfg.banks = static_cast<std::uint32_t>(
                        16 * KiB / (2 * line));  // constant capacity
                    ColumnDataCache cache(cfg);
                    SyntheticWorkload source(w.proxy);
                    const auto sink = [&](const MemRef &ref) {
                        if (ref.type != RefType::IFetch)
                            cache.access(ref.addr,
                                         ref.type == RefType::Store);
                    };
                    source.generateInto(refs / 4, sink);
                    cache.resetStats();
                    source.generateInto(refs, sink);
                    return cache.stats().missRate() * 100;
                },
                [&table, &row, &w, line](const PointContext &,
                                         double miss_pct) {
                    if (row.empty())
                        row.push_back(w.name);
                    row.push_back(TextTable::num(miss_pct, 3));
                    if (line == 2048u) {
                        table.addRow(std::move(row));
                        row.clear();
                    }
                });
        }
    }
    sweep.finish();
    table.print(std::cout);
    std::cout << "\nExpected: longer lines help streaming codes "
                 "(mgrid) but hurt conflict-prone\nones (more so "
                 "past 512B, where only 4-8 sets remain) — the "
                 "paper's argument for\nkeeping 16 banks.\n";
    return 0;
}
