/**
 * @file
 * validation_static_crosscheck — hold the static workload
 * characterizer to account against real execution.
 *
 * For every guest kernel, the characterizer predicts the dynamic
 * instruction mix, the stride of each load/store site, and the
 * touched-memory footprint from the CFG/dataflow analysis alone;
 * the interpreter then runs the same program, counting per-pc
 * instruction classes, per-site effective-address deltas, and
 * touched bytes. The bench fails (exit 1) if any prediction
 * disagrees with the measurement beyond the kernel's declared
 * tolerance — this is the static-analysis analogue of the CPI
 * crosscheck: two independent paths to the same numbers.
 *
 * Checks per kernel:
 *   total   |static - dynamic| instruction count within mix_tol
 *   mix     every class count within mix_tol of the dynamic total
 *   stride  each Strided/Constant site's predicted stride is the
 *           dominant dynamic delta, covering >= stride_frac of the
 *           site's references (Unknown sites are exempt)
 *   footprint  union of predicted regions within footprint_tol of
 *           touched bytes (a statically incomplete footprint must
 *           instead be a subset: static <= dynamic)
 *   bound   the abstract interpreter's footprint upper bound exists
 *           (every site carries an address interval, even the
 *           data-dependent ones affine analysis calls Unknown) and
 *           covers the dynamically touched bytes: bound >= dynamic
 *
 * `--format=json` emits the per-kernel deltas machine-readably.
 */

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.hh"
#include "analysis/charact.hh"
#include "analysis/lint.hh"
#include "bench_util.hh"
#include "exec/fast_executor.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "mem/backing_store.hh"

using namespace memwall;

namespace {

struct Kernel
{
    const char *name;
    const char *path;  ///< relative to the repository root
    double mix_tol;    ///< fraction of the dynamic total
    double stride_frac;
    double footprint_tol;
};

// All kernels are built to be statically analysable, so the
// tolerances are tight; they absorb only boundary effects (loop
// prologue references, nest-edge strides).
const Kernel kKernels[] = {
    {"dotproduct", "tools/samples/dotproduct.s", 0.01, 0.90, 0.02},
    {"saxpy", "bench/kernels/saxpy.mw32s", 0.01, 0.90, 0.02},
    {"lu", "bench/kernels/lu.mw32s", 0.01, 0.90, 0.02},
    {"ocean", "bench/kernels/ocean.mw32s", 0.01, 0.85, 0.02},
    {"water", "bench/kernels/water.mw32s", 0.01, 0.90, 0.02},
    // relu's predicted mix leans on the 50/50 branch heuristic;
    // the alternating-sign input makes it exact, but declare room.
    {"relu", "bench/kernels/relu.mw32s", 0.02, 0.90, 0.02},
    // histogram's bucket accesses are data-dependent: stride and
    // footprint checks degrade to Unknown-exempt / subset mode.
    {"histogram", "bench/kernels/histogram.mw32s", 0.01, 0.90, 0.02},
};

enum class Cls { Alu, Load, Store, Branch, Jump, Other };

Cls
classOf(const Instruction &inst, bool decoded)
{
    if (!decoded)
        return Cls::Other;
    if (isLoad(inst.op))
        return Cls::Load;
    if (isStore(inst.op))
        return Cls::Store;
    if (isBranch(inst.op))
        return Cls::Branch;
    if (inst.op == Opcode::Jal || inst.op == Opcode::Jalr)
        return Cls::Jump;
    if (inst.op == Opcode::Halt || inst.op == Opcode::Sync)
        return Cls::Other;
    return Cls::Alu;
}

struct SiteStats
{
    std::uint64_t refs = 0;
    Addr last = 0;
    std::map<std::int64_t, std::uint64_t> deltas;
};

struct KernelResult
{
    std::string name;
    double static_total = 0, dynamic_total = 0;
    double stat[6] = {}, dyn[6] = {};
    std::uint64_t static_footprint = 0, dynamic_footprint = 0;
    bool footprint_complete = true;
    std::uint64_t footprint_bound = 0;
    bool footprint_bounded = false;
    struct Site
    {
        unsigned line;
        std::string kind;
        std::int64_t static_stride;
        std::int64_t dominant_delta;
        double match_frac;
        bool ok;
    };
    std::vector<Site> sites;
    std::vector<std::string> failures;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

KernelResult
runKernel(const Kernel &k)
{
    KernelResult r;
    r.name = k.name;

    const std::string path =
        std::string(MEMWALL_SOURCE_DIR) + "/" + k.path;
    AssembledProgram asmprog = assemble(slurp(path), k.path);
    if (!asmprog.ok()) {
        for (const auto &e : asmprog.errors)
            std::fprintf(stderr, "%s\n", e.format(k.path).c_str());
        std::exit(2);
    }

    // Static side.
    Program prog = Program::build(asmprog);
    Cfg cfg = Cfg::build(prog);
    Dataflow df = Dataflow::build(prog, cfg);
    StaticCharacterization chr = characterize(prog, cfg, df);
    AbsInt ai = AbsInt::build(prog, cfg, df, chr);
    annotateRanges(prog, chr, ai);

    r.stat[0] = chr.counts.alu;
    r.stat[1] = chr.counts.load;
    r.stat[2] = chr.counts.store;
    r.stat[3] = chr.counts.branch;
    r.stat[4] = chr.counts.jump;
    r.stat[5] = chr.counts.other;
    r.static_total = chr.counts.total();
    r.static_footprint = chr.footprint_bytes;
    r.footprint_complete = chr.footprint_known;
    r.footprint_bound = chr.footprint_bound_bytes;
    r.footprint_bounded = chr.footprint_bounded;

    // Dynamic side: per-pc class counts, per-site EA deltas,
    // touched-byte intervals.
    BackingStore mem;
    asmprog.loadInto(mem);
    // Fast path by default; MEMWALL_FASTPATH=0 falls back to the
    // plain interpreter with byte-identical output (CI diffs both).
    FastExecutor cpu(mem, asmprog);
    cpu.setPc(asmprog.entry);

    std::map<Addr, Cls> cls_of;
    for (const InstrRecord &rec : prog.instrs())
        cls_of[rec.addr] = classOf(rec.inst, rec.decoded);

    std::uint64_t dyn_cls[6] = {};
    std::map<Addr, SiteStats> sites;
    std::map<Addr, Addr> touched;  // begin -> end, disjoint

    auto touch = [&](Addr begin, Addr end) {
        auto it = touched.upper_bound(begin);
        if (it != touched.begin()) {
            --it;
            if (it->second >= begin) {
                begin = it->first;
                end = std::max(end, it->second);
                it = touched.erase(it);
            } else {
                ++it;
            }
        }
        while (it != touched.end() && it->first <= end) {
            end = std::max(end, it->second);
            it = touched.erase(it);
        }
        touched[begin] = end;
    };

    RefSink sink = [&](const MemRef &ref) {
        if (ref.type == RefType::IFetch) {
            auto it = cls_of.find(ref.pc);
            ++dyn_cls[static_cast<int>(
                it != cls_of.end() ? it->second : Cls::Other)];
            return;
        }
        SiteStats &s = sites[ref.pc];
        if (s.refs > 0)
            ++s.deltas[static_cast<std::int64_t>(ref.addr) -
                       static_cast<std::int64_t>(s.last)];
        s.last = ref.addr;
        ++s.refs;
        touch(ref.addr, ref.addr + ref.size);
    };

    StopReason stop = cpu.run(10'000'000, &sink);
    if (stop != StopReason::Halted)
        r.failures.push_back("kernel did not halt cleanly");

    for (int c = 0; c < 6; ++c) {
        r.dyn[c] = static_cast<double>(dyn_cls[c]);
        r.dynamic_total += r.dyn[c];
    }
    for (auto &[b, e] : touched)
        r.dynamic_footprint += e - b;

    // --- Checks ------------------------------------------------
    static const char *cls_names[6] = {"alu",    "load", "store",
                                       "branch", "jump", "other"};
    const double tol = k.mix_tol * std::max(r.dynamic_total, 1.0);
    if (std::abs(r.static_total - r.dynamic_total) > tol)
        r.failures.push_back("total instruction count off: static " +
                             std::to_string(r.static_total) +
                             " vs dynamic " +
                             std::to_string(r.dynamic_total));
    for (int c = 0; c < 6; ++c)
        if (std::abs(r.stat[c] - r.dyn[c]) > tol)
            r.failures.push_back(
                std::string(cls_names[c]) + " count off: static " +
                std::to_string(r.stat[c]) + " vs dynamic " +
                std::to_string(r.dyn[c]));

    for (const MemOpChar &m : chr.memops) {
        Addr pc = prog.instr(m.instr).addr;
        auto it = sites.find(pc);
        if (it == sites.end())
            continue;  // site never executed (e.g. cold arm)
        const SiteStats &s = it->second;

        KernelResult::Site site;
        site.line = m.line;
        site.ok = true;
        site.static_stride =
            m.kind == MemOpChar::Kind::Strided ? m.stride : 0;
        site.kind = m.kind == MemOpChar::Kind::Constant ? "constant"
                    : m.kind == MemOpChar::Kind::Strided
                        ? "strided"
                        : "unknown";
        site.dominant_delta = 0;
        std::uint64_t best = 0, ndeltas = 0, matching = 0;
        // A site on a conditional path inside its loop skips
        // iterations, so any multiple of the stride is consistent
        // with the prediction.
        auto consistent = [&](std::int64_t d) {
            if (d == site.static_stride)
                return true;
            return m.conditional && site.static_stride != 0 &&
                   d % site.static_stride == 0;
        };
        for (auto &[d, n] : s.deltas) {
            ndeltas += n;
            if (consistent(d))
                matching += n;
            if (n > best) {
                best = n;
                site.dominant_delta = d;
            }
        }
        site.match_frac =
            ndeltas == 0 ? 1.0
                         : static_cast<double>(matching) /
                               static_cast<double>(ndeltas);

        if (m.kind != MemOpChar::Kind::Unknown && ndeltas > 0) {
            if (!consistent(site.dominant_delta) ||
                site.match_frac < k.stride_frac) {
                site.ok = false;
                r.failures.push_back(
                    "line " + std::to_string(m.line) +
                    ": predicted stride " +
                    std::to_string(site.static_stride) +
                    " but dominant dynamic delta is " +
                    std::to_string(site.dominant_delta) + " (" +
                    std::to_string(site.match_frac) + " match)");
            }
        }
        r.sites.push_back(site);
    }

    const double fp_dyn = static_cast<double>(r.dynamic_footprint);
    const double fp_stat = static_cast<double>(r.static_footprint);
    if (r.footprint_complete) {
        if (std::abs(fp_stat - fp_dyn) >
            k.footprint_tol * std::max(fp_dyn, 1.0))
            r.failures.push_back(
                "footprint off: static " +
                std::to_string(r.static_footprint) +
                " vs dynamic " +
                std::to_string(r.dynamic_footprint));
    } else if (r.static_footprint > r.dynamic_footprint) {
        r.failures.push_back(
            "incomplete static footprint exceeds dynamic: " +
            std::to_string(r.static_footprint) + " > " +
            std::to_string(r.dynamic_footprint));
    }

    // Every corpus kernel must get a footprint upper bound from the
    // abstract interpreter — including the data-dependent sites the
    // affine analysis leaves Unknown — and a sound bound can never
    // undercut what execution actually touched.
    if (!r.footprint_bounded)
        r.failures.push_back(
            "abstract interpreter left the footprint unbounded");
    else if (r.footprint_bound < r.dynamic_footprint)
        r.failures.push_back(
            "footprint bound below dynamic: " +
            std::to_string(r.footprint_bound) + " < " +
            std::to_string(r.dynamic_footprint));

    return r;
}

void
printJson(const std::vector<KernelResult> &results, int failed)
{
    static const char *cls_names[6] = {"alu",    "load", "store",
                                       "branch", "jump", "other"};
    std::printf("{\n  \"bench\": \"validation_static_crosscheck\",\n"
                "  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const KernelResult &r = results[i];
        std::printf("    {\"name\": \"%s\", \"static_total\": %.0f, "
                    "\"dynamic_total\": %.0f,\n     \"mix\": {",
                    r.name.c_str(), r.static_total, r.dynamic_total);
        for (int c = 0; c < 6; ++c)
            std::printf("%s\"%s\": {\"static\": %.1f, \"dynamic\": "
                        "%.0f}",
                        c ? ", " : "", cls_names[c], r.stat[c],
                        r.dyn[c]);
        std::printf("},\n     \"footprint\": {\"static\": %" PRIu64
                    ", \"dynamic\": %" PRIu64 ", \"complete\": %s, "
                    "\"bound\": %" PRIu64
                    ", \"bounded\": %s},\n     \"memops\": [",
                    r.static_footprint, r.dynamic_footprint,
                    r.footprint_complete ? "true" : "false",
                    r.footprint_bound,
                    r.footprint_bounded ? "true" : "false");
        for (std::size_t j = 0; j < r.sites.size(); ++j) {
            const auto &s = r.sites[j];
            std::printf("%s\n      {\"line\": %u, \"kind\": \"%s\", "
                        "\"static_stride\": %lld, "
                        "\"dominant_delta\": %lld, "
                        "\"match_frac\": %.3f, \"ok\": %s}",
                        j ? "," : "", s.line, s.kind.c_str(),
                        static_cast<long long>(s.static_stride),
                        static_cast<long long>(s.dominant_delta),
                        s.match_frac, s.ok ? "true" : "false");
        }
        std::printf("],\n     \"failures\": [");
        for (std::size_t j = 0; j < r.failures.size(); ++j)
            std::printf("%s\"%s\"", j ? ", " : "",
                        r.failures[j].c_str());
        std::printf("]}%s\n",
                    i + 1 < results.size() ? "," : "");
    }
    std::printf("  ],\n  \"failed\": %d\n}\n", failed);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = benchutil::parse(argc, argv);
    if (!opt.json())
        benchutil::banner(
            "static characterization vs execution crosscheck", opt);

    std::vector<KernelResult> results;
    int failed = 0;
    for (const Kernel &k : kKernels) {
        KernelResult r = runKernel(k);
        if (!r.failures.empty())
            ++failed;
        results.push_back(std::move(r));
    }

    if (opt.json()) {
        printJson(results, failed);
    } else {
        std::printf("%-12s %10s %10s %10s %8s %s\n", "kernel",
                    "static", "dynamic", "footprint", "sites",
                    "status");
        for (const KernelResult &r : results) {
            std::printf("%-12s %10.0f %10.0f %5" PRIu64 "/%-5" PRIu64
                        " %6zu  %s\n",
                        r.name.c_str(), r.static_total,
                        r.dynamic_total, r.static_footprint,
                        r.dynamic_footprint, r.sites.size(),
                        r.failures.empty() ? "ok" : "FAIL");
            for (const std::string &f : r.failures)
                std::printf("    %s\n", f.c_str());
        }
        std::printf("\n%d of %zu kernels failed\n", failed,
                    results.size());
    }
    return failed != 0 ? 1 : 0;
}
