/**
 * @file
 * Extension study: CC-NUMA vs Simple-COMA on the integrated device.
 *
 * Section 4.2 states the microcoded protocol engines support both
 * CC-NUMA and Simple-COMA operation (the authors' companion paper is
 * reference [21]). This bench runs the SPLASH kernels under both
 * shared-memory models on the same hardware: S-COMA replicates pages
 * into local DRAM (attraction memory) so re-used remote data costs a
 * local access, at the price of replication storage — it should win
 * whenever remote-data reuse outlives the victim cache and the INC's
 * associativity.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/splash/splash.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Extension - CC-NUMA vs Simple-COMA", opt);

    const double scale = opt.quick ? 0.08 : 0.4;
    TextTable table("SPLASH makespan (Mcycles), integrated device, "
                    "victim cache on");
    table.setHeader({"kernel", "cpus", "CC-NUMA + INC",
                     "Simple-COMA", "S-COMA speedup"});

    for (const char *kernel :
         {"lu", "ocean", "water", "mp3d", "pthor"}) {
        for (unsigned cpus : {4u, 8u}) {
            SplashResult res[2];
            int idx = 0;
            for (NodeArch arch : {NodeArch::Integrated,
                                  NodeArch::SimpleComa}) {
                SplashParams params;
                params.nprocs = cpus;
                params.machine.nodes = cpus;
                params.machine.arch = arch;
                params.machine.victim_cache = true;
                params.scale =
                    std::string(kernel) == "pthor" ? scale * 0.6
                                                   : scale;
                res[idx++] = runSplash(kernel, params);
            }
            table.addRow(
                {kernel, std::to_string(cpus),
                 TextTable::num(res[0].makespan / 1e6, 3),
                 TextTable::num(res[1].makespan / 1e6, 3),
                 TextTable::num(static_cast<double>(res[0].makespan) /
                                    res[1].makespan,
                                2) +
                     "x"});
        }
        table.addRule();
    }
    table.print(std::cout);
    std::cout << "\nExpected: S-COMA >= 1x wherever remote blocks "
                 "are re-used beyond the victim\ncache's reach "
                 "(WATER's molecule sweeps); ~1x when the INC "
                 "already suffices.\n";
    return 0;
}
