/**
 * @file
 * Ablation: speculative writebacks (Section 4.1).
 *
 * "The fact that an entire cache line can be transferred in a
 * single DRAM access ... enable[s] speculative writebacks, removing
 * contention between cache misses and dirty lines." This bench
 * disables that property — dirty-column writebacks then serialise
 * with the fill — and measures the CPI cost on store-heavy
 * workloads.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/pim_device.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

double
runCpi(const SpecWorkload &w, bool speculative, std::uint64_t refs)
{
    PimDeviceConfig cfg;
    cfg.speculative_writeback = speculative;
    PimDevice device(cfg);
    SyntheticWorkload source(w.proxy);
    PipelineSim pipe(device, PipelineConfig{});
    source.generate(refs / 4, pipe.sink());
    const std::uint64_t wi = pipe.instructions();
    const Tick wc = pipe.cycles();
    source.generate(refs, pipe.sink());
    pipe.drain();
    return static_cast<double>(pipe.cycles() - wc) /
           static_cast<double>(pipe.instructions() - wi);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Ablation - speculative writebacks", opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 400'000 : 3'000'000);

    TextTable table("Pipeline CPI with and without speculative "
                    "writebacks");
    table.setHeader({"benchmark", "speculative (paper)",
                     "serialised", "penalty"});
    for (const char *name : {"102.swim", "101.tomcatv", "099.go",
                             "129.compress", "147.vortex"}) {
        const SpecWorkload &w = findWorkload(name);
        const double spec = runCpi(w, true, refs);
        const double serial = runCpi(w, false, refs);
        table.addRow({w.name, TextTable::num(spec, 3),
                      TextTable::num(serial, 3),
                      TextTable::num(100.0 * (serial - spec) / spec,
                                     1) +
                          "%"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: measurable penalties exactly where "
                 "dirty columns churn (the\nconflict-heavy FP codes "
                 "and store-heavy integer codes), supporting the "
                 "paper's\ncase for the third column buffer.\n";
    return 0;
}
