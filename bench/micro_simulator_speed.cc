/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache access, DRAM timing, reference generation, GSPN stepping,
 * the NUMA protocol and the MW32 interpreter/fast-path engines.
 * These guard the engineering health of the library (simulation
 * throughput), not a paper result.
 *
 * Besides the google-benchmark suite, the binary ends with a
 * chrono-timed interpreter-vs-fast-path comparison over fixed
 * execution-driven workloads. `--min-exec-speedup X` turns that
 * section into a gate (exit 1 below X); `--format json` switches
 * the benchmark output to --benchmark_format=json (the comparison
 * then reports on stderr to keep stdout valid JSON).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/memwall.hh"
#include "exec/fast_executor.hh"

using namespace memwall;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.capacity = 16 * KiB;
    cfg.line_size = 32;
    cfg.assoc = static_cast<std::uint32_t>(state.range(0));
    Cache cache(cfg);
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(
            cache.access((x >> 16) % (256 * KiB), false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(8);

void
BM_ColumnDataCacheAccess(benchmark::State &state)
{
    ColumnDataCache cache;
    std::uint64_t x = 999;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(
            cache.access((x >> 16) % (128 * KiB), (x & 1) != 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColumnDataCacheAccess);

void
BM_DramAccess(benchmark::State &state)
{
    Dram dram;
    Tick now = 0;
    std::uint64_t x = 7;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(dram.access(now, x % (32 * MiB)));
        now += 20;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_SyntheticGeneration(benchmark::State &state)
{
    SyntheticWorkload source(findWorkload("126.gcc").proxy);
    std::uint64_t sink_count = 0;
    for (auto _ : state) {
        source.generate(1024, [&](const MemRef &r) {
            sink_count += r.addr;
        });
    }
    benchmark::DoNotOptimize(sink_count);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SyntheticGeneration);

void
BM_GspnStep(benchmark::State &state)
{
    ProcessorModelParams params;
    params.icache_hit = 0.99;
    params.load_hit = 0.95;
    params.store_hit = 0.95;
    ProcessorModel model = ProcessorModel::build(params);
    GspnSimulator sim(model.net, 42);
    for (auto _ : state) {
        sim.runUntilFirings(model.issue, 64);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_GspnStep);

void
BM_NumaProtocol(benchmark::State &state)
{
    NumaConfig cfg;
    cfg.nodes = 4;
    cfg.arch = NodeArch::Integrated;
    NumaMachine machine(cfg);
    std::uint64_t x = 31;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned cpu = (x >> 8) & 3;
        benchmark::DoNotOptimize(machine.access(
            cpu, 0x100000 + (x >> 16) % (1 * MiB), (x & 1) != 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumaProtocol);

/** ALU-and-branch loop shared by the execution-engine benchmarks. */
const char *const alu_loop_asm = R"(
    start:
        addi r1, r0, 1000
    loop:
        addi r2, r2, 3
        xor  r3, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        b    start
)";

/** Load/store loop over a data window, re-entered forever. */
const char *const mem_loop_asm = R"(
    start:
        lui  r28, 16
        addi r1, r0, 1024
    loop:
        lw   r3, 0(r28)
        addi r3, r3, 7
        sw   r3, 4(r28)
        lw   r4, 4(r28)
        add  r5, r5, r4
        sh   r4, 8(r28)
        lbu  r6, 9(r28)
        addi r1, r1, -1
        bne  r1, r0, loop
        b    start
)";

void
BM_InterpreterStep(benchmark::State &state)
{
    const auto prog = assembleOrDie(alu_loop_asm);
    BackingStore mem;
    prog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(prog.entry);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            cpu.step();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InterpreterStep);

void
BM_InterpreterRun(benchmark::State &state)
{
    const auto prog = assembleOrDie(alu_loop_asm);
    BackingStore mem;
    prog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(prog.entry);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.run(4096));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_InterpreterRun);

void
BM_FastExecRun(benchmark::State &state)
{
    const auto prog = assembleOrDie(alu_loop_asm);
    BackingStore mem;
    prog.loadInto(mem);
    FastExecutor cpu(mem, prog);
    cpu.setFastPath(true);
    cpu.setPc(prog.entry);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.run(4096));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastExecRun);

void
BM_FastExecMemoryLoop(benchmark::State &state)
{
    const auto prog = assembleOrDie(mem_loop_asm);
    BackingStore mem;
    prog.loadInto(mem);
    FastExecutor cpu(mem, prog);
    cpu.setFastPath(true);
    cpu.setPc(prog.entry);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpu.run(4096));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastExecMemoryLoop);

void
BM_FastExecRunInto(benchmark::State &state)
{
    // Fast path with a live reference sink, as the figure harnesses
    // drive it.
    const auto prog = assembleOrDie(mem_loop_asm);
    BackingStore mem;
    prog.loadInto(mem);
    FastExecutor cpu(mem, prog);
    cpu.setFastPath(true);
    cpu.setPc(prog.entry);
    std::uint64_t sum = 0;
    for (auto _ : state)
        cpu.runInto(4096, [&](const MemRef &r) { sum += r.addr; });
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastExecRunInto);

void
BM_EccEncodeDecode(benchmark::State &state)
{
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{0x1234, 0x5678};
    for (auto _ : state) {
        const auto check = code.encode(data);
        benchmark::DoNotOptimize(code.decode(data, check));
        data[0] += 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EccEncodeDecode);

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    // The simulator's hottest kernel loop: schedule a burst of
    // events whose captures exceed std::function's internal buffer,
    // then drain them. Guards the allocation-free schedule path.
    EventQueue q;
    std::uint64_t sum = 0;
    std::uint64_t a = 1, b = 2, c = 3;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            q.scheduleIn(static_cast<Tick>(i + 1), [&sum, a, b, c] {
                sum += a + b + c;
            });
        }
        q.run();
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    // Schedule a burst, cancel every other event, drain the rest —
    // the retransmission-timer pattern of the reliable link.
    EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> tickets(256);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            tickets[static_cast<std::size_t>(i)] = q.scheduleIn(
                static_cast<Tick>(i + 1), [&fired] { ++fired; });
        for (int i = 0; i < 256; i += 2)
            q.deschedule(tickets[static_cast<std::size_t>(i)]);
        q.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueScheduleCancel);

void
BM_MissRatePoint(benchmark::State &state)
{
    // End-to-end sweep point as executed by the fig7/fig8 harness:
    // one workload's reference stream through the full comparison
    // cache set.
    const SpecWorkload &w = findWorkload("126.gcc");
    MissRateParams params;
    params.measured_refs = 40'000;
    params.warmup_refs = 10'000;
    for (auto _ : state) {
        const auto rates = measureMissRates(w, params);
        benchmark::DoNotOptimize(
            rates.icaches.front().stats.accesses());
    }
    state.SetItemsProcessed(
        state.iterations() *
        (params.measured_refs + params.warmup_refs));
}
BENCHMARK(BM_MissRatePoint);

// HARNESS-BEGIN (benchmarks below need src/harness/, post-seed)
void
BM_ThreadPoolTinyTasks(benchmark::State &state)
{
    // Submission/steal overhead under tiny tasks; workers count as
    // configured by the Arg below.
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    std::atomic<std::uint64_t> sum{0};
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            pool.submit([&sum] {
                sum.fetch_add(1, std::memory_order_relaxed);
            });
        pool.waitIdle();
    }
    benchmark::DoNotOptimize(sum.load());
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolTinyTasks)->Arg(1)->Arg(2)->Arg(4);

void
BM_ParallelSweepPoints(benchmark::State &state)
{
    // Order-preserving sweep of small simulation points, as the
    // figure/table binaries run them.
    const SpecWorkload &w = findWorkload("099.go");
    MissRateParams params;
    params.measured_refs = 4'000;
    params.warmup_refs = 1'000;
    for (auto _ : state) {
        std::uint64_t total = 0;
        ParallelSweep<std::uint64_t> sweep(
            static_cast<unsigned>(state.range(0)), 42);
        for (int p = 0; p < 8; ++p)
            sweep.submit(
                [&w, &params](const PointContext &) {
                    return measureMissRates(w, params)
                        .icaches.front()
                        .stats.accesses();
                },
                [&total](const PointContext &, std::uint64_t n) {
                    total += n;
                });
        sweep.finish();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * 8 *
                            (params.measured_refs +
                             params.warmup_refs));
}
BENCHMARK(BM_ParallelSweepPoints)->Arg(1)->Arg(2)->Arg(4);
// HARNESS-END

/**
 * Chrono-timed interpreter-vs-fast-path comparison over fixed
 * execution-driven workloads. Each engine retires @c budget
 * instructions of the same program from the same initial state;
 * the final architectural state is asserted identical before the
 * timing is trusted. @return the worst-case speedup across cases.
 */
double
execComparison(std::FILE *out)
{
    struct Case
    {
        const char *name;
        const char *text;
    };
    static constexpr Case cases[] = {
        {"alu-loop", nullptr},    // filled below
        {"memory-loop", nullptr},
    };
    const char *sources[] = {alu_loop_asm, mem_loop_asm};
    constexpr std::uint64_t budget = 16'000'000;

    auto seconds = [](auto &&fn) {
        // Best of three to shrug off scheduler noise.
        double best = 1e30;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            fn();
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    std::fprintf(out, "\nexecution-driven comparison (%" PRIu64
                      "M instructions per engine per case)\n",
                 budget / 1'000'000);
    std::fprintf(out,
                 "  %-12s %12s %12s %9s\n", "case", "interp MIPS",
                 "fastpath MIPS", "speedup");

    double worst = 1e30;
    for (std::size_t c = 0; c < std::size(cases); ++c) {
        const auto prog = assembleOrDie(sources[c]);

        BackingStore imem;
        prog.loadInto(imem);
        Interpreter icpu(imem);
        icpu.setPc(prog.entry);
        const double ti = seconds([&] { icpu.run(budget); });

        BackingStore fmem;
        prog.loadInto(fmem);
        FastExecutor fcpu(fmem, prog);
        fcpu.setFastPath(true);
        fcpu.setPc(prog.entry);
        const double tf = seconds([&] { fcpu.run(budget); });

        // Timing is only meaningful if both engines agree. (The
        // third rep leaves both at 3 * budget instructions.)
        bool same = icpu.state().pc == fcpu.state().pc &&
                    icpu.stats().instructions ==
                        fcpu.stats().instructions;
        for (unsigned r = 0; r < 32 && same; ++r)
            same = icpu.state().reg(r) == fcpu.state().reg(r);
        if (!same) {
            std::fprintf(out,
                         "  %-12s DIVERGED — timing not valid\n",
                         cases[c].name);
            return 0.0;
        }

        const double speedup = ti / tf;
        std::fprintf(out, "  %-12s %12.1f %12.1f %8.2fx\n",
                     cases[c].name, budget / ti / 1e6,
                     budget / tf / 1e6, speedup);
        worst = std::min(worst, speedup);
    }
    std::fprintf(out, "  worst-case speedup: %.2fx\n", worst);
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off our own flags before handing the rest to
    // google-benchmark. "--format json" / "--format=json" map onto
    // --benchmark_format=json for consistency with the other
    // benches' CLI convention.
    double min_speedup = 0.0;
    bool json = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    static char json_flag[] = "--benchmark_format=json";
    for (int i = 1; i < argc; ++i) {
        const std::string_view a = argv[i];
        if (a == "--min-exec-speedup" && i + 1 < argc) {
            min_speedup = std::strtod(argv[++i], nullptr);
        } else if (a == "--format" && i + 1 < argc) {
            json = std::string_view(argv[++i]) == "json";
            if (json)
                args.push_back(json_flag);
        } else if (a == "--format=json") {
            json = true;
            args.push_back(json_flag);
        } else {
            args.push_back(argv[i]);
        }
    }
    int bargc = static_cast<int>(args.size());
    benchmark::Initialize(&bargc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // In json mode the comparison goes to stderr so stdout stays
    // valid benchmark JSON.
    const double worst = execComparison(json ? stderr : stdout);
    if (min_speedup > 0.0 && worst < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: fast-path speedup %.2fx below required "
                     "%.2fx\n",
                     worst, min_speedup);
        return 1;
    }
    return 0;
}
