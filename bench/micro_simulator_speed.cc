/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache access, DRAM timing, reference generation, GSPN stepping,
 * the NUMA protocol and the MW32 interpreter. These guard the
 * engineering health of the library (simulation throughput), not a
 * paper result.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "core/memwall.hh"

using namespace memwall;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.capacity = 16 * KiB;
    cfg.line_size = 32;
    cfg.assoc = static_cast<std::uint32_t>(state.range(0));
    Cache cache(cfg);
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(
            cache.access((x >> 16) % (256 * KiB), false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(8);

void
BM_ColumnDataCacheAccess(benchmark::State &state)
{
    ColumnDataCache cache;
    std::uint64_t x = 999;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(
            cache.access((x >> 16) % (128 * KiB), (x & 1) != 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColumnDataCacheAccess);

void
BM_DramAccess(benchmark::State &state)
{
    Dram dram;
    Tick now = 0;
    std::uint64_t x = 7;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(dram.access(now, x % (32 * MiB)));
        now += 20;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_SyntheticGeneration(benchmark::State &state)
{
    SyntheticWorkload source(findWorkload("126.gcc").proxy);
    std::uint64_t sink_count = 0;
    for (auto _ : state) {
        source.generate(1024, [&](const MemRef &r) {
            sink_count += r.addr;
        });
    }
    benchmark::DoNotOptimize(sink_count);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SyntheticGeneration);

void
BM_GspnStep(benchmark::State &state)
{
    ProcessorModelParams params;
    params.icache_hit = 0.99;
    params.load_hit = 0.95;
    params.store_hit = 0.95;
    ProcessorModel model = ProcessorModel::build(params);
    GspnSimulator sim(model.net, 42);
    for (auto _ : state) {
        sim.runUntilFirings(model.issue, 64);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_GspnStep);

void
BM_NumaProtocol(benchmark::State &state)
{
    NumaConfig cfg;
    cfg.nodes = 4;
    cfg.arch = NodeArch::Integrated;
    NumaMachine machine(cfg);
    std::uint64_t x = 31;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned cpu = (x >> 8) & 3;
        benchmark::DoNotOptimize(machine.access(
            cpu, 0x100000 + (x >> 16) % (1 * MiB), (x & 1) != 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumaProtocol);

void
BM_InterpreterStep(benchmark::State &state)
{
    const auto prog = assembleOrDie(R"(
        start:
            addi r1, r0, 1000
        loop:
            addi r2, r2, 3
            xor  r3, r2, r1
            addi r1, r1, -1
            bne  r1, r0, loop
            b    start
    )");
    BackingStore mem;
    prog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(prog.entry);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            cpu.step();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InterpreterStep);

void
BM_EccEncodeDecode(benchmark::State &state)
{
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{0x1234, 0x5678};
    for (auto _ : state) {
        const auto check = code.encode(data);
        benchmark::DoNotOptimize(code.decode(data, check));
        data[0] += 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EccEncodeDecode);

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    // The simulator's hottest kernel loop: schedule a burst of
    // events whose captures exceed std::function's internal buffer,
    // then drain them. Guards the allocation-free schedule path.
    EventQueue q;
    std::uint64_t sum = 0;
    std::uint64_t a = 1, b = 2, c = 3;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            q.scheduleIn(static_cast<Tick>(i + 1), [&sum, a, b, c] {
                sum += a + b + c;
            });
        }
        q.run();
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    // Schedule a burst, cancel every other event, drain the rest —
    // the retransmission-timer pattern of the reliable link.
    EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> tickets(256);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            tickets[static_cast<std::size_t>(i)] = q.scheduleIn(
                static_cast<Tick>(i + 1), [&fired] { ++fired; });
        for (int i = 0; i < 256; i += 2)
            q.deschedule(tickets[static_cast<std::size_t>(i)]);
        q.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueScheduleCancel);

void
BM_MissRatePoint(benchmark::State &state)
{
    // End-to-end sweep point as executed by the fig7/fig8 harness:
    // one workload's reference stream through the full comparison
    // cache set.
    const SpecWorkload &w = findWorkload("126.gcc");
    MissRateParams params;
    params.measured_refs = 40'000;
    params.warmup_refs = 10'000;
    for (auto _ : state) {
        const auto rates = measureMissRates(w, params);
        benchmark::DoNotOptimize(
            rates.icaches.front().stats.accesses());
    }
    state.SetItemsProcessed(
        state.iterations() *
        (params.measured_refs + params.warmup_refs));
}
BENCHMARK(BM_MissRatePoint);

// HARNESS-BEGIN (benchmarks below need src/harness/, post-seed)
void
BM_ThreadPoolTinyTasks(benchmark::State &state)
{
    // Submission/steal overhead under tiny tasks; workers count as
    // configured by the Arg below.
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    std::atomic<std::uint64_t> sum{0};
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            pool.submit([&sum] {
                sum.fetch_add(1, std::memory_order_relaxed);
            });
        pool.waitIdle();
    }
    benchmark::DoNotOptimize(sum.load());
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolTinyTasks)->Arg(1)->Arg(2)->Arg(4);

void
BM_ParallelSweepPoints(benchmark::State &state)
{
    // Order-preserving sweep of small simulation points, as the
    // figure/table binaries run them.
    const SpecWorkload &w = findWorkload("099.go");
    MissRateParams params;
    params.measured_refs = 4'000;
    params.warmup_refs = 1'000;
    for (auto _ : state) {
        std::uint64_t total = 0;
        ParallelSweep<std::uint64_t> sweep(
            static_cast<unsigned>(state.range(0)), 42);
        for (int p = 0; p < 8; ++p)
            sweep.submit(
                [&w, &params](const PointContext &) {
                    return measureMissRates(w, params)
                        .icaches.front()
                        .stats.accesses();
                },
                [&total](const PointContext &, std::uint64_t n) {
                    total += n;
                });
        sweep.finish();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * 8 *
                            (params.measured_refs +
                             params.warmup_refs));
}
BENCHMARK(BM_ParallelSweepPoints)->Arg(1)->Arg(2)->Arg(4);
// HARNESS-END

} // namespace

BENCHMARK_MAIN();
