/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache access, DRAM timing, reference generation, GSPN stepping,
 * the NUMA protocol and the MW32 interpreter. These guard the
 * engineering health of the library (simulation throughput), not a
 * paper result.
 */

#include <benchmark/benchmark.h>

#include "core/memwall.hh"

using namespace memwall;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.capacity = 16 * KiB;
    cfg.line_size = 32;
    cfg.assoc = static_cast<std::uint32_t>(state.range(0));
    Cache cache(cfg);
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(
            cache.access((x >> 16) % (256 * KiB), false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(8);

void
BM_ColumnDataCacheAccess(benchmark::State &state)
{
    ColumnDataCache cache;
    std::uint64_t x = 999;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(
            cache.access((x >> 16) % (128 * KiB), (x & 1) != 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColumnDataCacheAccess);

void
BM_DramAccess(benchmark::State &state)
{
    Dram dram;
    Tick now = 0;
    std::uint64_t x = 7;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        benchmark::DoNotOptimize(dram.access(now, x % (32 * MiB)));
        now += 20;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_SyntheticGeneration(benchmark::State &state)
{
    SyntheticWorkload source(findWorkload("126.gcc").proxy);
    std::uint64_t sink_count = 0;
    for (auto _ : state) {
        source.generate(1024, [&](const MemRef &r) {
            sink_count += r.addr;
        });
    }
    benchmark::DoNotOptimize(sink_count);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SyntheticGeneration);

void
BM_GspnStep(benchmark::State &state)
{
    ProcessorModelParams params;
    params.icache_hit = 0.99;
    params.load_hit = 0.95;
    params.store_hit = 0.95;
    ProcessorModel model = ProcessorModel::build(params);
    GspnSimulator sim(model.net, 42);
    for (auto _ : state) {
        sim.runUntilFirings(model.issue, 64);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_GspnStep);

void
BM_NumaProtocol(benchmark::State &state)
{
    NumaConfig cfg;
    cfg.nodes = 4;
    cfg.arch = NodeArch::Integrated;
    NumaMachine machine(cfg);
    std::uint64_t x = 31;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned cpu = (x >> 8) & 3;
        benchmark::DoNotOptimize(machine.access(
            cpu, 0x100000 + (x >> 16) % (1 * MiB), (x & 1) != 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumaProtocol);

void
BM_InterpreterStep(benchmark::State &state)
{
    const auto prog = assembleOrDie(R"(
        start:
            addi r1, r0, 1000
        loop:
            addi r2, r2, 3
            xor  r3, r2, r1
            addi r1, r1, -1
            bne  r1, r0, loop
            b    start
    )");
    BackingStore mem;
    prog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(prog.entry);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            cpu.step();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InterpreterStep);

void
BM_EccEncodeDecode(benchmark::State &state)
{
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{0x1234, 0x5678};
    for (auto _ : state) {
        const auto check = code.encode(data);
        benchmark::DoNotOptimize(code.decode(data, check));
        data[0] += 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EccEncodeDecode);

} // namespace

BENCHMARK_MAIN();
