/**
 * @file
 * Seeded random-stress tester for the coherence protocol, run with
 * the shadow checker attached.
 *
 * Part 1 (torture matrix): drives false-sharing, hot-contended,
 * migratory and random-mix access patterns across all three NodeArch
 * variants x three fault settings x several seeds — at least 32
 * independent points — each simulated under a CoherenceVerifier. A
 * healthy protocol must complete every point with ZERO invariant
 * violations, fault injection included (faults perturb latency and
 * raise machine checks; they must never corrupt coherence).
 *
 * Part 2 (mutation mode): deliberately corrupts one protocol
 * transition per run (NumaConfig::mutation) and demands the checker
 * CATCH it — a violation count of zero in a mutated run means the
 * detector is blind, and the bench fails. This proves the matrix's
 * green result is meaningful. `--mutate <kind|all>` runs only this
 * part (CI uses it as a detector-sensitivity step).
 *
 * Points run on the PR 2 parallel harness (--jobs), committed in
 * submission order, so output is byte-identical at any job count.
 */

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "harness/parallel_sweep.hh"
#include "verify/verifier.hh"

using namespace memwall;
using namespace memwall::benchutil;

namespace {

enum class Pattern { FalseSharing, HotContended, Migratory, RandomMix };

struct FaultSetting
{
    const char *name;
    double nack_rate;
    double bit_error_rate;
    double drop_rate;
};

constexpr FaultSetting kFaultSettings[] = {
    {"none", 0.0, 0.0, 0.0},
    {"low", 0.02, 1e-6, 1e-4},
    {"high", 0.2, 1e-5, 1e-3},
};

struct ArchSetting
{
    const char *name;
    NodeArch arch;
};

constexpr ArchSetting kArchs[] = {
    {"reference", NodeArch::ReferenceCcNuma},
    {"integrated", NodeArch::Integrated},
    {"scoma", NodeArch::SimpleComa},
};

NumaConfig
machineConfig(const ArchSetting &arch, const FaultSetting &fault,
              std::uint64_t seed, unsigned nodes)
{
    NumaConfig config;
    config.nodes = nodes;
    config.arch = arch.arch;
    config.victim_cache = arch.arch == NodeArch::Integrated;
    config.protocol_fault.nack_rate = fault.nack_rate;
    config.protocol_fault.seed = seed;
    if (fault.bit_error_rate > 0.0 || fault.drop_rate > 0.0) {
        config.model_fabric_contention = true;
        config.fabric.fault.bit_error_rate = fault.bit_error_rate;
        config.fabric.fault.drop_rate = fault.drop_rate;
        config.fabric.fault.seed = seed ^ 0x5bf0'3635'dcf8'2aedULL;
    }
    return config;
}

/** Drive @p accesses references of @p pattern; returns end time. */
Tick
drivePattern(NumaMachine &machine, Rng &rng, Pattern pattern,
             std::uint64_t accesses, Tick now)
{
    const unsigned nodes = machine.config().nodes;
    const Addr heap = Addr{1} << 20;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        unsigned cpu = 0;
        Addr addr = heap;
        bool store = false;
        switch (pattern) {
          case Pattern::FalseSharing:
            // Every node hammers its own word of the same handful
            // of 32-byte units: maximal invalidation traffic.
            cpu = static_cast<unsigned>(i % nodes);
            addr = heap + (i / nodes % 8) * 32 + (cpu % 8) * 4;
            store = rng.bernoulli(0.5);
            break;
          case Pattern::HotContended:
            // All nodes read-modify-write a few hot blocks.
            cpu = static_cast<unsigned>(rng.uniformInt(nodes));
            addr = heap + rng.uniformInt(4) * 32;
            store = (i & 1) != 0;
            break;
          case Pattern::Migratory:
            // Ownership walks node to node: each reads the previous
            // owner's dirty data, then writes it (lock-protected
            // data structure shape).
            cpu = static_cast<unsigned>(i / 2 % nodes);
            addr = heap + (i / (2 * nodes) % 16) * 32;
            store = (i & 1) != 0;
            break;
          case Pattern::RandomMix:
            cpu = static_cast<unsigned>(rng.uniformInt(nodes));
            addr = heap + rng.uniformInt(512) * 32;
            store = rng.bernoulli(0.3);
            break;
        }
        now += machine.access(cpu, addr, store, now);
    }
    return now;
}

struct PointResult
{
    std::uint64_t checked = 0;
    std::uint64_t violations = 0;
    std::uint64_t machine_checks = 0;
    std::uint64_t recorded = 0;
    std::string first_violation;
};

PointResult
runPoint(const ArchSetting &arch, const FaultSetting &fault,
         std::uint64_t seed, std::uint64_t accesses_per_pattern)
{
    NumaMachine machine(
        machineConfig(arch, fault, seed, /*nodes=*/8));
    VerifyConfig vc;
    vc.policy = ViolationPolicy::Count;
    CoherenceVerifier verifier(machine, vc);
    // Dumps from machine checks under fault injection are expected;
    // keep them out of the report stream.
    std::ostringstream sink;
    verifier.setReportStream(sink);

    Rng rng(seed);
    Tick now = 0;
    for (Pattern p :
         {Pattern::FalseSharing, Pattern::HotContended,
          Pattern::Migratory, Pattern::RandomMix})
        now = drivePattern(machine, rng, p, accesses_per_pattern,
                           now);

    PointResult res;
    res.checked = verifier.checked();
    res.violations = verifier.violations();
    res.machine_checks = machine.protocolFailures();
    res.recorded = verifier.recorder().recorded();
    if (!verifier.firstViolations().empty())
        res.first_violation = verifier.firstViolations()[0].what;
    return res;
}

struct MutationResult
{
    std::uint64_t mutated = 0;
    std::uint64_t violations = 0;
    bool dumped = false;
    std::string first_violation;
};

MutationResult
runMutation(const ArchSetting &arch, ProtocolMutation mutation,
            std::uint64_t seed, std::uint64_t accesses_per_pattern)
{
    NumaConfig config =
        machineConfig(arch, kFaultSettings[0], seed, /*nodes=*/4);
    config.mutation = mutation;
    NumaMachine machine(config);
    VerifyConfig vc;
    vc.policy = ViolationPolicy::Count;
    CoherenceVerifier verifier(machine, vc);
    std::ostringstream dump;
    verifier.setReportStream(dump);

    Rng rng(seed);
    Tick now = 0;
    for (Pattern p :
         {Pattern::FalseSharing, Pattern::HotContended,
          Pattern::Migratory, Pattern::RandomMix})
        now = drivePattern(machine, rng, p, accesses_per_pattern,
                           now);

    MutationResult res;
    res.mutated = machine.mutatedTransitions();
    res.violations = verifier.violations();
    res.dumped =
        dump.str().find("flight recorder dump") != std::string::npos;
    if (!verifier.firstViolations().empty())
        res.first_violation = verifier.firstViolations()[0].what;
    return res;
}

constexpr ProtocolMutation kMutations[] = {
    ProtocolMutation::SkipInvalidate,
    ProtocolMutation::DropSharer,
    ProtocolMutation::WrongOwner,
    ProtocolMutation::MissedDowngrade,
};

} // namespace

int
main(int argc, char **argv)
{
    auto opt = parse(argc, argv, {"--mutate", "--seeds"});
    banner("protocol torture tester (shadow checker + mutations)",
           opt);

    const std::uint64_t accesses =
        opt.refs ? opt.refs : (opt.quick ? 2'000 : 20'000);
    const std::uint64_t nseeds =
        std::strtoull(opt.extraOr("--seeds", "4").c_str(), nullptr,
                      0);
    const std::string mutate_only = opt.extraOr("--mutate", "");

    bool all_ok = true;

    if (mutate_only.empty()) {
        // ---- Part 1: the torture matrix ---------------------------
        std::printf("torture matrix: %u archs x %u fault settings x "
                    "%llu seeds, %llu refs/pattern\n\n",
                    static_cast<unsigned>(std::size(kArchs)),
                    static_cast<unsigned>(
                        std::size(kFaultSettings)),
                    static_cast<unsigned long long>(nseeds),
                    static_cast<unsigned long long>(accesses));
        std::printf("%-12s %-6s %-10s %10s %10s %8s %6s\n", "arch",
                    "fault", "seed", "checked", "violations",
                    "mchecks", "ok");

        ParallelSweep<PointResult> sweep(opt.jobs, opt.seed);
        for (const ArchSetting &arch : kArchs) {
            for (const FaultSetting &fault : kFaultSettings) {
                for (std::uint64_t s = 0; s < nseeds; ++s) {
                    sweep.submit(
                        [&arch, &fault,
                         accesses](const PointContext &ctx) {
                            return runPoint(arch, fault, ctx.seed,
                                            accesses);
                        },
                        [&arch, &fault, &all_ok](
                            const PointContext &ctx,
                            PointResult res) {
                            const bool ok = res.violations == 0;
                            all_ok = all_ok && ok;
                            std::printf("%-12s %-6s %-10llu %10llu "
                                        "%10llu %8llu %6s\n",
                                        arch.name, fault.name,
                                        static_cast<
                                            unsigned long long>(
                                            ctx.seed % 1'000'000),
                                        static_cast<
                                            unsigned long long>(
                                            res.checked),
                                        static_cast<
                                            unsigned long long>(
                                            res.violations),
                                        static_cast<
                                            unsigned long long>(
                                            res.machine_checks),
                                        ok ? "PASS" : "FAIL");
                            if (!ok)
                                std::printf(
                                    "    first violation: %s\n",
                                    res.first_violation.c_str());
                        });
                }
            }
        }
        sweep.finish();
        std::printf("\ntorture matrix: %s (%u points)\n\n",
                    all_ok ? "CLEAN" : "VIOLATIONS DETECTED",
                    static_cast<unsigned>(sweep.committed()));
    }

    // ---- Part 2: mutation mode (detector sensitivity) -------------
    std::printf("mutation mode: every corrupted transition must be "
                "caught\n");
    std::printf("%-18s %-12s %9s %10s %6s %10s\n", "mutation",
                "arch", "mutated", "violations", "dump", "result");
    bool mutations_ok = true;
    for (ProtocolMutation mutation : kMutations) {
        if (!mutate_only.empty() && mutate_only != "all" &&
            mutate_only != protocolMutationName(mutation))
            continue;
        for (const ArchSetting &arch : kArchs) {
            const MutationResult res = runMutation(
                arch, mutation, opt.seed,
                std::min<std::uint64_t>(accesses, 5'000));
            const bool detected = res.mutated > 0 &&
                                  res.violations > 0 && res.dumped;
            mutations_ok = mutations_ok && detected;
            std::printf("%-18s %-12s %9llu %10llu %6s %10s\n",
                        protocolMutationName(mutation), arch.name,
                        static_cast<unsigned long long>(res.mutated),
                        static_cast<unsigned long long>(
                            res.violations),
                        res.dumped ? "yes" : "no",
                        detected ? "DETECTED" : "MISSED");
        }
    }
    std::printf("\nmutation mode: %s\n",
                mutations_ok ? "ALL MUTATIONS DETECTED"
                             : "DETECTOR MISSED A MUTATION");

    all_ok = all_ok && mutations_ok;
    std::printf("\noverall: %s\n", all_ok ? "PASS" : "FAIL");
    return all_ok ? 0 : 1;
}
