/**
 * @file
 * Regenerates Figure 7: instruction-cache miss rates of the proposed
 * 8 KB column-buffer cache (512-byte lines) vs conventional
 * direct-mapped caches (32-byte lines) of 8/16/32/64 KB.
 *
 * Robustness plumbing shared with Figure 8:
 *   --resume PATH    crash-safe sweep journal — an interrupted run
 *                    rerun with the same flags replays committed
 *                    points and produces byte-identical output;
 *   --ckpt-dir DIR   (sampled stratified plans) per-unit warm-state
 *                    checkpoints — the second run loads them instead
 *                    of re-warming, degrading gracefully to
 *                    functional warming when files are missing or
 *                    corrupt.
 */

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "harness/sweep_resume.hh"
#include "resume_util.hh"
#include "workloads/missrate.hh"
#include "workloads/missrate_figures.hh"

using namespace memwall;
using namespace memwall::cachelabels;

namespace {

constexpr std::initializer_list<const char *> extra_flags = {
    "--sample", "--ckpt-dir", "--resume"};

/** "mean±half" table cell, in percent. */
std::string
ciCell(const SampledCacheMissRate &r)
{
    return TextTable::num(r.mean() * 100, 3) + "±" +
           TextTable::num(r.ci.half_width * 100, 3);
}

/** Sampled variant: mean ± CI half-width per configuration. */
int
runSampled(const benchutil::Options &opt, const MissRateParams &params,
           const SamplingPlan &plan, const std::string &ckpt_dir,
           const std::string &resume_path)
{
    TextTable table("Figure 7 (sampled): I-cache miss % ± " +
                    TextTable::num(plan.level * 100, 0) + "% CI");
    table.setHeader({"benchmark", "proposed 8K/512B", "conv 8K",
                     "conv 16K", "conv 32K", "conv 64K", "units"});
    if (!opt.json())
        std::cout << "sampling plan: " << plan.describe() << "\n\n";

    std::unique_ptr<ckpt::CheckpointStore> store =
        benchutil::makeMissRateStore(ckpt_dir, plan);

    ParallelSweep<SampledWorkloadMissRates> sweep(opt.jobs, opt.seed);
    ckpt::SweepJournal journal;
    if (!resume_path.empty()) {
        benchutil::openJournal(
            journal, resume_path,
            benchutil::missRateRunHash("fig7-sampled", opt, params,
                                       &plan));
        attachSweepJournal(
            sweep, journal,
            [](ckpt::Encoder &e, const SampledWorkloadMissRates &r) {
                encodeResult(e, r);
            },
            [](ckpt::Decoder &d, SampledWorkloadMissRates &r) {
                return decodeResult(d, r);
            });
    }
    std::vector<SampledWorkloadMissRates> all;
    for (const auto &w : specSuite()) {
        sweep.submit(
            [&w, &params, &plan, &store](const PointContext &) {
                return measureMissRatesSampled(w, params, plan,
                                               store.get());
            },
            [&all](const PointContext &,
                   SampledWorkloadMissRates rates) {
                all.push_back(std::move(rates));
            });
    }
    sweep.finish();

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes
        // (non-finite moments render as null, never bare nan/inf).
        std::fputs(
            missRateFigureSampledJson(MissRateFigure::ICache, all)
                .c_str(),
            stdout);
        return 0;
    }

    for (const auto &r : all)
        table.addRow({r.workload, ciCell(r.icache(proposed)),
                      ciCell(r.icache(conv8)),
                      ciCell(r.icache(conv16)),
                      ciCell(r.icache(conv32)),
                      ciCell(r.icache(conv64)),
                      std::to_string(r.units)});
    table.print(std::cout);
    if (store)
        benchutil::printStoreCounters(*store);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, extra_flags);
    const std::string ckpt_dir =
        benchutil::checkpointDirFlag(opt, argv[0], extra_flags);
    const std::string resume_path =
        benchutil::resumePathFlag(opt, argv[0], extra_flags);
    if (!opt.json())
        benchutil::banner("Figure 7 - instruction cache miss rates",
                          opt);

    const MissRateParams params =
        resolveMissRateParams(opt.quick, opt.refs);

    const std::string sample = opt.extraOr("--sample", "");
    if (!sample.empty())
        return runSampled(opt, params, parseSamplingPlan(sample),
                          ckpt_dir, resume_path);

    TextTable table("Figure 7: I-cache miss probability (%)");
    table.setHeader({"benchmark", "proposed 8K/512B", "conv 8K",
                     "conv 16K", "conv 32K", "conv 64K",
                     "conv8K/proposed"});

    BarChart chart("Figure 7 (bars): I-cache miss rates", "%");

    // One sweep point per workload; rows commit in suite order no
    // matter which worker finishes first.
    ParallelSweep<WorkloadMissRates> sweep(opt.jobs, opt.seed);
    ckpt::SweepJournal journal;
    if (!resume_path.empty()) {
        benchutil::openJournal(
            journal, resume_path,
            benchutil::missRateRunHash("fig7", opt, params,
                                       nullptr));
        attachSweepJournal(
            sweep, journal,
            [](ckpt::Encoder &e, const WorkloadMissRates &r) {
                encodeResult(e, r);
            },
            [](ckpt::Decoder &d, WorkloadMissRates &r) {
                return decodeResult(d, r);
            });
    }
    std::vector<WorkloadMissRates> all;
    for (const auto &w : specSuite()) {
        sweep.submit(
            [&w, &params](const PointContext &) {
                return measureMissRates(w, params);
            },
            [&all](const PointContext &, WorkloadMissRates rates) {
                all.push_back(std::move(rates));
            });
    }
    sweep.finish();

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(missRateFigureJson(MissRateFigure::ICache, all)
                       .c_str(),
                   stdout);
        return 0;
    }

    for (const auto &rates : all) {
        const double prop = rates.icache(proposed).missRate();
        const double c8 = rates.icache(conv8).missRate();
        const double c16 = rates.icache(conv16).missRate();
        const double c32 = rates.icache(conv32).missRate();
        const double c64 = rates.icache(conv64).missRate();
        table.addRow({rates.workload, TextTable::num(prop * 100, 3),
                      TextTable::num(c8 * 100, 3),
                      TextTable::num(c16 * 100, 3),
                      TextTable::num(c32 * 100, 3),
                      TextTable::num(c64 * 100, 3),
                      prop > 0 ? TextTable::num(c8 / prop, 1)
                               : "inf"});
        chart.add(rates.workload, "proposed", prop * 100);
        chart.add(rates.workload, "conv-8K ", c8 * 100);
        chart.add(rates.workload, "conv-64K", c64 * 100);
    }

    table.print(std::cout);
    std::cout << '\n';
    chart.print(std::cout);
    return 0;
}
