/**
 * @file
 * Ablation: scoreboarding (Section 5.5).
 *
 * The paper models the integrated core WITH scoreboarding (the T23
 * exponential at rate 1: on average one instruction issues past an
 * incomplete load) and notes the no-scoreboard alternative as the
 * T23-rate-infinity case. This bench quantifies the difference on
 * both GSPN and execution-driven pipelines.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/pim_device.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Ablation - scoreboarding", opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    if (opt.quick) {
        params.missrate.measured_refs = 300'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 25'000;
    }

    TextTable table("Total CPI with and without scoreboarding "
                    "(GSPN model)");
    table.setHeader({"benchmark", "scoreboard (T23 rate 1)",
                     "no scoreboard (rate inf)", "penalty"});

    for (const char *name :
         {"099.go", "126.gcc", "102.swim", "101.tomcatv"}) {
        const SpecWorkload &w = findWorkload(name);
        const HierarchyRates rates = measureIntegratedRates(
            w, /*victim=*/true, params.missrate);
        ProcessorModelParams model;
        model.p_load = w.load_frac;
        model.p_store = w.store_frac;
        model.icache_hit = rates.icache_hit;
        model.load_hit = rates.load_hit;
        model.store_hit = rates.store_hit;
        model.has_l2 = false;

        model.scoreboarding = true;
        const double with_sb =
            w.base_cpi +
            estimateCpi(model, params.gspn_instructions,
                        params.seed)
                .memory_cpi;
        model.scoreboarding = false;
        const double without_sb =
            w.base_cpi +
            estimateCpi(model, params.gspn_instructions,
                        params.seed)
                .memory_cpi;
        table.addRow({w.name, TextTable::num(with_sb, 3),
                      TextTable::num(without_sb, 3),
                      TextTable::num(100.0 * (without_sb - with_sb) /
                                         with_sb,
                                     1) +
                          "%"});
    }
    table.print(std::cout);

    // Cross-check with the execution-driven pipeline: window 1 vs 0.
    std::cout << "\nExecution-driven cross-check (126.gcc proxy, "
                 "pipeline model):\n";
    TextTable pipe("");
    pipe.setHeader({"scoreboard window", "CPI"});
    for (unsigned window : {0u, 1u, 2u, 4u}) {
        PimDeviceConfig cfg;
        cfg.pipeline.scoreboard_window = window;
        PimDevice device(cfg);
        SyntheticWorkload source(findWorkload("126.gcc").proxy);
        const double cpi = device.runWorkload(
            source, opt.quick ? 300'000 : 2'000'000);
        pipe.addRow({std::to_string(window),
                     TextTable::num(cpi, 3)});
    }
    pipe.print(std::cout);
    return 0;
}
