/**
 * @file
 * Shared driver for the Figure 13-17 benches: runs one SPLASH
 * kernel on 1..16 processors under the three architectures of
 * Section 6 and prints execution time normalised to the 1-CPU
 * reference CC-NUMA run (the paper plots absolute time; the curves'
 * relative positions are what carries the result).
 *
 * Figure metadata, point execution and the --format=json renderers
 * live in workloads/splash_figures so mw-server serves the same
 * bytes; this header keeps the CLI plumbing and the text output.
 */

#ifndef MEMWALL_BENCH_SPLASH_DRIVER_HH
#define MEMWALL_BENCH_SPLASH_DRIVER_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/splash_figures.hh"

namespace memwall::benchutil {

inline NumaConfig
machineFor(const std::string &arch, unsigned nodes)
{
    return splashMachineFor(arch, nodes);
}

inline void
printLatencyTable()
{
    const LatencyTable lat;
    TextTable table("Table 6: memory latencies (processor cycles)");
    table.setHeader({"access", "latency"});
    table.addRow({"hit in column buffer / victim cache / FLC",
                  std::to_string(lat.cache_hit)});
    table.addRow({"local memory & SLC hit",
                  std::to_string(lat.local_memory)});
    table.addRow({"INC data access (+tag check)",
                  std::to_string(lat.inc_access) + " + " +
                      std::to_string(lat.inc_tag_extra)});
    table.addRow({"invalidation round trip",
                  std::to_string(lat.invalidation_round_trip)});
    table.addRow({"load remote data",
                  std::to_string(lat.remote_load)});
    table.print(std::cout);
    std::cout << '\n';
}

/** The --nodes flag: 0 (default) sweeps the full {1,2,4,8,16} axis;
 *  N limits the sweep to that single processor count. */
inline std::uint64_t
splashNodesFlag(const Options &opt, const char *prog,
                std::initializer_list<const char *> extra_flags)
{
    const std::string text = opt.extraOr("--nodes", "");
    if (text.empty())
        return 0;
    const std::uint64_t nodes =
        parseU64Flag(text.c_str(), "--nodes", prog, extra_flags);
    if (nodes == 0 || nodes > splash_max_nodes)
        usageError(prog, extra_flags,
                   "--nodes must be between 1 and " +
                       std::to_string(splash_max_nodes));
    return nodes;
}

/**
 * Run the (arch x ncpus) sweep across opt.jobs workers and return
 * the results in submission order (arch-major). Commits run in
 * submission order on this thread, so the vector matches the
 * library's serial memwall::runSplashFigure() and the output is
 * byte-identical to --jobs 1. checksum_ok reports the
 * cross-architecture validation (sampling never perturbs results,
 * only timing).
 */
inline std::vector<SplashResult>
sweepSplashPoints(SplashFigure fig, const Options &opt, double scale,
                  std::uint64_t nodes, const SamplingPlan *plan,
                  bool &checksum_ok)
{
    std::vector<SplashResult> points;
    double checksum0 = 0.0;
    checksum_ok = true;
    ParallelSweep<SplashResult> sweep(opt.jobs, opt.seed);
    for (const auto &arch : splashArchs()) {
        for (unsigned ncpus : splashCpuCounts(nodes)) {
            sweep.submit(
                [fig, &arch, ncpus, scale,
                 plan](const PointContext &) {
                    return runSplashFigurePoint(fig, arch, ncpus,
                                                scale, plan);
                },
                [&points, &checksum0,
                 &checksum_ok](const PointContext &ctx,
                               SplashResult res) {
                    if (ctx.index == 0)
                        checksum0 = res.checksum;
                    if (std::abs(res.checksum - checksum0) >
                        1e-6 * (1.0 + std::abs(checksum0)))
                        checksum_ok = false;
                    points.push_back(std::move(res));
                });
        }
    }
    sweep.finish();
    return points;
}

/**
 * Sampled variant of the figure sweep: same (arch x ncpus) points,
 * but each run interleaves detail/warm/fast-forward per the plan and
 * the reported metric is the mean data-access latency with its
 * confidence interval (sampled makespans are approximate, so the
 * normalised-time chart is not printed). Checksums remain exact —
 * the kernels execute every instruction — and are still
 * cross-validated.
 */
inline int
runSplashFigureSampled(SplashFigure fig, const Options &opt,
                       double scale, std::uint64_t nodes,
                       const SamplingPlan &plan)
{
    if (!opt.json())
        std::cout << "sampling plan: " << plan.describe()
                  << " (units = data accesses)\n\n";

    bool checksum_ok = true;
    const std::vector<SplashResult> points =
        sweepSplashPoints(fig, opt, scale, nodes, &plan,
                          checksum_ok);

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(
            splashFigureSampledJson(fig, scale, nodes, points)
                .c_str(),
            stdout);
        return checksum_ok ? 0 : 1;
    }

    const std::string kernel = splashFigureKernel(fig);
    TextTable table("Sampled mean data-access latency, " + kernel +
                    " (cycles ± " +
                    TextTable::num(plan.level * 100, 0) + "% CI)");
    table.setHeader({"arch", "cpus", "latency", "units",
                     "detail refs", "ff refs"});
    std::size_t i = 0;
    for (const auto &arch : splashArchs()) {
        for (unsigned ncpus : splashCpuCounts(nodes)) {
            const SplashResult &res = points[i++];
            table.addRow(
                {arch, std::to_string(ncpus),
                 TextTable::num(res.sampled_latency, 2) + "±" +
                     TextTable::num(res.sampled_latency_half, 2),
                 std::to_string(res.sample_units),
                 std::to_string(res.detail_accesses),
                 std::to_string(res.ff_accesses)});
        }
    }
    table.print(std::cout);
    std::cout << "\ncross-architecture checksums "
              << (checksum_ok ? "MATCH" : "MISMATCH -- BUG")
              << " (sampling never perturbs results, only timing)\n";
    return checksum_ok ? 0 : 1;
}

inline int
runSplashFigure(SplashFigure fig, int argc, char **argv)
{
    const std::initializer_list<const char *> extra_flags = {
        "--sample", "--nodes"};
    auto opt = parse(argc, argv, extra_flags);
    const std::uint64_t nodes =
        splashNodesFlag(opt, argv[0], extra_flags);
    if (!opt.json()) {
        banner(std::string(splashFigureTitle(fig)) + " - SPLASH " +
                   splashFigureKernel(fig) + " (" +
                   splashFigureDataset(fig) + ")",
               opt);
        printLatencyTable();
    }

    const double scale = resolveSplashScale(fig, opt.quick);

    const std::string sample = opt.extraOr("--sample", "");
    if (!sample.empty())
        return runSplashFigureSampled(fig, opt, scale, nodes,
                                      parseSamplingPlan(sample));

    if (!opt.json())
        std::cout << "problem scale: " << scale
                  << " (1.0 = the paper's data set; runtimes below "
                     "are relative,\nso the architecture comparison "
                     "is scale-consistent)\n\n";

    bool checksum_ok = true;
    const std::vector<SplashResult> points = sweepSplashPoints(
        fig, opt, scale, nodes, nullptr, checksum_ok);

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(splashFigureJson(fig, scale, nodes, points)
                       .c_str(),
                   stdout);
        return checksum_ok ? 0 : 1;
    }

    SeriesChart chart("Execution time, " +
                          std::string(splashFigureKernel(fig)) +
                          " (normalised to 1-cpu reference)",
                      "processors", "relative time");
    const double base = static_cast<double>(points[0].makespan);
    std::size_t i = 0;
    for (const auto &arch : splashArchs())
        for (unsigned ncpus : splashCpuCounts(nodes))
            chart.addPoint(arch, ncpus,
                           static_cast<double>(
                               points[i++].makespan) /
                               base);
    chart.print(std::cout);
    std::cout << "\ncross-architecture checksums "
              << (checksum_ok ? "MATCH" : "MISMATCH -- BUG")
              << "; expected shape: integrated+vc lowest curve; "
                 "reference beats plain\nintegrated where coherence "
                 "misses dominate (OCEAN, WATER).\n";
    return checksum_ok ? 0 : 1;
}

} // namespace memwall::benchutil

#endif // MEMWALL_BENCH_SPLASH_DRIVER_HH
