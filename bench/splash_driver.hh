/**
 * @file
 * Shared driver for the Figure 13-17 benches: runs one SPLASH
 * kernel on 1..16 processors under the three architectures of
 * Section 6 and prints execution time normalised to the 1-CPU
 * reference CC-NUMA run (the paper plots absolute time; the curves'
 * relative positions are what carries the result).
 */

#ifndef MEMWALL_BENCH_SPLASH_DRIVER_HH
#define MEMWALL_BENCH_SPLASH_DRIVER_HH

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/splash/splash.hh"

namespace memwall::benchutil {

inline NumaConfig
machineFor(const std::string &arch, unsigned nodes)
{
    NumaConfig config;
    config.nodes = nodes;
    if (arch == "reference") {
        config.arch = NodeArch::ReferenceCcNuma;
    } else if (arch == "integrated") {
        config.arch = NodeArch::Integrated;
        config.victim_cache = false;
    } else {  // "integrated+vc"
        config.arch = NodeArch::Integrated;
        config.victim_cache = true;
    }
    return config;
}

inline void
printLatencyTable()
{
    const LatencyTable lat;
    TextTable table("Table 6: memory latencies (processor cycles)");
    table.setHeader({"access", "latency"});
    table.addRow({"hit in column buffer / victim cache / FLC",
                  std::to_string(lat.cache_hit)});
    table.addRow({"local memory & SLC hit",
                  std::to_string(lat.local_memory)});
    table.addRow({"INC data access (+tag check)",
                  std::to_string(lat.inc_access) + " + " +
                      std::to_string(lat.inc_tag_extra)});
    table.addRow({"invalidation round trip",
                  std::to_string(lat.invalidation_round_trip)});
    table.addRow({"load remote data",
                  std::to_string(lat.remote_load)});
    table.print(std::cout);
    std::cout << '\n';
}

/**
 * Sampled variant of the figure sweep: same (arch x ncpus) points,
 * but each run interleaves detail/warm/fast-forward per the plan and
 * the reported metric is the mean data-access latency with its
 * confidence interval (sampled makespans are approximate, so the
 * normalised-time chart is not printed). Checksums remain exact —
 * the kernels execute every instruction — and are still
 * cross-validated.
 */
inline int
runSplashFigureSampled(const std::string &kernel, const Options &opt,
                       double scale, const SamplingPlan &plan)
{
    std::cout << "sampling plan: " << plan.describe()
              << " (units = data accesses)\n\n";
    const std::vector<unsigned> cpu_counts{1, 2, 4, 8, 16};
    const std::vector<std::string> archs{
        "reference", "integrated", "integrated+vc"};

    TextTable table("Sampled mean data-access latency, " + kernel +
                    " (cycles ± " +
                    TextTable::num(plan.level * 100, 0) + "% CI)");
    table.setHeader({"arch", "cpus", "latency", "units",
                     "detail refs", "ff refs"});
    double checksum0 = 0.0;
    bool checksum_ok = true;

    ParallelSweep<SplashResult> sweep(opt.jobs, opt.seed);
    for (const auto &arch : archs) {
        for (unsigned ncpus : cpu_counts) {
            sweep.submit(
                [&kernel, &arch, ncpus, scale,
                 &plan](const PointContext &) {
                    SplashParams params;
                    params.nprocs = ncpus;
                    params.machine = machineFor(arch, ncpus);
                    params.scale = scale;
                    params.sampling = &plan;
                    return runSplash(kernel, params);
                },
                [&table, &checksum0, &checksum_ok, &arch,
                 ncpus](const PointContext &ctx, SplashResult res) {
                    if (ctx.index == 0)
                        checksum0 = res.checksum;
                    if (std::abs(res.checksum - checksum0) >
                        1e-6 * (1.0 + std::abs(checksum0)))
                        checksum_ok = false;
                    table.addRow(
                        {arch, std::to_string(ncpus),
                         TextTable::num(res.sampled_latency, 2) +
                             "±" +
                             TextTable::num(res.sampled_latency_half,
                                            2),
                         std::to_string(res.sample_units),
                         std::to_string(res.detail_accesses),
                         std::to_string(res.ff_accesses)});
                });
        }
    }
    sweep.finish();
    table.print(std::cout);
    std::cout << "\ncross-architecture checksums "
              << (checksum_ok ? "MATCH" : "MISMATCH -- BUG")
              << " (sampling never perturbs results, only timing)\n";
    return checksum_ok ? 0 : 1;
}

inline int
runSplashFigure(const std::string &figure, const std::string &kernel,
                const std::string &dataset, int argc, char **argv,
                double full_scale)
{
    auto opt = parse(argc, argv, {"--sample"});
    banner(figure + " - SPLASH " + kernel + " (" + dataset + ")",
           opt);
    printLatencyTable();

    const double scale =
        opt.quick ? full_scale / 6.0 : full_scale;

    const std::string sample = opt.extraOr("--sample", "");
    if (!sample.empty())
        return runSplashFigureSampled(kernel, opt, scale,
                                      parseSamplingPlan(sample));

    std::cout << "problem scale: " << scale
              << " (1.0 = the paper's data set; runtimes below are "
                 "relative,\nso the architecture comparison is "
                 "scale-consistent)\n\n";
    const std::vector<unsigned> cpu_counts{1, 2, 4, 8, 16};
    const std::vector<std::string> archs{
        "reference", "integrated", "integrated+vc"};

    SeriesChart chart("Execution time, " + kernel +
                          " (normalised to 1-cpu reference)",
                      "processors", "relative time");
    double base = 0.0;
    double checksum0 = 0.0;
    bool checksum_ok = true;

    // The (arch x ncpus) points are independent simulations; sweep
    // them across opt.jobs workers. Commits run in submission order
    // on this thread, so the normalisation base (first point:
    // reference, 1 cpu) is always set before any later point is
    // charted and the output is byte-identical to --jobs 1.
    ParallelSweep<SplashResult> sweep(opt.jobs, opt.seed);
    for (const auto &arch : archs) {
        for (unsigned ncpus : cpu_counts) {
            sweep.submit(
                [&kernel, &arch, ncpus,
                 scale](const PointContext &) {
                    SplashParams params;
                    params.nprocs = ncpus;
                    params.machine = machineFor(arch, ncpus);
                    params.scale = scale;
                    return runSplash(kernel, params);
                },
                [&chart, &base, &checksum0, &checksum_ok, &arch,
                 ncpus](const PointContext &ctx,
                        SplashResult res) {
                    if (ctx.index == 0) {
                        base = static_cast<double>(res.makespan);
                        checksum0 = res.checksum;
                    }
                    if (std::abs(res.checksum - checksum0) >
                        1e-6 * (1.0 + std::abs(checksum0)))
                        checksum_ok = false;
                    chart.addPoint(arch, ncpus,
                                   static_cast<double>(
                                       res.makespan) /
                                       base);
                });
        }
    }
    sweep.finish();
    chart.print(std::cout);
    std::cout << "\ncross-architecture checksums "
              << (checksum_ok ? "MATCH" : "MISMATCH -- BUG")
              << "; expected shape: integrated+vc lowest curve; "
                 "reference beats plain\nintegrated where coherence "
                 "misses dominate (OCEAN, WATER).\n";
    return checksum_ok ? 0 : 1;
}

} // namespace memwall::benchutil

#endif // MEMWALL_BENCH_SPLASH_DRIVER_HH
