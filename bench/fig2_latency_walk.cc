/**
 * @file
 * Regenerates Figure 2: memory access time of the SS-5 and SS-10/61
 * exposed by walking arrays of increasing size with various strides.
 * The SS-10's prefetch unit hides main-memory latency for small
 * linear strides (the paper's footnote 2), and codes that miss the
 * SS-10's 1 MB L2 see LOWER access times on the SS-5.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "mem/hierarchy.hh"
#include "trace/stride_walker.hh"

using namespace memwall;

namespace {

double
walk(const HierarchyConfig &config, std::uint64_t array_bytes,
     std::uint32_t stride, std::uint64_t refs)
{
    MemoryHierarchy machine(config);
    StrideWalker walker(0x10000000, array_bytes, stride);
    const RefSink sink = [&](const MemRef &ref) {
        machine.access(RefKind::Load, ref.addr);
    };
    // Warm: one full pass over the array (or the ref budget).
    walker.generate(std::max<std::uint64_t>(array_bytes / stride, 64),
                    sink);
    machine.resetStats();
    walker.generate(refs, sink);
    return machine.meanLatencyNs();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Figure 2 - SS-5 vs SS-10 latency walk", opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 40'000 : 400'000);

    const HierarchyConfig machines[] = {HierarchyConfig::ss5(),
                                        HierarchyConfig::ss10()};
    const std::uint32_t strides[] = {16, 128, 4096};

    for (std::uint32_t stride : strides) {
        SeriesChart chart(
            "Figure 2: loaded latency, stride " +
                std::to_string(stride) + " bytes",
            "array size (KB)", "mean access time (ns)");
        for (const auto &m : machines) {
            for (std::uint64_t kb = 4; kb <= 16 * 1024; kb *= 2) {
                const double ns =
                    walk(m, kb * KiB, stride, refs);
                chart.addPoint(m.name, static_cast<double>(kb), ns);
            }
        }
        chart.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Expected shape: plateaus at each cache level; "
                 "beyond ~1MB the SS-10 curve rises\nABOVE the SS-5 "
                 "curve (the paper's key observation), except at "
                 "small strides where\nthe SS-10's prefetch unit "
                 "hides memory latency.\n";
    return 0;
}
