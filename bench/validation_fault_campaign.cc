/**
 * @file
 * Validation: seeded fault campaigns across the memory, link and
 * protocol layers.
 *
 * Sweeps the soft-error rate, the link bit-error rate and the
 * protocol NACK rate independently and prints one reliability table
 * per layer, plus two self-checks:
 *
 *  - zero-fault equivalence: with every rate at zero the faulty
 *    machine, link and memory slice behave bit-for-bit like their
 *    clean twins (same latencies, all fault counters zero);
 *  - determinism: re-running the highest-rate campaign with the same
 *    seed reproduces the identical report.
 *
 * Flags (beyond the usual --seed/--quick):
 *   --rates R,R,...   soft-error rates in faults/megacycle
 *   --bers  B,B,...   link bit error rates
 *   --nacks P,P,...   protocol NACK probabilities
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "fault/campaign.hh"

using namespace memwall;

namespace {

CampaignConfig
baseConfig(const benchutil::Options &opt)
{
    CampaignConfig cfg;
    cfg.seed = opt.seed;
    cfg.horizon = opt.quick ? 250'000 : 1'000'000;
    cfg.link_messages = opt.quick ? 2'000 : 10'000;
    cfg.protocol_accesses = opt.quick ? 5'000 : 20'000;
    return cfg;
}

std::string
pct(double fraction)
{
    return TextTable::num(fraction * 100.0, 3) + "%";
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv,
                                {"--rates", "--bers", "--nacks"});
    benchutil::banner("Validation - seeded fault campaigns", opt);

    const auto rates = benchutil::parseDoubleList(
        opt.extraOr("--rates", "0,10,50,200,1000"));
    const auto bers = benchutil::parseDoubleList(
        opt.extraOr("--bers", "0,1e-7,1e-6,1e-5"));
    const auto nacks = benchutil::parseDoubleList(
        opt.extraOr("--nacks", "0,0.01,0.05,0.2"));

    // ---- Self-check 1: zero-fault runs are bit-for-bit clean ------
    CampaignConfig zero = baseConfig(opt);
    const ReliabilityReport z = runFaultCampaign(zero);
    const bool clean_ok =
        z.faults_injected == 0 && z.scrub_corrected == 0 &&
        z.scrub_uncorrectable == 0 && z.machine_checks == 0 &&
        z.silent_corruptions == 0 && z.link_retransmissions == 0 &&
        z.protocol_nacks == 0 &&
        z.link_mean_latency == z.link_clean_latency &&
        z.mean_access_cycles == z.clean_access_cycles;
    std::printf("zero-fault equivalence: %s (link %.3f == %.3f, "
                "protocol %.3f == %.3f cycles)\n\n",
                clean_ok ? "PASS" : "FAIL", z.link_mean_latency,
                z.link_clean_latency, z.mean_access_cycles,
                z.clean_access_cycles);

    // ---- Memory layer: soft errors vs scrubbing -------------------
    TextTable mem("Memory: soft errors vs refresh-ride scrubbing "
                  "(per " +
                  TextTable::intWithCommas(zero.horizon) +
                  " cycles)");
    mem.setHeader({"faults/Mcyc", "injected", "scrub-corr",
                   "demand-corr", "uncorr", "spared", "mach-chk",
                   "silent", "scrub-ovh"});
    for (double rate : rates) {
        CampaignConfig cfg = baseConfig(opt);
        cfg.faults_per_megacycle = rate;
        const ReliabilityReport r = runFaultCampaign(cfg);
        mem.addRow({TextTable::num(rate, 0),
                    std::to_string(r.faults_injected),
                    std::to_string(r.scrub_corrected),
                    std::to_string(r.demand_corrected),
                    std::to_string(r.scrub_uncorrectable +
                                   r.demand_uncorrectable),
                    std::to_string(r.rows_spared),
                    std::to_string(r.machine_checks),
                    std::to_string(r.silent_corruptions),
                    pct(r.scrub_overhead)});
    }
    mem.print(std::cout);
    std::cout << "\n";

    // ---- Link layer: CRC + ACK/NACK retransmission ----------------
    TextTable link("Serial link: CRC retransmission under bit "
                   "errors (" +
                   TextTable::intWithCommas(zero.link_messages) +
                   " x 40-byte frames)");
    link.setHeader({"BER", "retrans", "crc-det", "timeouts",
                    "failures", "mean lat", "clean lat",
                    "inflation"});
    for (double ber : bers) {
        CampaignConfig cfg = baseConfig(opt);
        cfg.link_bit_error_rate = ber;
        const ReliabilityReport r = runFaultCampaign(cfg);
        const double inflation =
            r.link_clean_latency > 0.0
                ? r.link_mean_latency / r.link_clean_latency - 1.0
                : 0.0;
        char ber_str[32];
        std::snprintf(ber_str, sizeof ber_str, "%.0e", ber);
        link.addRow({ber_str,
                     std::to_string(r.link_retransmissions),
                     std::to_string(r.link_crc_detected),
                     std::to_string(r.link_timeouts),
                     std::to_string(r.link_failures),
                     TextTable::num(r.link_mean_latency, 2),
                     TextTable::num(r.link_clean_latency, 2),
                     pct(inflation)});
    }
    link.print(std::cout);
    std::cout << "\n";

    // ---- Protocol layer: NACK + bounded retry ---------------------
    TextTable proto("Protocol engine: NACK/backoff retry (" +
                    TextTable::intWithCommas(
                        zero.protocol_accesses) +
                    " accesses, 4 nodes)");
    proto.setHeader({"nack rate", "remote", "nacks", "retries",
                     "failures", "mean lat", "clean lat",
                     "inflation"});
    for (double nack : nacks) {
        CampaignConfig cfg = baseConfig(opt);
        cfg.protocol_nack_rate = nack;
        const ReliabilityReport r = runFaultCampaign(cfg);
        const double inflation =
            r.clean_access_cycles > 0.0
                ? r.mean_access_cycles / r.clean_access_cycles - 1.0
                : 0.0;
        proto.addRow({TextTable::num(nack, 2),
                      std::to_string(r.remote_transactions),
                      std::to_string(r.protocol_nacks),
                      std::to_string(r.protocol_retries),
                      std::to_string(r.protocol_failures),
                      TextTable::num(r.mean_access_cycles, 2),
                      TextTable::num(r.clean_access_cycles, 2),
                      pct(inflation)});
    }
    proto.print(std::cout);
    std::cout << "\n";

    // ---- Self-check 2: same seed => identical report --------------
    CampaignConfig det = baseConfig(opt);
    det.faults_per_megacycle = rates.back();
    det.link_bit_error_rate = bers.back();
    det.protocol_nack_rate = nacks.back();
    const ReliabilityReport a = runFaultCampaign(det);
    const ReliabilityReport b = runFaultCampaign(det);
    std::printf("determinism (two runs, seed %llu, all rates max): "
                "%s\n",
                static_cast<unsigned long long>(opt.seed),
                a == b ? "PASS" : "FAIL");
    std::printf(
        "\nExpected: zero-fault row all zeros; corrected grows "
        "with the rate while\nuncorrectable stays 0 until doubles "
        "become likely; retransmissions recover\nevery corrupted "
        "frame; both self-checks PASS.\n");
    return (clean_ok && a == b) ? 0 : 1;
}
