/**
 * @file
 * Validation: seeded fault campaigns across the memory, link and
 * protocol layers.
 *
 * Sweeps the soft-error rate, the link bit-error rate and the
 * protocol NACK rate independently and prints one reliability table
 * per layer, plus two self-checks:
 *
 *  - zero-fault equivalence: with every rate at zero the faulty
 *    machine, link and memory slice behave bit-for-bit like their
 *    clean twins (same latencies, all fault counters zero);
 *  - determinism: re-running the highest-rate campaign with the same
 *    seed reproduces the identical report.
 *
 * Flags (beyond the usual --seed/--quick):
 *   --rates R,R,...   soft-error rates in faults/megacycle
 *   --bers  B,B,...   link bit error rates
 *   --nacks P,P,...   protocol NACK probabilities
 *
 * With `--format json` the same campaign is emitted as a single JSON
 * document. Every field is a deterministic function of the seed and
 * the swept rates (no wall-clock times), so the output is
 * byte-identical across runs — CI diffs it against a golden file.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "fault/campaign.hh"

using namespace memwall;

namespace {

CampaignConfig
baseConfig(const benchutil::Options &opt)
{
    CampaignConfig cfg;
    cfg.seed = opt.seed;
    cfg.horizon = opt.quick ? 250'000 : 1'000'000;
    cfg.link_messages = opt.quick ? 2'000 : 10'000;
    cfg.protocol_accesses = opt.quick ? 5'000 : 20'000;
    return cfg;
}

std::string
pct(double fraction)
{
    return TextTable::num(fraction * 100.0, 3) + "%";
}

/** One swept point: the knob value and the resulting report. */
struct SweptPoint {
    double value = 0.0;
    ReliabilityReport report;
};

void
printJson(const CampaignConfig &base, bool clean_ok,
          const std::vector<SweptPoint> &mem,
          const std::vector<SweptPoint> &link,
          const std::vector<SweptPoint> &proto, bool det_ok,
          std::uint64_t seed)
{
    std::printf("{\n");
    std::printf("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(seed));
    std::printf("  \"horizon\": %llu,\n",
                static_cast<unsigned long long>(base.horizon));
    std::printf("  \"link_messages\": %llu,\n",
                static_cast<unsigned long long>(base.link_messages));
    std::printf("  \"protocol_accesses\": %llu,\n",
                static_cast<unsigned long long>(
                    base.protocol_accesses));
    std::printf("  \"zero_fault_equivalence\": %s,\n",
                clean_ok ? "true" : "false");

    std::printf("  \"memory\": [\n");
    for (std::size_t i = 0; i < mem.size(); ++i) {
        const ReliabilityReport &r = mem[i].report;
        std::printf(
            "    {\"faults_per_megacycle\": %g, "
            "\"injected\": %llu, \"scrub_corrected\": %llu, "
            "\"demand_corrected\": %llu, \"uncorrectable\": %llu, "
            "\"rows_spared\": %llu, \"machine_checks\": %llu, "
            "\"silent_corruptions\": %llu, "
            "\"scrub_overhead\": %.6f}%s\n",
            mem[i].value,
            static_cast<unsigned long long>(r.faults_injected),
            static_cast<unsigned long long>(r.scrub_corrected),
            static_cast<unsigned long long>(r.demand_corrected),
            static_cast<unsigned long long>(r.scrub_uncorrectable +
                                            r.demand_uncorrectable),
            static_cast<unsigned long long>(r.rows_spared),
            static_cast<unsigned long long>(r.machine_checks),
            static_cast<unsigned long long>(r.silent_corruptions),
            r.scrub_overhead, i + 1 < mem.size() ? "," : "");
    }
    std::printf("  ],\n");

    std::printf("  \"link\": [\n");
    for (std::size_t i = 0; i < link.size(); ++i) {
        const ReliabilityReport &r = link[i].report;
        std::printf(
            "    {\"bit_error_rate\": %g, "
            "\"retransmissions\": %llu, \"crc_detected\": %llu, "
            "\"timeouts\": %llu, \"failures\": %llu, "
            "\"mean_latency\": %.6f, \"clean_latency\": %.6f}%s\n",
            link[i].value,
            static_cast<unsigned long long>(r.link_retransmissions),
            static_cast<unsigned long long>(r.link_crc_detected),
            static_cast<unsigned long long>(r.link_timeouts),
            static_cast<unsigned long long>(r.link_failures),
            r.link_mean_latency, r.link_clean_latency,
            i + 1 < link.size() ? "," : "");
    }
    std::printf("  ],\n");

    std::printf("  \"protocol\": [\n");
    for (std::size_t i = 0; i < proto.size(); ++i) {
        const ReliabilityReport &r = proto[i].report;
        std::printf(
            "    {\"nack_rate\": %g, "
            "\"remote_transactions\": %llu, \"nacks\": %llu, "
            "\"retries\": %llu, \"failures\": %llu, "
            "\"mean_access_cycles\": %.6f, "
            "\"clean_access_cycles\": %.6f}%s\n",
            proto[i].value,
            static_cast<unsigned long long>(r.remote_transactions),
            static_cast<unsigned long long>(r.protocol_nacks),
            static_cast<unsigned long long>(r.protocol_retries),
            static_cast<unsigned long long>(r.protocol_failures),
            r.mean_access_cycles, r.clean_access_cycles,
            i + 1 < proto.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"determinism\": %s\n", det_ok ? "true" : "false");
    std::printf("}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv,
                                {"--rates", "--bers", "--nacks"});
    if (!opt.json())
        benchutil::banner("Validation - seeded fault campaigns",
                          opt);

    const auto rates = benchutil::parseDoubleList(
        opt.extraOr("--rates", "0,10,50,200,1000"));
    const auto bers = benchutil::parseDoubleList(
        opt.extraOr("--bers", "0,1e-7,1e-6,1e-5"));
    const auto nacks = benchutil::parseDoubleList(
        opt.extraOr("--nacks", "0,0.01,0.05,0.2"));

    // ---- Self-check 1: zero-fault runs are bit-for-bit clean ------
    CampaignConfig zero_cfg = baseConfig(opt);
    const ReliabilityReport z = runFaultCampaign(zero_cfg);
    const bool clean_ok =
        z.faults_injected == 0 && z.scrub_corrected == 0 &&
        z.scrub_uncorrectable == 0 && z.machine_checks == 0 &&
        z.silent_corruptions == 0 && z.link_retransmissions == 0 &&
        z.protocol_nacks == 0 &&
        z.link_mean_latency == z.link_clean_latency &&
        z.mean_access_cycles == z.clean_access_cycles;

    // ---- Sweep each layer independently ---------------------------
    std::vector<SweptPoint> mem_pts, link_pts, proto_pts;
    for (double rate : rates) {
        CampaignConfig cfg = baseConfig(opt);
        cfg.faults_per_megacycle = rate;
        mem_pts.push_back({rate, runFaultCampaign(cfg)});
    }
    for (double ber : bers) {
        CampaignConfig cfg = baseConfig(opt);
        cfg.link_bit_error_rate = ber;
        link_pts.push_back({ber, runFaultCampaign(cfg)});
    }
    for (double nack : nacks) {
        CampaignConfig cfg = baseConfig(opt);
        cfg.protocol_nack_rate = nack;
        proto_pts.push_back({nack, runFaultCampaign(cfg)});
    }

    // ---- Self-check 2: same seed => identical report --------------
    CampaignConfig det = baseConfig(opt);
    det.faults_per_megacycle = rates.back();
    det.link_bit_error_rate = bers.back();
    det.protocol_nack_rate = nacks.back();
    const ReliabilityReport a = runFaultCampaign(det);
    const ReliabilityReport b = runFaultCampaign(det);
    const bool det_ok = a == b;

    if (opt.json()) {
        printJson(zero_cfg, clean_ok, mem_pts, link_pts, proto_pts,
                  det_ok, opt.seed);
        return (clean_ok && det_ok) ? 0 : 1;
    }

    std::printf("zero-fault equivalence: %s (link %.3f == %.3f, "
                "protocol %.3f == %.3f cycles)\n\n",
                clean_ok ? "PASS" : "FAIL", z.link_mean_latency,
                z.link_clean_latency, z.mean_access_cycles,
                z.clean_access_cycles);

    // ---- Memory layer: soft errors vs scrubbing -------------------
    TextTable mem("Memory: soft errors vs refresh-ride scrubbing "
                  "(per " +
                  TextTable::intWithCommas(zero_cfg.horizon) +
                  " cycles)");
    mem.setHeader({"faults/Mcyc", "injected", "scrub-corr",
                   "demand-corr", "uncorr", "spared", "mach-chk",
                   "silent", "scrub-ovh"});
    for (const SweptPoint &pt : mem_pts) {
        const ReliabilityReport &r = pt.report;
        mem.addRow({TextTable::num(pt.value, 0),
                    std::to_string(r.faults_injected),
                    std::to_string(r.scrub_corrected),
                    std::to_string(r.demand_corrected),
                    std::to_string(r.scrub_uncorrectable +
                                   r.demand_uncorrectable),
                    std::to_string(r.rows_spared),
                    std::to_string(r.machine_checks),
                    std::to_string(r.silent_corruptions),
                    pct(r.scrub_overhead)});
    }
    mem.print(std::cout);
    std::cout << "\n";

    // ---- Link layer: CRC + ACK/NACK retransmission ----------------
    TextTable link("Serial link: CRC retransmission under bit "
                   "errors (" +
                   TextTable::intWithCommas(
                       zero_cfg.link_messages) +
                   " x 40-byte frames)");
    link.setHeader({"BER", "retrans", "crc-det", "timeouts",
                    "failures", "mean lat", "clean lat",
                    "inflation"});
    for (const SweptPoint &pt : link_pts) {
        const ReliabilityReport &r = pt.report;
        const double inflation =
            r.link_clean_latency > 0.0
                ? r.link_mean_latency / r.link_clean_latency - 1.0
                : 0.0;
        char ber_str[32];
        std::snprintf(ber_str, sizeof ber_str, "%.0e", pt.value);
        link.addRow({ber_str,
                     std::to_string(r.link_retransmissions),
                     std::to_string(r.link_crc_detected),
                     std::to_string(r.link_timeouts),
                     std::to_string(r.link_failures),
                     TextTable::num(r.link_mean_latency, 2),
                     TextTable::num(r.link_clean_latency, 2),
                     pct(inflation)});
    }
    link.print(std::cout);
    std::cout << "\n";

    // ---- Protocol layer: NACK + bounded retry ---------------------
    TextTable proto("Protocol engine: NACK/backoff retry (" +
                    TextTable::intWithCommas(
                        zero_cfg.protocol_accesses) +
                    " accesses, 4 nodes)");
    proto.setHeader({"nack rate", "remote", "nacks", "retries",
                     "failures", "mean lat", "clean lat",
                     "inflation"});
    for (const SweptPoint &pt : proto_pts) {
        const ReliabilityReport &r = pt.report;
        const double inflation =
            r.clean_access_cycles > 0.0
                ? r.mean_access_cycles / r.clean_access_cycles - 1.0
                : 0.0;
        proto.addRow({TextTable::num(pt.value, 2),
                      std::to_string(r.remote_transactions),
                      std::to_string(r.protocol_nacks),
                      std::to_string(r.protocol_retries),
                      std::to_string(r.protocol_failures),
                      TextTable::num(r.mean_access_cycles, 2),
                      TextTable::num(r.clean_access_cycles, 2),
                      pct(inflation)});
    }
    proto.print(std::cout);
    std::cout << "\n";

    std::printf("determinism (two runs, seed %llu, all rates max): "
                "%s\n",
                static_cast<unsigned long long>(opt.seed),
                det_ok ? "PASS" : "FAIL");
    std::printf(
        "\nExpected: zero-fault row all zeros; corrected grows "
        "with the rate while\nuncorrectable stays 0 until doubles "
        "become likely; retransmissions recover\nevery corrupted "
        "frame; both self-checks PASS.\n");
    return (clean_ok && det_ok) ? 0 : 1;
}
