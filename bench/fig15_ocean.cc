/**
 * @file
 * Regenerates Figure 15: total execution time of SPLASH OCEAN
 * (128x128-grid) on 1..16 processors, comparing the
 * reference CC-NUMA (16 KB FLC + infinite SLC) against the
 * integrated design with and without the victim cache.
 */

#include "splash_driver.hh"

int
main(int argc, char **argv)
{
    return memwall::benchutil::runSplashFigure(
        memwall::SplashFigure::Fig15Ocean, argc, argv);
}
