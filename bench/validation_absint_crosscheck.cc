/**
 * @file
 * validation_absint_crosscheck — differential verification of the
 * abstract interpreter (and the provable lint diagnostics built on
 * it) against real execution.
 *
 * Generates N seeded random MW32 programs from two families:
 *
 *  - structured assembly sources: counted loops over every branch
 *    opcode, nested loops, jump-table dispatch with andi-masked
 *    indices, calls with genuine save/restore frames, div/rem, and
 *    occasional planted bugs (div-by-zero, misaligned access,
 *    out-of-section access, uninitialised load, out-of-table jump);
 *  - instruction soup in the style of validation_exec_lockstep:
 *    branchy spaghetti that stresses the fixpoint on irregular CFGs.
 *
 * Every program is analysed (AbsInt + lint) and then stepped on the
 * reference interpreter, asserting:
 *
 *  (a) CONTAINMENT — before every instruction executes, every
 *      architectural register value lies inside the static range
 *      AbsInt computed for that program point;
 *  (b) ZERO FALSE POSITIVES — every provable diagnostic
 *      (div-by-zero, oob-access, jump-oob, misaligned, uninit-load)
 *      is dynamically true each time its instruction is reached:
 *      the divisor really is zero, the address really is misaligned
 *      / outside every assembled section / outside the jump table /
 *      never stored to.
 *
 * The soundness contract (absint.hh) excludes executions that
 * return through a clobbered link register or escape a recovered
 * jump table: the harness maintains a shadow call stack and aborts
 * verification of a program at the first wild return or
 * out-of-table jump (counted, bounded below 20%).
 *
 * Flags: --programs N (default 1000, the acceptance floor), --seed,
 * --format json.
 */

#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/absint.hh"
#include "analysis/charact.hh"
#include "analysis/lint.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "mem/backing_store.hh"

using namespace memwall;

namespace {

constexpr std::initializer_list<const char *> extra_flags = {
    "--programs"};

constexpr Addr code_base = 0x1000;
constexpr Addr data_base = 0x100000;
constexpr std::uint32_t data_window = 4096;
constexpr unsigned reg_window = 28;
constexpr unsigned reg_code = 26;
constexpr std::uint64_t step_budget = 10000;

// ----------------------------------------------------------------
// Structured program generator: emits assembly source.
// ----------------------------------------------------------------

struct SrcGen
{
    Rng &rng;
    std::vector<std::string> code;   ///< instruction lines
    std::vector<std::string> data;   ///< data lines (after halt)
    std::vector<std::string> funcs;  ///< functions (after halt)
    int label = 0;
    int arr = 0;

    explicit SrcGen(Rng &r) : rng(r) {}

    std::string
    lbl(const char *stem)
    {
        return std::string(stem) + std::to_string(label++);
    }

    /** Fresh .space array of @p bytes; returns its label. */
    std::string
    newArray(unsigned bytes)
    {
        std::string name = "arr" + std::to_string(arr++);
        data.push_back(name + ":");
        data.push_back("    .space " + std::to_string(bytes));
        return name;
    }

    /** Fresh .word datum; returns its label. */
    std::string
    newWord(std::uint32_t v)
    {
        std::string name = "dat" + std::to_string(arr++);
        data.push_back(name + ":");
        data.push_back("    .word " + std::to_string(v));
        return name;
    }

    void
    emit(const std::string &s)
    {
        code.push_back("    " + s);
    }

    /** A counted loop exercising one branch opcode; the body does a
     * strided store then (sometimes) a load-accumulate. */
    void
    countedLoop()
    {
        const unsigned trips =
            static_cast<unsigned>(rng.uniformRange(1, 16));
        const std::string a = newArray((trips + 1) * 4);
        const std::string head = lbl("loop");
        const bool rmw = rng.bernoulli(0.5);
        const int variant = static_cast<int>(rng.uniformInt(6));

        emit("li   r4, " + a);
        emit("addi r5, r0, " +
             std::to_string(rng.uniformInt(64)));
        switch (variant) {
          case 0:  // bne, count up
          case 1:  // blt, count up
          case 2:  // bltu, count up
            emit("addi r1, r0, 0");
            emit("addi r2, r0, " + std::to_string(trips));
            code.push_back(head + ":");
            emit("slli r3, r1, 2");
            emit("add  r3, r4, r3");
            emit("sw   r5, 0(r3)");
            if (rmw) {
                emit("lw   r6, 0(r3)");
                emit("add  r5, r5, r6");
            }
            emit("addi r1, r1, 1");
            emit(std::string(variant == 0   ? "bne "
                             : variant == 1 ? "blt "
                                            : "bltu") +
                 " r1, r2, " + head);
            break;
          case 3:  // bge, count down
          case 4:  // bgeu, count down
            emit("addi r1, r0, " + std::to_string(trips));
            emit("addi r2, r0, 1");
            code.push_back(head + ":");
            emit("slli r3, r1, 2");
            emit("add  r3, r4, r3");
            emit("sw   r5, 0(r3)");
            emit("addi r1, r1, -1");
            emit(std::string(variant == 3 ? "bge " : "bgeu") +
                 " r1, r2, " + head);
            break;
          default: {  // beq top-test: loop while i != trips
            const std::string done = lbl("done");
            emit("addi r1, r0, 0");
            emit("addi r2, r0, " + std::to_string(trips));
            code.push_back(head + ":");
            emit("beq  r1, r2, " + done);
            emit("slli r3, r1, 2");
            emit("add  r3, r4, r3");
            emit("sw   r5, 0(r3)");
            emit("addi r1, r1, 1");
            emit("b    " + head);
            code.push_back(done + ":");
            break;
          }
        }
    }

    /** Two-level nest: outer counts, inner stores/accumulates. */
    void
    nestedLoop()
    {
        const unsigned outer =
            static_cast<unsigned>(rng.uniformRange(1, 4));
        const unsigned inner =
            static_cast<unsigned>(rng.uniformRange(1, 8));
        const std::string a = newArray((inner + 1) * 4);
        const std::string oh = lbl("outer"), ih = lbl("inner");

        emit("li   r4, " + a);
        emit("addi r7, r0, 0");
        emit("addi r8, r0, " + std::to_string(outer));
        code.push_back(oh + ":");
        emit("addi r1, r0, 0");
        emit("addi r2, r0, " + std::to_string(inner));
        code.push_back(ih + ":");
        emit("slli r3, r1, 2");
        emit("add  r3, r4, r3");
        emit("sw   r7, 0(r3)");
        emit("lw   r6, 0(r3)");
        emit("add  r7, r7, r6");
        emit("addi r1, r1, 1");
        emit("bne  r1, r2, " + ih);
        emit("addi r7, r7, 1");
        emit("bne  r7, r8, " + oh);
    }

    /** Jump-table dispatch with an andi-masked index loaded from
     * data; occasionally plants an out-of-table index. */
    void
    jumpTable()
    {
        const unsigned entries = rng.bernoulli(0.5) ? 2 : 4;
        const bool plant_oob = rng.bernoulli(0.10);
        const std::string tab = "tab" + std::to_string(arr++);
        const std::string idx =
            newWord(static_cast<std::uint32_t>(
                rng.uniformInt(256)));
        const std::string join = lbl("join");
        std::vector<std::string> cases;
        for (unsigned e = 0; e < entries; ++e)
            cases.push_back(lbl("case"));

        emit("li   r4, " + tab);
        emit("li   r6, " + idx);
        emit("lw   r6, 0(r6)");
        if (plant_oob) {
            // Index provably past the table; hidden from the CFG
            // folder behind a sub so the table is still recovered.
            emit("addi r6, r0, " +
                 std::to_string(entries * 4 + 4));
            emit("sub  r6, r6, r0");
        } else {
            emit("andi r6, r6, " + std::to_string(entries - 1));
            emit("slli r6, r6, 2");
        }
        emit("add  r6, r4, r6");
        emit("lw   r7, 0(r6)");
        emit("jalr r0, r7");
        for (unsigned e = 0; e < entries; ++e) {
            code.push_back(cases[e] + ":");
            emit("addi r5, r0, " + std::to_string(e + 1));
            if (e + 1 < entries)
                emit("b    " + join);
        }
        code.push_back(join + ":");

        data.push_back(tab + ":");
        for (unsigned e = 0; e < entries; ++e)
            data.push_back("    .word " + cases[e]);
        if (plant_oob)
            // The slot past the table the planted index hits: a
            // code address again, so execution continues sanely
            // after the harness stops verifying.
            data.push_back("    .word " + join);
    }

    /** Call with a genuine save/restore frame; may nest one deep. */
    void
    callSegment(bool allow_nest)
    {
        const std::string f = lbl("func");
        const std::string inner_name =
            allow_nest && rng.bernoulli(0.4) ? lbl("func") : "";

        emit("addi r5, r0, " +
             std::to_string(rng.uniformInt(100)));
        emit("jal  ra, " + f);
        emit("add  r9, r5, r9");

        funcs.push_back(f + ":");
        funcs.push_back("    addi sp, sp, -8");
        funcs.push_back("    sw   r5, 0(sp)");
        funcs.push_back("    sw   ra, 4(sp)");
        funcs.push_back("    addi r5, r5, 3");
        if (!inner_name.empty())
            funcs.push_back("    jal  ra, " + inner_name);
        funcs.push_back("    lw   r5, 0(sp)");
        funcs.push_back("    lw   ra, 4(sp)");
        funcs.push_back("    addi sp, sp, 8");
        funcs.push_back("    ret");
        if (!inner_name.empty()) {
            funcs.push_back(inner_name + ":");
            funcs.push_back("    addi sp, sp, -4");
            funcs.push_back("    sw   r5, 0(sp)");
            funcs.push_back("    addi r5, r0, 1");
            funcs.push_back("    lw   r5, 0(sp)");
            funcs.push_back("    addi sp, sp, 4");
            funcs.push_back("    ret");
        }
    }

    /** Divide by a masked-nonzero divisor, or a planted zero. */
    void
    divSegment()
    {
        const std::string v = newWord(
            static_cast<std::uint32_t>(rng.uniformInt(1000)));
        emit("li   r6, " + v);
        emit("lw   r6, 0(r6)");
        if (rng.bernoulli(0.12)) {
            emit(rng.bernoulli(0.5) ? "div  r7, r6, r0"
                                    : "rem  r7, r6, r0");
        } else {
            emit("andi r7, r6, 15");
            emit("addi r7, r7, 1");
            emit(rng.bernoulli(0.5) ? "div  r8, r6, r7"
                                    : "rem  r8, r6, r7");
        }
    }

    /** Masked-index load from an array; the array may deliberately
     * never be stored to (planted uninit-load). */
    void
    maskedLoad(bool plant_uninit)
    {
        const unsigned mask = rng.bernoulli(0.5) ? 12 : 28;
        const std::string a = newArray(mask + 4);
        const std::string idx = newWord(
            static_cast<std::uint32_t>(rng.uniformInt(256)));
        emit("li   r4, " + a);
        emit("li   r6, " + idx);
        emit("lw   r6, 0(r6)");
        emit("andi r6, r6, " + std::to_string(mask));
        if (!plant_uninit) {
            // Initialise the slot about to be read (and the check
            // that every store is bounded needs it anyway).
            emit("add  r3, r4, r6");
            emit("sw   r5, 0(r3)");
        }
        emit("add  r3, r4, r6");
        emit("lw   r9, 0(r3)");
    }

    /** Planted misaligned or out-of-section access. */
    void
    plantedAccess()
    {
        if (rng.bernoulli(0.5)) {
            const std::string v = newWord(7);
            emit("li   r6, " + v);
            emit("addi r6, r6, 1");
            emit(rng.bernoulli(0.5) ? "lh   r7, 0(r6)"
                                    : "lw   r7, 0(r6)");
        } else {
            emit("li   r6, " +
                 std::to_string(0x200000 +
                                4 * rng.uniformInt(1000)));
            emit(rng.bernoulli(0.5) ? "sw   r5, 0(r6)"
                                    : "lw   r7, 0(r6)");
        }
    }
};

AssembledProgram
generateStructured(Rng &rng)
{
    SrcGen g(rng);
    const unsigned nseg =
        static_cast<unsigned>(rng.uniformRange(2, 5));
    g.emit("li   sp, 0x80000");
    g.emit("addi r9, r0, 0");
    g.emit("addi r5, r0, 1");
    for (unsigned s = 0; s < nseg; ++s) {
        switch (rng.uniformInt(7)) {
          case 0: g.countedLoop(); break;
          case 1: g.nestedLoop(); break;
          case 2: g.jumpTable(); break;
          case 3: g.callSegment(s == 0); break;
          case 4: g.divSegment(); break;
          case 5: g.maskedLoad(rng.bernoulli(0.12)); break;
          default:
            if (rng.bernoulli(0.2))
                g.plantedAccess();
            else
                g.countedLoop();
            break;
        }
    }
    std::string src = ".org 0x1000\nstart:\n";
    for (const std::string &l : g.code)
        src += l + "\n";
    src += "    halt\n";
    for (const std::string &l : g.funcs)
        src += l + "\n";
    for (const std::string &l : g.data)
        src += l + "\n";
    return assemble(src, "<generated>");
}

// ----------------------------------------------------------------
// Soup generator (validation_exec_lockstep's, minus the statically
// unresolvable jalr-through-r26 so most programs stay analysable).
// ----------------------------------------------------------------

unsigned
randomReg(Rng &rng, bool allow_r0)
{
    for (;;) {
        const auto r = static_cast<unsigned>(rng.uniformInt(32));
        if (r == reg_window || r == reg_code)
            continue;
        if (r == 0 && !allow_r0)
            continue;
        return r;
    }
}

AssembledProgram
generateSoup(Rng &rng)
{
    const auto n = static_cast<unsigned>(rng.uniformRange(8, 64));
    std::vector<std::uint32_t> words;
    words.reserve(n + 1);

    auto target_offset = [&](unsigned i) {
        const auto target =
            static_cast<std::int32_t>(rng.uniformInt(n + 1));
        return target - static_cast<std::int32_t>(i) - 1;
    };

    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t roll = rng.uniformInt(100);
        Instruction inst;
        if (roll < 30) {
            static constexpr Opcode pool[] = {
                Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                Opcode::Xor, Opcode::Sll, Opcode::Srl, Opcode::Sra,
                Opcode::Slt, Opcode::Sltu, Opcode::Mul, Opcode::Div,
                Opcode::Rem};
            inst = Instruction::r(
                pool[rng.uniformInt(std::size(pool))],
                randomReg(rng, rng.bernoulli(0.05)),
                static_cast<unsigned>(rng.uniformInt(32)),
                static_cast<unsigned>(rng.uniformInt(32)));
        } else if (roll < 55) {
            static constexpr Opcode pool[] = {
                Opcode::Addi, Opcode::Andi, Opcode::Ori,
                Opcode::Xori, Opcode::Slti, Opcode::Slli,
                Opcode::Srli, Opcode::Srai, Opcode::Lui};
            const Opcode op = pool[rng.uniformInt(std::size(pool))];
            std::int32_t imm;
            if (op == Opcode::Slli || op == Opcode::Srli ||
                op == Opcode::Srai)
                imm = static_cast<std::int32_t>(rng.uniformInt(32));
            else
                imm = static_cast<std::int32_t>(
                          rng.uniformInt(0x10000)) -
                      0x8000;
            inst = Instruction::i(
                op, randomReg(rng, rng.bernoulli(0.05)),
                static_cast<unsigned>(rng.uniformInt(32)), imm);
        } else if (roll < 68) {
            static constexpr Opcode pool[] = {
                Opcode::Lb, Opcode::Lbu, Opcode::Lh, Opcode::Lhu,
                Opcode::Lw};
            const Opcode op = pool[rng.uniformInt(std::size(pool))];
            const unsigned size = accessSize(op);
            std::int32_t off = static_cast<std::int32_t>(
                rng.uniformInt(data_window - 4));
            if (!rng.bernoulli(0.05))
                off &= ~static_cast<std::int32_t>(size - 1);
            inst = Instruction::i(
                op, randomReg(rng, rng.bernoulli(0.05)),
                reg_window, off);
        } else if (roll < 80) {
            static constexpr Opcode pool[] = {Opcode::Sb, Opcode::Sh,
                                              Opcode::Sw};
            const Opcode op = pool[rng.uniformInt(std::size(pool))];
            const unsigned size = accessSize(op);
            std::int32_t off = static_cast<std::int32_t>(
                rng.uniformInt(data_window - 4));
            if (!rng.bernoulli(0.05))
                off &= ~static_cast<std::int32_t>(size - 1);
            inst = Instruction::i(
                op, static_cast<unsigned>(rng.uniformInt(32)),
                reg_window, off);
        } else if (roll < 92) {
            static constexpr Opcode pool[] = {
                Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                Opcode::Bltu, Opcode::Bgeu};
            inst = Instruction::branch(
                pool[rng.uniformInt(std::size(pool))],
                static_cast<unsigned>(rng.uniformInt(32)),
                static_cast<unsigned>(rng.uniformInt(32)),
                target_offset(i));
        } else if (roll < 96) {
            inst = Instruction::jal(rng.bernoulli(0.5) ? 31u : 0u,
                                    target_offset(i));
        } else if (roll < 98) {
            words.push_back(0xf4000000u |
                            static_cast<std::uint32_t>(
                                rng.uniformInt(0x10000)));
            continue;
        } else {
            if (rng.bernoulli(0.5))
                inst = Instruction::halt();
            else
                inst.op = Opcode::Sync;
        }
        words.push_back(inst.encode());
    }
    words.push_back(Instruction::halt().encode());

    AssembledProgram prog;
    prog.entry = code_base;
    for (std::size_t i = 0; i < words.size(); ++i) {
        const Addr a = code_base + 4 * i;
        prog.words[a] = words[i];
        prog.source_map.instr_lines[a] =
            static_cast<unsigned>(i + 1);
    }
    return prog;
}

// ----------------------------------------------------------------
// Verification harness
// ----------------------------------------------------------------

struct Totals
{
    std::uint64_t programs = 0;
    std::uint64_t nontop = 0;
    std::uint64_t aborted = 0;  ///< wild return / table escape
    std::uint64_t steps = 0;
    std::uint64_t containment_checks = 0;
    std::uint64_t violations = 0;
    std::uint64_t false_positives = 0;
    std::map<std::string, std::uint64_t> verified;
};

void
dumpProgram(const AssembledProgram &prog)
{
    for (const auto &[addr, word] : prog.words) {
        bool ok = true;
        const Instruction inst = Instruction::decode(word, &ok);
        std::fprintf(stderr, "  0x%05" PRIx64 ": %08x  %s\n", addr,
                     word,
                     ok ? inst.disassemble().c_str()
                        : "<undecodable>");
    }
}

/** Verify one program. @return false on any soundness failure. */
bool
verifyProgram(const AssembledProgram &asmprog, Rng &rng,
              std::uint64_t index, Totals &totals)
{
    Program prog = Program::build(asmprog);
    if (prog.size() == 0)
        return true;
    Cfg cfg = Cfg::build(prog);
    Dataflow df = Dataflow::build(prog, cfg);
    StaticCharacterization chr = characterize(prog, cfg, df);
    AbsInt ai = AbsInt::build(prog, cfg, df, chr);
    annotateRanges(prog, chr, ai);
    const auto diags = lint(prog, cfg, df, chr, ai);
    if (!ai.topMode())
        ++totals.nontop;

    // Provable diagnostics by instruction address.
    static const std::set<std::string> provable = {
        "div-by-zero", "oob-access", "jump-oob", "misaligned",
        "uninit-load"};
    std::map<Addr, std::vector<const Diagnostic *>> checks;
    for (const Diagnostic &d : diags)
        if (provable.contains(d.id))
            checks[d.addr].push_back(&d);

    // Assembled sections for the oob predicate.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sect;
    for (const auto &[a, w] : asmprog.words) {
        (void)w;
        sect.emplace_back(a, a + 4);
    }
    for (const auto &[b, e] : asmprog.source_map.space_regions)
        sect.emplace_back(b, e);

    // Jump tables by load-instruction address.
    std::map<Addr, const JumpTable *> table_of;
    for (const JumpTable &jt : cfg.jumpTables())
        table_of[prog.instr(jt.load_instr).addr] = &jt;

    BackingStore mem;
    asmprog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(asmprog.entry);
    cpu.state().setReg(reg_window,
                       static_cast<std::uint32_t>(data_base));
    cpu.state().setReg(reg_code,
                       static_cast<std::uint32_t>(asmprog.entry));
    for (unsigned r = 1; r <= 8; ++r)
        cpu.state().setReg(r,
                           static_cast<std::uint32_t>(rng()));

    std::set<Addr> stored;  ///< every byte some store has written
    std::vector<Addr> shadow;  ///< return addresses of live calls

    auto fail = [&](const std::string &what, Addr pc) {
        std::fprintf(stderr,
                     "FAILURE in program %" PRIu64
                     " at pc 0x%llx: %s\n",
                     index,
                     static_cast<unsigned long long>(pc),
                     what.c_str());
        dumpProgram(asmprog);
        return false;
    };

    for (std::uint64_t s = 0; s < step_budget; ++s) {
        const Addr pc = cpu.state().pc;
        const std::size_t idx = prog.indexOf(pc);
        if (idx == Program::npos)
            break;  // fell outside the program image
        const InstrRecord &rec = prog.instr(idx);

        // (a) containment of every register in its static range.
        for (unsigned r = 0; r < 32; ++r) {
            ++totals.containment_checks;
            if (!ai.before(idx, r).contains(
                    cpu.state().reg(r))) {
                ++totals.violations;
                return fail(
                    "r" + std::to_string(r) + " = " +
                        std::to_string(cpu.state().reg(r)) +
                        " outside static range " +
                        ai.before(idx, r).str(),
                    pc);
            }
        }

        const Instruction &in = rec.inst;
        const std::uint32_t a = cpu.state().reg(in.rs1);
        const std::uint32_t ea =
            a + static_cast<std::uint32_t>(in.imm);
        const unsigned size =
            rec.decoded && (isLoad(in.op) || isStore(in.op))
                ? accessSize(in.op)
                : 0;

        // (b) each provable diagnostic is dynamically true.
        auto it = checks.find(pc);
        if (it != checks.end() && rec.decoded) {
            for (const Diagnostic *d : it->second) {
                bool ok = true;
                if (d->id == "div-by-zero") {
                    ok = cpu.state().reg(in.rs2) == 0;
                } else if (d->id == "misaligned") {
                    ok = size > 1 && ea % size != 0;
                } else if (d->id == "oob-access") {
                    for (const auto &[sb, se] : sect)
                        if (sb < ea + size && ea < se)
                            ok = false;
                } else if (d->id == "jump-oob") {
                    const JumpTable *jt = table_of[pc];
                    ok = jt != nullptr &&
                         (ea + 4 <= jt->begin || ea >= jt->end);
                } else if (d->id == "uninit-load") {
                    for (unsigned b = 0; b < size; ++b)
                        if (stored.contains(ea + b))
                            ok = false;
                }
                if (!ok) {
                    ++totals.false_positives;
                    return fail("diagnostic [" + d->id +
                                    "] is dynamically false",
                                pc);
                }
                ++totals.verified[d->id];
            }
        }

        // Contract boundaries: stop verifying at the first wild
        // return or out-of-table index load.
        if (rec.decoded) {
            auto ti = table_of.find(pc);
            if (ti != table_of.end() &&
                (ea < ti->second->begin || ea >= ti->second->end)) {
                ++totals.aborted;
                return true;
            }
            if (in.op == Opcode::Jalr && in.rd == 0 &&
                in.rs1 == 31) {
                const Addr dest = (static_cast<Addr>(a) +
                                   static_cast<std::uint32_t>(
                                       in.imm)) &
                                  ~Addr{3};
                if (shadow.empty() || shadow.back() != dest) {
                    ++totals.aborted;
                    return true;
                }
                shadow.pop_back();
            } else if ((in.op == Opcode::Jal ||
                        in.op == Opcode::Jalr) &&
                       in.rd != 0) {
                shadow.push_back(pc + 4);
            }
        }

        const bool retired = cpu.step();
        ++totals.steps;
        if (rec.decoded && isStore(in.op) &&
            cpu.lastStop() != StopReason::AlignmentFault)
            for (unsigned b = 0; b < size; ++b)
                stored.insert(ea + b);
        if (!retired)
            break;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = benchutil::parse(argc, argv, extra_flags);
    const std::uint64_t programs = opt.extra.contains("--programs")
        ? benchutil::parseU64Flag(
              opt.extraOr("--programs", "").c_str(), "--programs",
              argv[0], extra_flags)
        : 1000;
    if (programs == 0)
        benchutil::usageError(argv[0], extra_flags,
                              "--programs must be > 0");
    if (!opt.json())
        benchutil::banner(
            "abstract interpretation vs execution differential "
            "crosscheck",
            opt);

    Rng rng(opt.seed);
    Totals totals;
    std::uint64_t failures = 0;
    for (std::uint64_t i = 0; i < programs; ++i) {
        AssembledProgram prog;
        if (rng.bernoulli(0.55)) {
            prog = generateStructured(rng);
            if (!prog.ok()) {
                std::fprintf(stderr,
                             "generator emitted bad assembly:\n");
                for (const auto &e : prog.errors)
                    std::fprintf(stderr, "  %s\n",
                                 e.format("<generated>").c_str());
                return 2;
            }
        } else {
            prog = generateSoup(rng);
        }
        ++totals.programs;
        if (!verifyProgram(prog, rng, i, totals))
            ++failures;
    }

    const double nontop_frac =
        static_cast<double>(totals.nontop) /
        static_cast<double>(totals.programs);
    const double aborted_frac =
        static_cast<double>(totals.aborted) /
        static_cast<double>(totals.programs);

    if (opt.json()) {
        std::printf("{\n");
        std::printf("  \"programs\": %" PRIu64 ",\n",
                    totals.programs);
        std::printf("  \"nontop\": %" PRIu64 ",\n", totals.nontop);
        std::printf("  \"aborted\": %" PRIu64 ",\n",
                    totals.aborted);
        std::printf("  \"steps\": %" PRIu64 ",\n", totals.steps);
        std::printf("  \"containment_checks\": %" PRIu64 ",\n",
                    totals.containment_checks);
        std::printf("  \"violations\": %" PRIu64 ",\n",
                    totals.violations);
        std::printf("  \"false_positives\": %" PRIu64 ",\n",
                    totals.false_positives);
        std::printf("  \"verified\": {");
        bool first = true;
        for (const auto &[id, n] : totals.verified) {
            std::printf("%s\"%s\": %" PRIu64, first ? "" : ", ",
                        id.c_str(), n);
            first = false;
        }
        std::printf("},\n");
        std::printf("  \"failures\": %" PRIu64 "\n", failures);
        std::printf("}\n");
    } else {
        std::printf("programs analysed : %" PRIu64
                    " (%.0f%% with non-trivial ranges)\n",
                    totals.programs, nontop_frac * 100);
        std::printf("steps verified    : %" PRIu64 " (%" PRIu64
                    " containment checks)\n",
                    totals.steps, totals.containment_checks);
        std::printf("aborted (contract): %" PRIu64 "\n",
                    totals.aborted);
        std::printf("diagnostics held  :");
        for (const auto &[id, n] : totals.verified)
            std::printf(" %s=%" PRIu64, id.c_str(), n);
        std::printf("\n");
        std::printf("violations        : %" PRIu64 "\n",
                    totals.violations);
        std::printf("false positives   : %" PRIu64 "\n",
                    totals.false_positives);
    }

    if (failures != 0) {
        std::fprintf(stderr,
                     "FAIL: %" PRIu64 " unsound program%s\n",
                     failures, failures == 1 ? "" : "s");
        return 1;
    }
    // Self-checks: the fuzz must actually exercise the analysis.
    if (nontop_frac < 0.3) {
        std::fprintf(stderr,
                     "FAIL: only %.0f%% of programs analysed with "
                     "non-trivial ranges\n",
                     nontop_frac * 100);
        return 1;
    }
    if (aborted_frac > 0.2) {
        std::fprintf(stderr,
                     "FAIL: %.0f%% of programs aborted "
                     "verification (contract escapes)\n",
                     aborted_frac * 100);
        return 1;
    }
    if (programs >= 500)
        for (const char *id :
             {"div-by-zero", "misaligned", "oob-access",
              "jump-oob", "uninit-load"})
            if (totals.verified[id] == 0) {
                std::fprintf(stderr,
                             "FAIL: no dynamically verified [%s] "
                             "diagnostic in %" PRIu64 " programs\n",
                             id, programs);
                return 1;
            }
    if (!opt.json())
        std::printf("\nPASS: ranges sound and diagnostics "
                    "dynamically true across %" PRIu64
                    " programs\n",
                    programs);
    return 0;
}
