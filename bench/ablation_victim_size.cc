/**
 * @file
 * Ablation: victim-cache size.
 *
 * Section 5.4 sizes the victim cache at exactly one column
 * (16 x 32 B) so its fill rides the DRAM access window for free.
 * This bench sweeps the entry count to show that sixteen entries
 * already capture most of the conflict-absorption benefit for the
 * benchmarks the paper highlights.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "mem/column_cache.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Ablation - victim cache entries", opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 400'000 : 3'000'000);

    TextTable table("D-cache miss % vs victim entries");
    table.setHeader({"benchmark", "0 (none)", "4", "8",
                     "16 (paper)", "32", "64"});

    constexpr std::uint32_t entry_counts[] = {0u, 4u, 8u, 16u, 32u,
                                              64u};
    ParallelSweep<double> sweep(opt.jobs, opt.seed);
    std::vector<std::string> row;
    for (const char *name : {"101.tomcatv", "102.swim", "103.su2cor",
                             "130.li", "099.go", "146.wave5"}) {
        const SpecWorkload &w = findWorkload(name);
        for (std::uint32_t entries : entry_counts) {
            sweep.submit(
                [&w, entries, refs](const PointContext &) {
                    ColumnCacheConfig cfg;
                    cfg.victim_enabled = entries > 0;
                    if (entries > 0)
                        cfg.victim.entries = entries;
                    ColumnDataCache cache(cfg);
                    SyntheticWorkload source(w.proxy);
                    const auto sink = [&](const MemRef &ref) {
                        if (ref.type != RefType::IFetch)
                            cache.access(ref.addr,
                                         ref.type == RefType::Store);
                    };
                    source.generateInto(refs / 4, sink);
                    cache.resetStats();
                    source.generateInto(refs, sink);
                    return cache.stats().missRate() * 100;
                },
                [&table, &row, &w, entries](const PointContext &,
                                            double miss_pct) {
                    if (row.empty())
                        row.push_back(w.name);
                    row.push_back(TextTable::num(miss_pct, 3));
                    if (entries == 64u) {
                        table.addRow(std::move(row));
                        row.clear();
                    }
                });
        }
    }
    sweep.finish();
    table.print(std::cout);
    std::cout << "\nExpected: a steep drop by 16 entries for the "
                 "conflict benchmarks, then\ndiminishing returns — "
                 "the single-column victim cache is the sweet spot "
                 "(and\nanything larger would no longer fill for "
                 "free during the miss window).\n";
    return 0;
}
