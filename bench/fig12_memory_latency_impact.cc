/**
 * @file
 * Regenerates Figure 12: CPI of the proposed integrated device as a
 * function of the DRAM array access time, for 141.apsi and 126.gcc.
 * At the design point (30 ns = 6 cycles at 200 MHz) the memory CPI
 * impact should fall between ~10% and ~25% of the raw CPI.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Figure 12 - DRAM latency impact (integrated)",
                      opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    if (opt.quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }

    const double access_ns[] = {10, 20, 30, 40, 50, 60, 70};
    const ClockParams clock;

    SeriesChart chart("Figure 12: integrated device CPI vs DRAM "
                      "access time",
                      "DRAM access (ns)", "CPI");

    for (const char *name : {"141.apsi", "126.gcc"}) {
        const SpecWorkload &w = findWorkload(name);
        for (double ns : access_ns) {
            SpecEvalParams p = params;
            p.bank_access =
                static_cast<double>(clock.nsToCycles(ns));
            const SpecEstimate est =
                estimateIntegrated(w, /*victim_cache=*/true, p);
            chart.addPoint(name, ns, est.cpi.total());
            if (ns == 30) {
                std::cout << name << " @30ns: memory CPI impact = "
                          << TextTable::num(
                                 100.0 * est.cpi.memory /
                                     est.cpi.base,
                                 1)
                          << "% of raw CPI\n";
            }
        }
    }
    std::cout << '\n';
    chart.print(std::cout);
    return 0;
}
