/**
 * @file
 * Regenerates Figure 11: CPI of a conventional 200 MHz single-scalar
 * CPU (16 KB split L1, 256 KB unified L2, dual-banked memory) as a
 * function of second-level-cache and main-memory latency, for the
 * representative high- and low-CPI applications 141.apsi and
 * 126.gcc. The paper's grey "typical operating region" corresponds
 * to L2 ~6-10 cycles and memory ~150-300 ns.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Figure 11 - cache/memory latency impact "
                      "(conventional CPU)",
                      opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    params.banks = 2;  // dual-banked conventional main memory
    if (opt.quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }

    const double l2_lats[] = {4.0, 6.0, 12.0};
    const double mem_ns[] = {50, 100, 150, 200, 250, 300, 400};
    const ClockParams clock;  // 200 MHz

    SeriesChart chart("Figure 11: conventional CPU CPI vs latency",
                      "memory latency (ns)", "CPI");

    for (const char *name : {"141.apsi", "126.gcc"}) {
        const SpecWorkload &w = findWorkload(name);
        for (double l2 : l2_lats) {
            const std::string series =
                std::string(name) + " L2=" +
                TextTable::num(l2, 0) + "cy";
            for (double ns : mem_ns) {
                const double mem_cycles =
                    static_cast<double>(clock.nsToCycles(ns));
                const SpecEstimate est =
                    estimateReference(w, l2, mem_cycles, params);
                chart.addPoint(series, ns, est.cpi.total());
            }
        }
    }
    chart.print(std::cout);

    std::cout << "\nNote: the raw (zero-latency-memory) CPI is the "
                 "base component; the paper's\nobservation is that "
                 "memory latency alone can cost up to a factor of 2 "
                 "over raw CPI\nin the typical operating region.\n";
    return 0;
}
