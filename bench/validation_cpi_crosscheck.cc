/**
 * @file
 * Model validation: GSPN vs execution-driven pipeline.
 *
 * The paper derives CPI from GSPN models with dialed-in miss
 * ratios. This repo also has a second, independent path to the same
 * number: run the workload's reference stream through the
 * execution-driven pipeline + device timing model. This bench
 * cross-checks the two methods per benchmark — if the abstractions
 * are sound they must agree to within the models' differences
 * (the GSPN randomises bank choice; the pipeline sees real
 * addresses and real bank queueing).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/pim_device.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Validation - GSPN vs execution-driven CPI",
                      opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 400'000 : 3'000'000);
    if (opt.quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }

    TextTable table("Memory CPI of the integrated device, two "
                    "independent models");
    table.setHeader({"benchmark", "GSPN (paper method)",
                     "pipeline (execution-driven)", "difference"});

    double worst = 0.0;
    for (const char *name :
         {"099.go", "126.gcc", "129.compress", "134.perl",
          "102.swim", "101.tomcatv", "107.mgrid", "145.fpppp"}) {
        const SpecWorkload &w = findWorkload(name);

        // Method 1: measured hit ratios -> GSPN Monte-Carlo.
        const SpecEstimate gspn =
            estimateIntegrated(w, /*victim=*/true, params);

        // Method 2: the stream drives the pipeline + device. Warm
        // the caches through the SAME pipeline (a fresh pipeline
        // would restart the clock behind the DRAM banks' ready
        // times) and measure the post-warmup delta.
        PimDevice device;
        SyntheticWorkload source(w.proxy);
        PipelineSim pipe(device, PipelineConfig{});
        source.generate(refs / 4, pipe.sink());
        const std::uint64_t warm_instr = pipe.instructions();
        const Tick warm_cycles = pipe.cycles();
        source.generate(refs, pipe.sink());
        pipe.drain();
        const double pipeline_mem_cpi =
            static_cast<double>(pipe.cycles() - warm_cycles) /
                static_cast<double>(pipe.instructions() -
                                    warm_instr) -
            1.0;

        const double diff =
            std::abs(gspn.cpi.memory - pipeline_mem_cpi);
        worst = std::max(worst, diff);
        table.addRow({w.name, TextTable::num(gspn.cpi.memory, 3),
                      TextTable::num(pipeline_mem_cpi, 3),
                      TextTable::num(diff, 3)});
    }
    table.print(std::cout);
    std::cout << "\nworst disagreement: "
              << TextTable::num(worst, 3)
              << " CPI — the two methodologies corroborate each "
                 "other.\n";
    return 0;
}
