/**
 * @file
 * Regenerates Table 4: total CPI and SPEC ratio of the proposed
 * device WITH the victim cache, alongside the paper's numbers and
 * the published Alpha 21164 (DEC 8200 5/300) ratios the paper quotes
 * for comparison.
 *
 * Parameter resolution, per-point seeding and the --format=json
 * renderer live in workloads/spec_tables so mw-server serves the
 * same bytes.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/spec_tables.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    if (!opt.json())
        benchutil::banner(
            "Table 4 - SPEC'95 estimates, with victim cache", opt);

    const SpecEvalParams params =
        resolveSpecEvalParams(opt.quick, opt.refs, opt.seed);

    std::vector<SpecEstimate> rows;
    ParallelSweep<SpecEstimate> sweep(opt.jobs, opt.seed);
    for (const SpecWorkload *w : specTableWorkloads()) {
        sweep.submit(
            [w, &params](const PointContext &ctx) {
                SpecEvalParams p = params;
                p.seed = ctx.seed;
                return runSpecTablePoint(*w, /*victim_cache=*/true,
                                         p);
            },
            [&rows](const PointContext &, SpecEstimate est) {
                rows.push_back(std::move(est));
            });
    }
    sweep.finish();

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(specTableJson(true, rows).c_str(), stdout);
        return 0;
    }

    TextTable table("Table 4: SPEC'95 estimates (with victim cache)");
    table.setHeader({"name", "Total CPI", "Spec-ratio", "paper CPI",
                     "paper ratio", "Alpha 21164"});
    bool fp_rule_done = false;
    const auto workloads = specTableWorkloads();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SpecWorkload &w = *workloads[i];
        const SpecEstimate &est = rows[i];
        if (w.floating_point && !fp_rule_done) {
            table.addRule();
            fp_rule_done = true;
        }
        table.addRow({w.name, TextTable::num(est.cpi.total(), 2),
                      TextTable::num(est.spec_ratio, 1),
                      TextTable::num(w.paper_total_cpi_vc, 2),
                      TextTable::num(w.paper_ratio_vc, 1),
                      TextTable::num(w.alpha_ratio, 1)});
    }
    table.print(std::cout);
    return 0;
}
