/**
 * @file
 * Regenerates Table 4: total CPI and SPEC ratio of the proposed
 * device WITH the victim cache, alongside the paper's numbers and
 * the published Alpha 21164 (DEC 8200 5/300) ratios the paper quotes
 * for comparison.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Table 4 - SPEC'95 estimates, with victim cache",
                      opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    if (opt.quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }
    if (opt.refs) {
        params.missrate.measured_refs = opt.refs;
        params.missrate.warmup_refs = opt.refs / 4;
    }

    TextTable table("Table 4: SPEC'95 estimates (with victim cache)");
    table.setHeader({"name", "Total CPI", "Spec-ratio", "paper CPI",
                     "paper ratio", "Alpha 21164"});

    bool fp_rule_done = false;
    ParallelSweep<SpecEstimate> sweep(opt.jobs, opt.seed);
    for (const auto &w : specSuite()) {
        if (!w.in_spec_tables)
            continue;
        sweep.submit(
            [&w, &params](const PointContext &ctx) {
                SpecEvalParams p = params;
                p.seed = ctx.seed;
                return estimateIntegrated(w, /*victim_cache=*/true,
                                          p);
            },
            [&, &w = w](const PointContext &, SpecEstimate est) {
                if (w.floating_point && !fp_rule_done) {
                    table.addRule();
                    fp_rule_done = true;
                }
                table.addRow(
                    {w.name, TextTable::num(est.cpi.total(), 2),
                     TextTable::num(est.spec_ratio, 1),
                     TextTable::num(w.paper_total_cpi_vc, 2),
                     TextTable::num(w.paper_ratio_vc, 1),
                     TextTable::num(w.alpha_ratio, 1)});
            });
    }
    sweep.finish();
    table.print(std::cout);
    return 0;
}
