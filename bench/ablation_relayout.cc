/**
 * @file
 * The 125.turb3d remedy (Section 5.2): the paper attributes turb3d's
 * I-cache regression to a loop and its callee aliasing in the
 * sixteen 512-byte lines, and suggests a profile-guided re-layout by
 * the compiler/linker. This bench applies relayoutCode() to every
 * workload and reports the proposed cache's I-miss rate before and
 * after — the regression should disappear while everything else is
 * unharmed.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "mem/column_cache.hh"
#include "trace/relayout.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

double
missRate(const SyntheticSpec &spec, std::uint64_t refs)
{
    ColumnInstrCache icache;
    SyntheticWorkload source(spec);
    const RefSink sink = [&](const MemRef &ref) {
        if (ref.type == RefType::IFetch)
            icache.fetch(ref.pc);
    };
    source.generate(refs / 4, sink);
    icache.resetStats();
    source.generate(refs, sink);
    return icache.stats().missRate();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Extension - profile-guided code re-layout",
                      opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 400'000 : 3'000'000);

    TextTable table("Proposed I-cache miss % before/after re-layout");
    table.setHeader({"benchmark", "original", "re-laid", "change"});
    for (const char *name : {"125.turb3d", "126.gcc", "134.perl",
                             "145.fpppp", "099.go"}) {
        const SpecWorkload &w = findWorkload(name);
        const double before = missRate(w.proxy, refs);
        const double after =
            missRate(relayoutCode(w.proxy), refs);
        table.addRow(
            {w.name, TextTable::num(before * 100, 3),
             TextTable::num(after * 100, 3),
             (after <= before ? "-" : "+") +
                 TextTable::num(
                     100.0 * std::abs(after - before) /
                         std::max(before, 1e-9),
                     1) +
                 "%"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: turb3d's loop/callee conflict "
                 "disappears (the paper's predicted fix);\nother "
                 "benchmarks stay put or improve slightly.\n";
    return 0;
}
