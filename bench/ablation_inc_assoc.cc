/**
 * @file
 * Ablation: Inter-Node Cache associativity.
 *
 * The 512-byte column layout gives the INC 7 ways for free
 * (Figure 6). This bench replays a conflict-heavy imported-block
 * stream against INC organisations from direct-mapped to 7-way at
 * equal reserved DRAM, showing why the column layout's
 * associativity matters for remote data.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "mem/cache.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Ablation - inter-node cache associativity",
                      opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 200'000 : 2'000'000);

    // Imported-block stream: several remote regions whose blocks
    // collide in the low index bits (the typical page-coloured NUMA
    // pathologies), plus a uniform component.
    const unsigned streams = 9;
    const std::uint64_t region = 40 * KiB;

    TextTable table("INC miss % vs associativity (nine congruent "
                    "40 KiB import streams)");
    table.setHeader({"organisation", "miss %"});  // 9 x 40 KiB streams

    for (std::uint32_t ways : {1u, 2u, 4u, 7u, 14u}) {
        // Equal data capacity: 2048 sets x 7 ways in the paper.
        const std::uint64_t lines = 2048ull * 7;
        CacheConfig cfg;
        cfg.line_size = 32;
        cfg.assoc = ways;
        // Round sets down to a power of two.
        std::uint64_t sets = lines / ways;
        std::uint64_t pow2 = 1;
        while (pow2 * 2 <= sets)
            pow2 *= 2;
        cfg.capacity = pow2 * ways * 32;
        cfg.name = "inc-" + std::to_string(ways) + "w";
        Cache inc(cfg);

        Rng rng(opt.seed);
        std::vector<std::uint64_t> cursors(streams, 0);
        for (std::uint64_t i = 0; i < refs; ++i) {
            const std::size_t s = rng.uniformInt(streams);
            Addr addr;
            if (rng.bernoulli(0.7)) {
                // Sequential walk within the stream's region; bases
                // congruent modulo the sets so they collide.
                addr = s * 8ull * MiB + cursors[s];
                cursors[s] = (cursors[s] + 32) % region;
            } else {
                addr = s * 8ull * MiB +
                       rng.uniformInt(region / 32) * 32;
            }
            inc.access(addr, false);
        }
        table.addRow({std::to_string(ways) + "-way (" +
                          TextTable::num(
                              static_cast<double>(cfg.capacity) /
                                  KiB,
                              0) +
                          " KiB)",
                      TextTable::num(inc.stats().missRate() * 100,
                                     2)});
    }
    table.print(std::cout);
    std::cout << "\nExpected: direct-mapped INC thrashes on "
                 "congruent imports; the column-layout's\n7 ways "
                 "absorb them at no extra storage cost.\n";
    return 0;
}
