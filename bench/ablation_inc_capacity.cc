/**
 * @file
 * Ablation: Inter-Node Cache capacity.
 *
 * Section 6.1 reserves 1 MB of each node's DRAM for the INC —
 * "larger than the working sets of the applications used, and so
 * comparable to the infinite SLCs of the reference architecture".
 * This bench shrinks the reservation and watches the SPLASH kernels
 * degrade, quantifying how much attraction capacity the coherence
 * traffic actually needs.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/splash/splash.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Ablation - inter-node cache capacity", opt);

    const double scale = opt.quick ? 0.08 : 0.4;
    TextTable table("SPLASH makespan (Mcycles) vs INC reservation, "
                    "integrated+VC, 8 cpus");
    table.setHeader({"kernel", "32 KiB", "128 KiB", "1 MiB (paper)"});

    for (const char *kernel : {"lu", "ocean", "water", "mp3d"}) {
        std::vector<std::string> row{kernel};
        for (std::uint64_t reserved :
             {32 * KiB, 128 * KiB, 1 * MiB}) {
            SplashParams params;
            params.nprocs = 8;
            params.machine.nodes = 8;
            params.machine.arch = NodeArch::Integrated;
            params.machine.victim_cache = true;
            params.machine.inc.reserved_bytes = reserved;
            params.scale = scale;
            const SplashResult res = runSplash(kernel, params);
            row.push_back(TextTable::num(res.makespan / 1e6, 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected: at these SPLASH working sets even "
                 "128 KiB is usually enough — the\npaper's 1 MB "
                 "reservation deliberately removes INC capacity "
                 "effects so that only\ncold and coherence misses "
                 "separate the architectures.\n";
    return 0;
}
