/**
 * @file
 * Extension study: loaded vs unloaded fabric.
 *
 * The paper charges fixed Table 6 latencies and notes they are
 * "conservative" for its sub-200ns unloaded fabric. This bench turns
 * on the contention model — remote transactions occupy the sender's
 * serial links and the home node's protocol engine — and measures
 * how much queuing the SPLASH kernels actually induce on top of the
 * fixed-latency baseline.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/splash/splash.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Extension - fabric/protocol-engine contention",
                      opt);

    const double scale = opt.quick ? 0.08 : 0.4;
    TextTable table("SPLASH makespan (Mcycles), integrated+VC");
    table.setHeader({"kernel", "cpus", "fixed Table 6",
                     "contended fabric", "slowdown"});

    for (const char *kernel : {"lu", "ocean", "mp3d", "water"}) {
        for (unsigned cpus : {8u, 16u}) {
            SplashResult res[2];
            int idx = 0;
            for (bool contention : {false, true}) {
                SplashParams params;
                params.nprocs = cpus;
                params.machine.nodes = cpus;
                params.machine.arch = NodeArch::Integrated;
                params.machine.victim_cache = true;
                params.machine.model_fabric_contention = contention;
                params.scale = scale;
                res[idx++] = runSplash(kernel, params);
            }
            table.addRow(
                {kernel, std::to_string(cpus),
                 TextTable::num(res[0].makespan / 1e6, 3),
                 TextTable::num(res[1].makespan / 1e6, 3),
                 TextTable::num(static_cast<double>(res[1].makespan) /
                                    res[0].makespan,
                                2) +
                     "x"});
        }
        table.addRule();
    }
    table.print(std::cout);
    std::cout << "\nExpected: close to 1x for well-partitioned "
                 "kernels (the links are fast and\nbanks plentiful); "
                 "above 1x where hot home nodes serialise at the "
                 "protocol\nengine (MP3D's cell array).\n";
    return 0;
}
