/**
 * @file
 * Differential fuzzing of the execution fast path.
 *
 * Generates N seeded random MW32 programs (ALU soup, loads/stores
 * into a data window, forward/backward branches, calls, unresolvable
 * indirect jumps, deliberately misaligned accesses and undecodable
 * words), then executes every program on the classic Interpreter and
 * on the FastExecutor in lockstep and demands ZERO divergence in
 *
 *   - all 32 registers and the pc,
 *   - the five ExecStats counters,
 *   - the stop reason and (for alignment faults) the fault address,
 *   - the complete memory-reference stream, ref by ref,
 *   - the data-window memory image and the materialised page count.
 *
 * Budgets are randomised — often tiny — so instruction limits land
 * in the middle of hoisted traces; a slice of programs also runs
 * with the alignment trap off to cover the untrapped memory path.
 * Any divergence prints the offending program's disassembly and
 * fails the run (exit 1).
 *
 * Flags: --programs N overrides the program count (default 1000,
 * the acceptance floor); --seed seeds the generator; --format json
 * emits a machine-readable summary (byte-stable for a given seed).
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "exec/fast_executor.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"

using namespace memwall;

namespace {

constexpr std::initializer_list<const char *> extra_flags = {
    "--programs"};

constexpr Addr code_base = 0x1000;
constexpr Addr data_base = 0x100000;
constexpr std::uint32_t data_window = 4096;

/** Registers the generator never writes: r28 holds the data-window
 * base and r26 a valid code address (jalr fodder). */
constexpr unsigned reg_window = 28;
constexpr unsigned reg_code = 26;

unsigned
randomReg(Rng &rng, bool allow_r0)
{
    for (;;) {
        const auto r =
            static_cast<unsigned>(rng.uniformInt(32));
        if (r == reg_window || r == reg_code)
            continue;
        if (r == 0 && !allow_r0)
            continue;
        return r;
    }
}

/** One random program: raw words, every word an instruction. */
AssembledProgram
generateProgram(Rng &rng)
{
    const auto n =
        static_cast<unsigned>(rng.uniformRange(8, 64));
    std::vector<std::uint32_t> words;
    words.reserve(n + 1);

    auto target_offset = [&](unsigned i) {
        // Word offset from i+1 to a random instruction in [0, n]
        // (n = the final halt), forward or backward.
        const auto target =
            static_cast<std::int32_t>(rng.uniformInt(n + 1));
        return target - static_cast<std::int32_t>(i) - 1;
    };

    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t roll = rng.uniformInt(100);
        Instruction inst;
        if (roll < 28) {
            // Register ALU, divide/remainder included.
            static constexpr Opcode pool[] = {
                Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                Opcode::Xor, Opcode::Sll, Opcode::Srl, Opcode::Sra,
                Opcode::Slt, Opcode::Sltu, Opcode::Mul, Opcode::Div,
                Opcode::Rem};
            inst = Instruction::r(
                pool[rng.uniformInt(std::size(pool))],
                randomReg(rng, rng.bernoulli(0.05)),
                static_cast<unsigned>(rng.uniformInt(32)),
                static_cast<unsigned>(rng.uniformInt(32)));
        } else if (roll < 50) {
            // Immediate ALU.
            static constexpr Opcode pool[] = {
                Opcode::Addi, Opcode::Andi, Opcode::Ori,
                Opcode::Xori, Opcode::Slti, Opcode::Slli,
                Opcode::Srli, Opcode::Srai, Opcode::Lui};
            const Opcode op = pool[rng.uniformInt(std::size(pool))];
            std::int32_t imm;
            if (op == Opcode::Slli || op == Opcode::Srli ||
                op == Opcode::Srai) {
                imm = static_cast<std::int32_t>(rng.uniformInt(32));
            } else {
                imm = static_cast<std::int32_t>(
                          rng.uniformInt(0x10000)) -
                      0x8000;
            }
            inst = Instruction::i(
                op, randomReg(rng, rng.bernoulli(0.05)),
                static_cast<unsigned>(rng.uniformInt(32)), imm);
        } else if (roll < 65) {
            // Load from the data window; 5% deliberately unaligned.
            static constexpr Opcode pool[] = {
                Opcode::Lb, Opcode::Lbu, Opcode::Lh, Opcode::Lhu,
                Opcode::Lw};
            const Opcode op = pool[rng.uniformInt(std::size(pool))];
            const unsigned size = accessSize(op);
            std::int32_t off = static_cast<std::int32_t>(
                rng.uniformInt(data_window - 4));
            if (!rng.bernoulli(0.05))
                off &= ~static_cast<std::int32_t>(size - 1);
            inst = Instruction::i(op,
                                  randomReg(rng, rng.bernoulli(0.05)),
                                  reg_window, off);
        } else if (roll < 77) {
            // Store into the data window; 5% deliberately unaligned.
            static constexpr Opcode pool[] = {Opcode::Sb, Opcode::Sh,
                                              Opcode::Sw};
            const Opcode op = pool[rng.uniformInt(std::size(pool))];
            const unsigned size = accessSize(op);
            std::int32_t off = static_cast<std::int32_t>(
                rng.uniformInt(data_window - 4));
            if (!rng.bernoulli(0.05))
                off &= ~static_cast<std::int32_t>(size - 1);
            // The StoreI encoding carries the value register in rd.
            inst = Instruction::i(
                op, static_cast<unsigned>(rng.uniformInt(32)),
                reg_window, off);
        } else if (roll < 89) {
            // Conditional branch to a random program point.
            static constexpr Opcode pool[] = {
                Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                Opcode::Bltu, Opcode::Bgeu};
            inst = Instruction::branch(
                pool[rng.uniformInt(std::size(pool))],
                static_cast<unsigned>(rng.uniformInt(32)),
                static_cast<unsigned>(rng.uniformInt(32)),
                target_offset(i));
        } else if (roll < 93) {
            // Direct call/jump.
            inst = Instruction::jal(rng.bernoulli(0.5) ? 31u : 0u,
                                    target_offset(i));
        } else if (roll < 96) {
            // Indirect jump through r26 (statically unresolvable —
            // forces the fallback path) to a valid code word.
            inst = Instruction::i(
                Opcode::Jalr, rng.bernoulli(0.5) ? 31u : 0u,
                reg_code,
                static_cast<std::int32_t>(4 * rng.uniformInt(n)));
        } else if (roll < 98) {
            // Undecodable word (invalid opcode 0x3d).
            words.push_back(0xf4000000u | static_cast<std::uint32_t>(
                                              rng.uniformInt(0x10000)));
            continue;
        } else {
            if (rng.bernoulli(0.5))
                inst = Instruction::halt();
            else
                inst.op = Opcode::Sync; // operand-less, like halt

        }
        words.push_back(inst.encode());
    }
    words.push_back(Instruction::halt().encode());

    AssembledProgram prog;
    prog.entry = code_base;
    for (std::size_t i = 0; i < words.size(); ++i) {
        const Addr a = code_base + 4 * i;
        prog.words[a] = words[i];
        prog.source_map.instr_lines[a] =
            static_cast<unsigned>(i + 1);
    }
    return prog;
}

struct Totals
{
    std::uint64_t instructions = 0;
    std::uint64_t fast_instructions = 0;
    std::uint64_t fallback_steps = 0;
    std::uint64_t halts = 0;
    std::uint64_t limits = 0;
    std::uint64_t align_faults = 0;
    std::uint64_t div_zeros = 0;
    std::uint64_t bad_instr = 0;
};

const char *
stopName(StopReason r)
{
    switch (r) {
      case StopReason::Halted: return "halted";
      case StopReason::InstrLimit: return "instr-limit";
      case StopReason::BadInstruction: return "bad-instruction";
      case StopReason::AlignmentFault: return "alignment-fault";
      case StopReason::DivideByZero: return "divide-by-zero";
    }
    return "?";
}

void
dumpProgram(const AssembledProgram &prog)
{
    for (const auto &[addr, word] : prog.words) {
        bool ok = true;
        const Instruction inst = Instruction::decode(word, &ok);
        std::fprintf(stderr, "  0x%05" PRIx64 ": %08x  %s\n", addr,
                     word,
                     ok ? inst.disassemble().c_str()
                        : "<undecodable>");
    }
}

/** Run one program on both engines; @return true on agreement. */
bool
runLockstep(const AssembledProgram &prog, Rng &rng,
            std::uint64_t index, Totals &totals)
{
    BackingStore imem, fmem;
    prog.loadInto(imem);
    prog.loadInto(fmem);

    Interpreter icpu(imem);
    FastExecutor fcpu(fmem, prog);
    fcpu.setFastPath(true);
    icpu.setPc(prog.entry);
    fcpu.setPc(prog.entry);

    // 10% of programs run with the alignment trap off.
    const bool trap = !rng.bernoulli(0.1);
    icpu.setAlignmentTrap(trap);
    fcpu.setAlignmentTrap(trap);

    // Identical initial registers: the window base, a valid code
    // address, and a handful of random argument values.
    const auto seed_regs = [&](CpuState &st) {
        st.setReg(reg_window,
                  static_cast<std::uint32_t>(data_base));
        st.setReg(reg_code, static_cast<std::uint32_t>(prog.entry));
    };
    seed_regs(icpu.state());
    seed_regs(fcpu.state());
    for (unsigned r = 1; r <= 8; ++r) {
        const auto v = static_cast<std::uint32_t>(rng());
        icpu.state().setReg(r, v);
        fcpu.state().setReg(r, v);
    }

    // Randomised budgets: often tiny, so limits land mid-trace.
    std::uint64_t budget;
    const std::uint64_t pick = rng.uniformInt(4);
    if (pick == 0)
        budget = rng.uniformRange(1, 7);
    else if (pick == 1)
        budget = rng.uniformRange(1, 160);
    else
        budget = 4096;

    std::vector<MemRef> irefs, frefs;
    const RefSink isink = [&](const MemRef &r) {
        irefs.push_back(r);
    };
    const StopReason si = icpu.run(budget, &isink);
    const StopReason sf = fcpu.runInto(
        budget, [&](const MemRef &r) { frefs.push_back(r); });

    std::string diff;
    if (si != sf)
        diff = std::string("stop reason: ") + stopName(si) +
               " vs " + stopName(sf);
    else if (icpu.state().pc != fcpu.state().pc)
        diff = "pc";
    else if (si == StopReason::AlignmentFault &&
             icpu.faultAddr() != fcpu.faultAddr())
        diff = "fault address";
    else if (icpu.stats().instructions != fcpu.stats().instructions)
        diff = "instruction count";
    else if (icpu.stats().loads != fcpu.stats().loads ||
             icpu.stats().stores != fcpu.stats().stores)
        diff = "load/store counts";
    else if (icpu.stats().branches != fcpu.stats().branches ||
             icpu.stats().taken_branches !=
                 fcpu.stats().taken_branches)
        diff = "branch counts";
    if (diff.empty()) {
        for (unsigned r = 0; r < 32; ++r)
            if (icpu.state().reg(r) != fcpu.state().reg(r)) {
                diff = std::string("r") + std::to_string(r);
                break;
            }
    }
    if (diff.empty()) {
        if (irefs.size() != frefs.size()) {
            diff = "ref stream length";
        } else {
            for (std::size_t i = 0; i < irefs.size(); ++i)
                if (!(irefs[i] == frefs[i])) {
                    diff = "ref " + std::to_string(i);
                    break;
                }
        }
    }
    if (diff.empty()) {
        std::vector<std::uint8_t> iw(data_window), fw(data_window);
        imem.readBlock(data_base, std::span(iw));
        fmem.readBlock(data_base, std::span(fw));
        if (std::memcmp(iw.data(), fw.data(), data_window) != 0)
            diff = "data-window memory";
        else if (imem.allocatedPages() != fmem.allocatedPages())
            diff = "materialised page count";
    }

    if (!diff.empty()) {
        std::fprintf(stderr,
                     "DIVERGENCE in program %" PRIu64
                     " (budget %" PRIu64 ", trap %s): %s\n",
                     index, budget, trap ? "on" : "off",
                     diff.c_str());
        dumpProgram(prog);
        return false;
    }

    totals.instructions += icpu.stats().instructions;
    totals.fast_instructions += fcpu.fastStats().fast_instructions;
    totals.fallback_steps += fcpu.fastStats().fallback_steps;
    switch (si) {
      case StopReason::Halted: ++totals.halts; break;
      case StopReason::InstrLimit: ++totals.limits; break;
      case StopReason::BadInstruction: ++totals.bad_instr; break;
      case StopReason::AlignmentFault: ++totals.align_faults; break;
      case StopReason::DivideByZero: ++totals.div_zeros; break;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = benchutil::parse(argc, argv, extra_flags);
    const std::uint64_t programs = opt.extra.contains("--programs")
        ? benchutil::parseU64Flag(
              opt.extraOr("--programs", "").c_str(), "--programs",
              argv[0], extra_flags)
        : 1000;
    if (programs == 0)
        benchutil::usageError(argv[0], extra_flags,
                              "--programs must be > 0");
    if (!opt.json())
        benchutil::banner(
            "exec lockstep - interpreter vs fast path differential "
            "fuzz",
            opt);

    Rng rng(opt.seed);
    Totals totals;
    std::uint64_t divergences = 0;
    for (std::uint64_t i = 0; i < programs; ++i) {
        const AssembledProgram prog = generateProgram(rng);
        if (!runLockstep(prog, rng, i, totals))
            ++divergences;
    }

    const std::uint64_t attempted =
        totals.fast_instructions + totals.fallback_steps;
    const double coverage =
        attempted ? static_cast<double>(totals.fast_instructions) /
                        static_cast<double>(attempted)
                  : 0.0;

    if (opt.json()) {
        std::printf("{\n");
        std::printf("  \"programs\": %" PRIu64 ",\n", programs);
        std::printf("  \"instructions\": %" PRIu64 ",\n",
                    totals.instructions);
        std::printf("  \"fast_instructions\": %" PRIu64 ",\n",
                    totals.fast_instructions);
        std::printf("  \"fallback_steps\": %" PRIu64 ",\n",
                    totals.fallback_steps);
        std::printf("  \"fast_coverage\": %.4f,\n", coverage);
        std::printf("  \"halts\": %" PRIu64 ",\n", totals.halts);
        std::printf("  \"instr_limits\": %" PRIu64 ",\n",
                    totals.limits);
        std::printf("  \"bad_instructions\": %" PRIu64 ",\n",
                    totals.bad_instr);
        std::printf("  \"alignment_faults\": %" PRIu64 ",\n",
                    totals.align_faults);
        std::printf("  \"divide_by_zeros\": %" PRIu64 ",\n",
                    totals.div_zeros);
        std::printf("  \"divergences\": %" PRIu64 "\n", divergences);
        std::printf("}\n");
    } else {
        std::printf("programs executed : %" PRIu64 "\n", programs);
        std::printf("instructions      : %" PRIu64 "\n",
                    totals.instructions);
        std::printf("fast coverage     : %.1f%% (%" PRIu64
                    " fast, %" PRIu64 " fallback)\n",
                    coverage * 100, totals.fast_instructions,
                    totals.fallback_steps);
        std::printf("stop mix          : %" PRIu64 " halt, %" PRIu64
                    " limit, %" PRIu64 " bad-instr, %" PRIu64
                    " align-fault, %" PRIu64 " div-zero\n",
                    totals.halts, totals.limits, totals.bad_instr,
                    totals.align_faults, totals.div_zeros);
        std::printf("divergences       : %" PRIu64 "\n",
                    divergences);
    }

    if (divergences != 0) {
        std::fprintf(stderr, "FAIL: %" PRIu64 " divergent program%s\n",
                     divergences, divergences == 1 ? "" : "s");
        return 1;
    }
    // Self-check: the fuzz must actually exercise the fast path.
    if (coverage < 0.3) {
        std::fprintf(stderr,
                     "FAIL: fast-path coverage %.1f%% below 30%% — "
                     "the differential fuzz is not testing the fast "
                     "path\n",
                     coverage * 100);
        return 1;
    }
    if (!opt.json())
        std::printf("\nPASS: zero divergence across %" PRIu64
                    " programs\n",
                    programs);
    return 0;
}
