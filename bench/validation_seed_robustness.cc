/**
 * @file
 * Validation: are the Figure 7/8 conclusions robust to the proxies'
 * random streams?
 *
 * Every workload proxy draws its instruction/data interleaving from
 * a per-benchmark seed. This bench re-rolls those seeds and checks
 * that the quantities the claims rest on — the victim-cache gain,
 * the proposed/conventional ratio, the turb3d regression — move only
 * within narrow bands. (The shapes come from the workloads'
 * structure, not from a lucky seed.)
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/missrate.hh"

using namespace memwall;
using namespace memwall::cachelabels;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, {"--reseeds"});
    benchutil::banner("Validation - proxy-seed robustness", opt);

    MissRateParams params;
    params.measured_refs = opt.refs ? opt.refs
                                    : (opt.quick ? 300'000
                                                 : 2'000'000);
    params.warmup_refs = params.measured_refs / 4;

    // Seed deltas to sweep; override with --reseeds 0,777,31415,...
    const std::vector<std::uint64_t> reseeds =
        benchutil::parseU64List(
            opt.extraOr("--reseeds", "0,777,31415,2718281"));

    TextTable table("Key Figure 7/8 quantities across four proxy "
                    "seeds (min .. max)");
    table.setHeader({"quantity", "min", "max"});

    auto sweep = [&](const char *name, auto &&metric,
                     const char *label) {
        double lo = 1e30, hi = -1e30;
        for (std::uint64_t delta : reseeds) {
            SpecWorkload w = findWorkload(name);
            w.proxy.seed += delta;
            const auto rates = measureMissRates(w, params);
            const double v = metric(rates);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        table.addRow({label, TextTable::num(lo, 2),
                      TextTable::num(hi, 2)});
    };

    sweep("102.swim",
          [](const WorkloadMissRates &r) {
              return r.dcache(proposed).missRate() /
                     r.dcache(proposed_vc).missRate();
          },
          "swim: victim-cache miss reduction (x)");
    sweep("101.tomcatv",
          [](const WorkloadMissRates &r) {
              return r.dcache(proposed).missRate() /
                     r.dcache(conv16).missRate();
          },
          "tomcatv: proposed/conv-16K blow-up (x)");
    sweep("107.mgrid",
          [](const WorkloadMissRates &r) {
              return r.dcache(conv16).missRate() /
                     r.dcache(proposed).missRate();
          },
          "mgrid: prefetch win vs conv-16K (x)");
    sweep("125.turb3d",
          [](const WorkloadMissRates &r) {
              return r.icache(proposed).missRate() /
                     std::max(r.icache(conv8).missRate(), 1e-9);
          },
          "turb3d: I-cache regression (x)");
    sweep("099.go",
          [](const WorkloadMissRates &r) {
              return r.dcache(proposed).missRate() /
                     r.dcache(proposed_vc).missRate();
          },
          "go: victim-cache miss reduction (x)");

    table.print(std::cout);
    std::cout << "\nExpected: each band stays on its claim's side "
                 "of 1.0 with modest spread.\n";
    return 0;
}
