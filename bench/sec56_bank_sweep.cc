/**
 * @file
 * Regenerates the Section 5.6 study: sensitivity of the integrated
 * device to the number of DRAM banks (4/8/16) and of the
 * conventional system to 2..8 memory banks. The paper found all
 * differences below simulation noise, because per-bank utilisation
 * is tiny (gcc: 1.2% busy at 16 banks, 9.6% at 2 banks).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/spec_eval.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Section 5.6 - memory bank sweep", opt);

    SpecEvalParams params;
    params.seed = opt.seed;
    if (opt.quick) {
        params.missrate.measured_refs = 400'000;
        params.missrate.warmup_refs = 100'000;
        params.gspn_instructions = 30'000;
    }

    TextTable table("Integrated device: CPI and bank utilisation vs "
                    "bank count");
    table.setHeader({"benchmark", "banks", "total CPI",
                     "bank busy %"});
    // (workload x bank count) grid: every cell is an independent
    // sweep point; the rule after each workload group rides the
    // in-order commit of that group's last cell.
    ParallelSweep<SpecEstimate> sweep(opt.jobs, opt.seed);
    for (const char *name : {"126.gcc", "102.swim", "099.go"}) {
        const SpecWorkload &w = findWorkload(name);
        for (unsigned banks : {2u, 4u, 8u, 16u}) {
            sweep.submit(
                [&w, &params, banks](const PointContext &ctx) {
                    SpecEvalParams p = params;
                    p.banks = banks;
                    p.seed = ctx.seed;
                    return estimateIntegrated(w,
                                              /*victim_cache=*/true,
                                              p);
                },
                [&table, &w, banks](const PointContext &,
                                    SpecEstimate est) {
                    table.addRow(
                        {w.name, std::to_string(banks),
                         TextTable::num(est.cpi.total(), 3),
                         TextTable::num(
                             est.bank_utilisation * 100.0, 1)});
                    if (banks == 16u)
                        table.addRule();
                });
        }
    }
    sweep.finish();
    table.print(std::cout);

    std::cout << "\nConventional reference system, 2..8 memory "
                 "banks (126.gcc):\n";
    TextTable conv("");
    conv.setHeader({"banks", "total CPI"});
    const SpecWorkload &gcc = findWorkload("126.gcc");
    ParallelSweep<SpecEstimate> conv_sweep(opt.jobs, opt.seed + 1);
    for (unsigned banks : {2u, 4u, 8u}) {
        conv_sweep.submit(
            [&gcc, &params, banks](const PointContext &ctx) {
                SpecEvalParams p = params;
                p.banks = banks;
                p.seed = ctx.seed;
                // L2 at 6 cycles, memory at 150 ns (typical,
                // Figure 11).
                const ClockParams clock;
                return estimateReference(
                    gcc, 6.0,
                    static_cast<double>(clock.nsToCycles(150)), p);
            },
            [&conv, banks](const PointContext &, SpecEstimate est) {
                conv.addRow({std::to_string(banks),
                             TextTable::num(est.cpi.total(), 3)});
            });
    }
    conv_sweep.finish();
    conv.print(std::cout);
    std::cout << "\nExpected: CPI differences below simulation "
                 "noise; utilisation falls as banks are added.\n";
    return 0;
}
