/**
 * @file
 * Regenerates Table 1: the SparcStation 5 (slower CPU, close memory)
 * beats the SparcStation 10/61 (faster CPU, 1 MB L2, distant memory)
 * on the large-working-set Synopsys workload, while losing on
 * cache-friendly SPEC'92-like code.
 *
 * The paper's absolute numbers are wall-clock minutes of the real
 * machines; here both machines execute the same instruction stream
 * through their hierarchy timing models, so we report execution time
 * per billion instructions and the SS-10/SS-5 runtime ratio (paper:
 * 44 min / 32 min = 1.38 on Synopsys, and the inverse relation on
 * SPEC'92).
 *
 * Point execution and the --format=json renderer live in
 * workloads/spec_tables so mw-server serves the same bytes.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/spec_tables.hh"

using namespace memwall;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    if (!opt.json())
        benchutil::banner("Table 1 - SS-5 vs SS-10/61 on Synopsys",
                          opt);

    const std::uint64_t refs =
        resolveTable1Refs(opt.quick, opt.refs);

    // Canonical point order: synopsys, 130.li, 132.ijpeg on SS-5
    // then SS-10/61 each (the composite runs at refs/2).
    const std::vector<MachineRun> points = runTable1(refs);

    if (opt.json()) {
        // Shared with mw-server: one renderer, one set of bytes.
        std::fputs(table1Json(points).c_str(), stdout);
        return 0;
    }

    const MachineRun &syn5 = points[0];
    const MachineRun &syn10 = points[1];
    // "Spec'92-like" score: instructions/second on the composite,
    // normalised to the SS-5 = 64 of the paper's table.
    const double ips5 = 2.0 / (points[2].seconds_per_ginstr +
                               points[4].seconds_per_ginstr);
    const double ips10 = 2.0 / (points[3].seconds_per_ginstr +
                                points[5].seconds_per_ginstr);
    const double spec5 = 64.0;
    const double spec10 = 64.0 * ips10 / ips5;

    TextTable table("Table 1: SS-5 vs SS-10 Synopsys performance");
    table.setHeader({"Machine", "Spec'92-like score",
                     "Synopsys CPI", "Synopsys s/Ginstr",
                     "normalised run time"});
    table.addRow({"SS-5", TextTable::num(spec5, 0),
                  TextTable::num(syn5.cpi, 2),
                  TextTable::num(syn5.seconds_per_ginstr, 1),
                  TextTable::num(1.0, 2)});
    table.addRow({"SS-10/61", TextTable::num(spec10, 0),
                  TextTable::num(syn10.cpi, 2),
                  TextTable::num(syn10.seconds_per_ginstr, 1),
                  TextTable::num(syn10.seconds_per_ginstr /
                                     syn5.seconds_per_ginstr,
                                 2)});
    table.print(std::cout);

    std::cout << "\nPaper: SS-5 = 32 min, SS-10/61 = 44 min "
                 "(ratio 1.38) despite the SS-10's higher\nSPEC'92 "
                 "rating (89 vs 64) - the SS-5 wins when the working "
                 "set blows through the\nL2 because its main memory "
                 "is closer.\n";
    return 0;
}
