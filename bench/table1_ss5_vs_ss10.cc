/**
 * @file
 * Regenerates Table 1: the SparcStation 5 (slower CPU, close memory)
 * beats the SparcStation 10/61 (faster CPU, 1 MB L2, distant memory)
 * on the large-working-set Synopsys workload, while losing on
 * cache-friendly SPEC'92-like code.
 *
 * The paper's absolute numbers are wall-clock minutes of the real
 * machines; here both machines execute the same instruction stream
 * through their hierarchy timing models, so we report execution time
 * per billion instructions and the SS-10/SS-5 runtime ratio (paper:
 * 44 min / 32 min = 1.38 on Synopsys, and the inverse relation on
 * SPEC'92).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "mem/hierarchy.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

struct MachineRun
{
    double cpi = 0.0;
    double seconds_per_ginstr = 0.0;
    double mem_cpi = 0.0;
};

MachineRun
run(const SpecWorkload &w, const HierarchyConfig &config,
    std::uint64_t refs)
{
    MemoryHierarchy machine(config);
    SyntheticWorkload source(w.proxy);

    std::uint64_t instructions = 0;
    double cycles = 0;
    const RefSink sink = [&](const MemRef &ref) {
        const RefKind kind = ref.type == RefType::IFetch
            ? RefKind::IFetch
            : (ref.type == RefType::Store ? RefKind::Store
                                          : RefKind::Load);
        const auto res = machine.access(kind, ref.addr);
        if (kind == RefKind::IFetch) {
            ++instructions;
            // Base issue slot (superscalar cores spend less than a
            // cycle per instruction) plus any fetch stall.
            cycles += 1.0 / config.issue_width +
                      static_cast<double>(res.latency - 1);
        } else {
            // Data latency beyond one cycle stalls the pipeline.
            cycles += static_cast<double>(res.latency - 1);
        }
    };
    // Warm up.
    source.generate(refs / 4, sink);
    instructions = 0;
    cycles = 0;
    source.generate(refs, sink);

    MachineRun out;
    out.cpi = instructions
        ? cycles / static_cast<double>(instructions)
        : 0.0;
    out.seconds_per_ginstr =
        out.cpi * 1e9 / (config.freq_mhz * 1e6);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Table 1 - SS-5 vs SS-10/61 on Synopsys", opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 500'000 : 6'000'000);

    const HierarchyConfig ss5 = HierarchyConfig::ss5();
    const HierarchyConfig ss10 = HierarchyConfig::ss10();

    // Large-working-set EDA workload (the paper's Synopsys run).
    const SpecWorkload &synopsys = findWorkload("synopsys");
    const MachineRun syn5 = run(synopsys, ss5, refs);
    const MachineRun syn10 = run(synopsys, ss10, refs);

    // A cache-friendly composite standing in for the SPEC'92 rating:
    // small-working-set integer codes.
    const SpecWorkload &small1 = findWorkload("130.li");
    const SpecWorkload &small2 = findWorkload("132.ijpeg");
    const MachineRun li5 = run(small1, ss5, refs / 2);
    const MachineRun li10 = run(small1, ss10, refs / 2);
    const MachineRun jp5 = run(small2, ss5, refs / 2);
    const MachineRun jp10 = run(small2, ss10, refs / 2);
    // "Spec'92-like" score: instructions/second on the composite,
    // normalised to the SS-5 = 64 of the paper's table.
    const double ips5 =
        2.0 / (li5.seconds_per_ginstr + jp5.seconds_per_ginstr);
    const double ips10 =
        2.0 / (li10.seconds_per_ginstr + jp10.seconds_per_ginstr);
    const double spec5 = 64.0;
    const double spec10 = 64.0 * ips10 / ips5;

    TextTable table("Table 1: SS-5 vs SS-10 Synopsys performance");
    table.setHeader({"Machine", "Spec'92-like score",
                     "Synopsys CPI", "Synopsys s/Ginstr",
                     "normalised run time"});
    table.addRow({"SS-5", TextTable::num(spec5, 0),
                  TextTable::num(syn5.cpi, 2),
                  TextTable::num(syn5.seconds_per_ginstr, 1),
                  TextTable::num(1.0, 2)});
    table.addRow({"SS-10/61", TextTable::num(spec10, 0),
                  TextTable::num(syn10.cpi, 2),
                  TextTable::num(syn10.seconds_per_ginstr, 1),
                  TextTable::num(syn10.seconds_per_ginstr /
                                     syn5.seconds_per_ginstr,
                                 2)});
    table.print(std::cout);

    std::cout << "\nPaper: SS-5 = 32 min, SS-10/61 = 44 min "
                 "(ratio 1.38) despite the SS-10's higher\nSPEC'92 "
                 "rating (89 vs 64) - the SS-5 wins when the working "
                 "set blows through the\nL2 because its main memory "
                 "is closer.\n";
    return 0;
}
