/**
 * @file
 * Torture validation of the mw-server experiment service. Spawns the
 * real mw-server binary (fork/exec) and beats on it over its Unix
 * socket. Five legs, each an acceptance gate:
 *
 *   identity     fig7 and fig8 responses carry result bytes that are
 *                byte-identical to the shared in-process renderer —
 *                the same code path the one-shot bench binaries
 *                print, so server == one-shot by construction;
 *
 *   storm        N concurrent clients mixing duplicate runs, distinct
 *                runs, malformed JSON, unknown fields and oversized
 *                frames. Every well-formed request succeeds with the
 *                golden bytes, every malformed one gets its named
 *                error, a connection survives an oversized frame, and
 *                the stats counters prove each distinct experiment
 *                was computed exactly once;
 *
 *   crash        the server is SIGKILLed mid-life and restarted on
 *                the same socket and cache directory. The stale
 *                socket is reclaimed, the journal replays every
 *                result, and a re-request is served from cache —
 *                byte-identical, with zero recomputation;
 *
 *   degradation  injected faults (--allow-test-faults) exercise the
 *                failure ladder: transient faults are retried to
 *                success, persistent faults surface worker_failed, a
 *                short deadline surfaces deadline_exceeded, and a
 *                full inflight table sheds with overloaded plus a
 *                retry_after_ms hint;
 *
 *   catalog      every other catalog entry — table1, table3, a
 *                SPLASH figure and a sampled fig7 — is served
 *                byte-identical to the shared in-process renderers,
 *                fresh, under a mixed-catalog storm, and replayed
 *                from cache after the SIGKILL;
 *
 *   batching     two distinct in-flight keys landing in one batch
 *                window (fig7 + fig8, whose per-workload units are
 *                identical) share one pool pass: the stats counters
 *                prove the second figure's points all rode along,
 *                and the batched pass beats sequential wall-clock
 *                by >= 1.3x;
 *
 *   client       the mw-client binary itself: exit 0 on success,
 *                nonzero on a server-side error response
 *                (worker_failed), and --timeout-ms bounds a connect
 *                to a bound-but-wedged socket whose accept backlog
 *                is full (the case a read timeout can never catch);
 *
 *   shutdown     a "shutdown" request drains the server to a clean
 *                exit status.
 *
 * Exit status is non-zero when any gate fails, so CI can run this
 * binary directly (the CI job additionally runs it under TSan and
 * diffs mw-client --raw-result against the one-shot binary).
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sampling/plan.hh"
#include "server/json.hh"
#include "server/protocol.hh"
#include "server/wire.hh"
#include "workloads/missrate_figures.hh"
#include "workloads/spec_suite.hh"
#include "workloads/spec_tables.hh"
#include "workloads/splash_figures.hh"

using namespace memwall;
using namespace memwall::server;

#ifndef MWSERVER_BIN
#error "MWSERVER_BIN must point at the mw-server executable"
#endif
#ifndef MWCLIENT_BIN
#error "MWCLIENT_BIN must point at the mw-client executable"
#endif

namespace {

struct Gate
{
    std::string name;
    std::string detail;
    bool pass = false;
};

std::vector<Gate> gates;

void
gate(const std::string &name, bool pass, const std::string &detail)
{
    gates.push_back(Gate{name, detail, pass});
    if (!pass)
        std::cout << "FAIL: " << name << ": " << detail << "\n";
}

std::string
makeScratchDir()
{
    char tmpl[] = "/tmp/mw-server-torture-XXXXXX";
    const char *p = ::mkdtemp(tmpl);
    if (!p)
        MW_FATAL("cannot create scratch directory: ",
                 std::strerror(errno));
    return p;
}

/** fork/exec mw-server with the given extra flags. */
pid_t
spawnServer(const std::string &socket_path,
            const std::string &cache_dir, unsigned jobs,
            const std::vector<std::string> &extra)
{
    std::vector<std::string> args = {
        MWSERVER_BIN,  "--socket",  socket_path, "--cache-dir",
        cache_dir,     "--jobs",    std::to_string(jobs),
        "--allow-test-faults"};
    args.insert(args.end(), extra.begin(), extra.end());

    const pid_t pid = ::fork();
    if (pid < 0)
        MW_FATAL("fork: ", std::strerror(errno));
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "execv %s: %s\n", MWSERVER_BIN,
                     std::strerror(errno));
        _exit(127);
    }
    return pid;
}

/** Wait until the server accepts connections (or give up). */
bool
waitForServer(const std::string &socket_path, pid_t pid)
{
    for (int i = 0; i < 500; ++i) {
        std::string why;
        const int fd = connectUnix(socket_path, &why);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            return false; // server died during startup
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

/** One request/response over a fresh connection. */
std::string
rpc(const std::string &socket_path, const std::string &request)
{
    std::string why;
    const int fd = connectUnix(socket_path, &why);
    if (fd < 0)
        return "";
    std::string response;
    if (!writeFrame(fd, request, &why) ||
        readFrame(fd, response, &why) != FrameStatus::Ok)
        response.clear();
    ::close(fd);
    return response;
}

/** Raw bytes of the envelope's "result" member. The protocol puts
 *  "result" last, so its bytes run to the envelope's closing brace —
 *  which captures the figure document's trailing newline. */
std::string
resultBytes(const std::string &response)
{
    JsonValue v;
    std::string err;
    if (!parseJson(response, v, err))
        return "";
    const JsonValue *status = v.find("status");
    const JsonValue *result = v.find("result");
    if (status == nullptr || status->text != "ok" ||
        result == nullptr)
        return "";
    return response.substr(result->begin,
                           (response.size() - 1) - result->begin);
}

std::string
errorCodeOf(const std::string &response)
{
    JsonValue v;
    std::string err;
    if (!parseJson(response, v, err))
        return "unparseable";
    const JsonValue *e = v.find("error");
    if (e == nullptr || e->find("code") == nullptr)
        return "no-error-code";
    return e->find("code")->text;
}

bool
isCached(const std::string &response)
{
    JsonValue v;
    std::string err;
    if (!parseJson(response, v, err))
        return false;
    const JsonValue *c = v.find("cached");
    return c != nullptr && c->boolean;
}

/** stats counter lookup: section "counters"/"cache" etc. */
double
statNumber(const std::string &stats_response,
           const std::string &section, const std::string &name)
{
    JsonValue v;
    std::string err;
    if (!parseJson(stats_response, v, err))
        return -1.0;
    const JsonValue *result = v.find("result");
    if (result == nullptr)
        return -1.0;
    const JsonValue *group =
        section.empty() ? result : result->find(section);
    if (group == nullptr)
        return -1.0;
    const JsonValue *value = group->find(name);
    return value != nullptr ? value->number : -1.0;
}

std::string
runRequest(const std::string &experiment, std::uint64_t refs,
           std::uint64_t seed, const std::string &extra = "")
{
    return "{\"cmd\":\"run\",\"experiment\":\"" + experiment +
           "\",\"refs\":" + std::to_string(refs) +
           ",\"seed\":" + std::to_string(seed) + extra + "}";
}

/** Outcome of one mw-client invocation. */
struct ClientRun
{
    int exit_code = -1;
    std::uint64_t elapsed_ms = 0;
};

/**
 * fork/exec mw-client with @p args (stdout to /dev/null — the gates
 * judge the exit code and wall clock, the byte-identity gates go
 * through rpc() where the bytes are in hand).
 */
ClientRun
runClient(const std::vector<std::string> &args)
{
    std::vector<std::string> full = {MWCLIENT_BIN};
    full.insert(full.end(), args.begin(), args.end());

    // The child inherits our buffered stdout; empty it first or the
    // child's freopen() flushes a duplicate copy of everything
    // printed so far.
    std::fflush(stdout);

    const auto t0 = std::chrono::steady_clock::now();
    const pid_t pid = ::fork();
    if (pid < 0)
        MW_FATAL("fork: ", std::strerror(errno));
    if (pid == 0) {
        std::FILE *sink = std::freopen("/dev/null", "w", stdout);
        (void)sink;
        std::vector<char *> argv;
        argv.reserve(full.size() + 1);
        for (std::string &a : full)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        _exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    ClientRun out;
    out.elapsed_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return out;
}

// ---- in-process golden renders for the catalog leg -----------------
// Each reproduces exactly what the one-shot binary prints with
// --format json, through the same library entry points.

std::string
goldenTable1()
{
    const std::uint64_t refs = resolveTable1Refs(true, 0);
    std::vector<MachineRun> rows;
    for (std::size_t i = 0; i < table1_points; ++i)
        rows.push_back(runTable1Point(i, refs));
    return table1Json(rows);
}

std::string
goldenTable3(std::uint64_t seed)
{
    const SpecEvalParams base = resolveSpecEvalParams(true, 0, seed);
    std::vector<SpecEstimate> rows;
    const auto workloads = specTableWorkloads();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        SpecEvalParams p = base;
        p.seed = specTablePointSeed(seed, i);
        rows.push_back(runSpecTablePoint(*workloads[i], false, p));
    }
    return specTableJson(false, rows);
}

std::string
goldenFig13Nodes1()
{
    const SplashFigure fig = SplashFigure::Fig13Lu;
    const double scale = resolveSplashScale(fig, true);
    std::vector<SplashResult> rows;
    for (const std::string &arch : splashArchs())
        for (unsigned ncpus : splashCpuCounts(1))
            rows.push_back(runSplashFigurePoint(fig, arch, ncpus,
                                                scale, nullptr));
    return splashFigureJson(fig, scale, 1, rows);
}

std::string
goldenFig7Sampled(const std::string &plan_text)
{
    const SamplingPlan plan = parseSamplingPlan(plan_text);
    const MissRateParams params = resolveMissRateParams(true, 0);
    return missRateFigureSampledJson(
        MissRateFigure::ICache,
        runMissRateFigureSampled(MissRateFigure::ICache, params,
                                 plan));
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Validation - experiment-service torture", opt);

    const std::uint64_t refs =
        opt.refs ? opt.refs : (opt.quick ? 4'000 : 20'000);
    const unsigned jobs = opt.jobs ? opt.jobs : 4;

    const std::string scratch = makeScratchDir();
    const std::string socket_path = scratch + "/srv.sock";
    const std::string cache_dir = scratch + "/cache";

    // ---- spawn -----------------------------------------------------
    // A modest batch window so concurrent distinct keys coalesce —
    // the batching leg depends on it; every other leg just rides the
    // few extra milliseconds of collection latency.
    pid_t pid = spawnServer(socket_path, cache_dir, jobs,
                            {"--batch-window-ms", "60"});
    gate("server came up", waitForServer(socket_path, pid),
         "fork/exec + socket accept within 5s");

    // ---- identity leg ---------------------------------------------
    // Golden bytes from the shared renderer — the exact code the
    // one-shot binaries print through.
    const MissRateParams params =
        resolveMissRateParams(false, refs);
    const std::string golden7 = missRateFigureJson(
        MissRateFigure::ICache,
        runMissRateFigure(MissRateFigure::ICache, params));
    const std::string golden8 = missRateFigureJson(
        MissRateFigure::DCache,
        runMissRateFigure(MissRateFigure::DCache, params));

    const std::string resp7 =
        rpc(socket_path, runRequest("fig7", refs, opt.seed));
    const std::string resp8 =
        rpc(socket_path, runRequest("fig8", refs, opt.seed));
    gate("fig7 bytes == one-shot renderer",
         resultBytes(resp7) == golden7,
         std::to_string(golden7.size()) + " bytes");
    gate("fig8 bytes == one-shot renderer",
         resultBytes(resp8) == golden8,
         std::to_string(golden8.size()) + " bytes");

    // ---- storm leg -------------------------------------------------
    const unsigned clients = opt.quick ? 4 : 8;
    std::vector<int> failures(clients, 0);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned t = 0; t < clients; ++t)
        threads.emplace_back([&, t] {
            int bad = 0;
            // Duplicate of the already-cached fig7 run: golden bytes.
            if (resultBytes(rpc(socket_path,
                                runRequest("fig7", refs, opt.seed))) !=
                golden7)
                ++bad;
            // Distinct key (per-thread seed): the non-sampled
            // measurement ignores the sweep seed, so the bytes stay
            // golden while the cache key (and compute) are distinct.
            if (resultBytes(rpc(
                    socket_path,
                    runRequest("fig7", refs, 1'000 + t))) != golden7)
                ++bad;
            // Malformed JSON and unknown fields: named errors.
            if (errorCodeOf(rpc(socket_path, "{nope")) != "bad_json")
                ++bad;
            if (errorCodeOf(rpc(
                    socket_path,
                    R"({"experiment":"fig7","bogus":1})")) !=
                "bad_request")
                ++bad;
            // Oversized frame, then a ping on the SAME connection:
            // the stream must stay framed.
            std::string why;
            const int fd = connectUnix(socket_path, &why);
            if (fd < 0) {
                ++bad;
            } else {
                std::string response;
                if (!writeFrame(fd,
                                std::string(max_frame_bytes + 1, 'x'),
                                &why) ||
                    readFrame(fd, response, &why) != FrameStatus::Ok ||
                    errorCodeOf(response) != "oversized")
                    ++bad;
                if (!writeFrame(fd, R"({"cmd":"ping"})", &why) ||
                    readFrame(fd, response, &why) != FrameStatus::Ok ||
                    response.find("pong") == std::string::npos)
                    ++bad;
                ::close(fd);
            }
            failures[t] = bad;
        });
    for (auto &th : threads)
        th.join();
    int storm_failures = 0;
    for (const int f : failures)
        storm_failures += f;
    gate("storm responses all correct", storm_failures == 0,
         std::to_string(clients) + " clients x 5 ops, " +
             std::to_string(storm_failures) + " failure(s)");

    // Exactly-once: fig7 + fig8 + one per distinct storm seed.
    const std::string stats1 =
        rpc(socket_path, R"({"cmd":"stats"})");
    const double computed =
        statNumber(stats1, "counters", "computed");
    const double expect_computed = 2.0 + clients;
    gate("exactly-once compute",
         computed == expect_computed,
         "computed=" + std::to_string((long long)computed) +
             ", distinct keys=" +
             std::to_string((long long)expect_computed));

    // ---- catalog leg ----------------------------------------------
    // Golden bytes for the rest of the catalog, from the same
    // library entry points the one-shot binaries print through.
    const std::string plan_text = "U=500,W=1000,k=20";
    const std::string golden_t1 = goldenTable1();
    const std::string golden_t3 = goldenTable3(opt.seed);
    const std::string golden_lu = goldenFig13Nodes1();
    const std::string golden_f7s = goldenFig7Sampled(plan_text);

    const std::string seed_field =
        ",\"seed\":" + std::to_string(opt.seed);
    const std::string req_t1 =
        R"({"cmd":"run","experiment":"table1","quick":true)" +
        seed_field + "}";
    const std::string req_t3 =
        R"({"cmd":"run","experiment":"table3","quick":true)" +
        seed_field + "}";
    const std::string req_lu =
        R"({"cmd":"run","experiment":"fig13","quick":true,"nodes":1)" +
        seed_field + "}";
    const std::string req_f7s =
        R"({"cmd":"run","experiment":"fig7","quick":true,"sample":")" +
        plan_text + "\"" + seed_field + "}";

    // Mixed-catalog storm: all four entries land on the server at
    // once (one shared batch window, four unrelated plans).
    const std::vector<std::pair<const std::string *,
                                const std::string *>>
        catalog = {{&req_t1, &golden_t1},
                   {&req_t3, &golden_t3},
                   {&req_lu, &golden_lu},
                   {&req_f7s, &golden_f7s}};
    std::vector<int> cat_bad(catalog.size(), 0);
    std::vector<std::thread> cat_threads;
    for (std::size_t i = 0; i < catalog.size(); ++i)
        cat_threads.emplace_back([&, i] {
            if (resultBytes(rpc(socket_path, *catalog[i].first)) !=
                *catalog[i].second)
                cat_bad[i] = 1;
        });
    for (auto &th : cat_threads)
        th.join();
    gate("catalog storm serves renderer bytes",
         cat_bad[0] + cat_bad[1] + cat_bad[2] + cat_bad[3] == 0,
         "table1/table3/fig13(nodes=1)/fig7-sampled, concurrent");

    // ---- batching leg ---------------------------------------------
    // Sequential baseline: two fresh keys, one at a time — each pass
    // computes every per-workload unit itself.
    const auto timed_rpc = [&](const std::string &req) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string resp = rpc(socket_path, req);
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return std::make_pair(resp, static_cast<std::uint64_t>(ms));
    };
    const auto seq7 = timed_rpc(runRequest("fig7", refs, 9'001));
    const auto seq8 = timed_rpc(runRequest("fig8", refs, 9'002));
    const std::uint64_t t_seq = seq7.second + seq8.second;
    bool seq_golden = resultBytes(seq7.first) == golden7 &&
                      resultBytes(seq8.first) == golden8;

    // Batched pass: the same two figures fired together. fig7 and
    // fig8 at one window decompose into IDENTICAL per-workload units
    // (one measureMissRates() pass yields both figures), so one
    // batch computes the suite once and renders both documents.
    // Retried with fresh seeds in case a scheduling stall makes the
    // two requests miss one 60 ms window.
    const double suite_points =
        static_cast<double>(specSuite().size());
    bool coalesced = false, shared_exact = false,
         batch_golden = false;
    std::uint64_t t_batch = 0;
    for (int attempt = 0; attempt < 3 && !coalesced; ++attempt) {
        const std::string before =
            rpc(socket_path, R"({"cmd":"stats"})");
        const std::uint64_t seed7 = 9'100 + 2 * attempt;
        std::string b7, b8;
        const auto t0 = std::chrono::steady_clock::now();
        std::thread th7([&] {
            b7 = rpc(socket_path, runRequest("fig7", refs, seed7));
        });
        std::thread th8([&] {
            b8 = rpc(socket_path,
                     runRequest("fig8", refs, seed7 + 1));
        });
        th7.join();
        th8.join();
        t_batch = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        const std::string after =
            rpc(socket_path, R"({"cmd":"stats"})");
        const auto delta = [&](const char *name) {
            return statNumber(after, "counters", name) -
                   statNumber(before, "counters", name);
        };
        coalesced = delta("batches") == 1.0 &&
                    delta("batched_keys") == 2.0;
        shared_exact = delta("points_computed") == suite_points &&
                       delta("points_shared") == suite_points;
        batch_golden = resultBytes(b7) == golden7 &&
                       resultBytes(b8) == golden8;
    }
    gate("batch coalesces distinct in-flight keys",
         coalesced && batch_golden && seq_golden,
         "fig7+fig8 in one batch, both documents golden");
    gate("batch shares units exactly-once",
         shared_exact,
         "points_computed=+" +
             std::to_string((long long)suite_points) +
             ", points_shared=+" +
             std::to_string((long long)suite_points));
    const double speedup =
        t_batch > 0 ? static_cast<double>(t_seq) /
                          static_cast<double>(t_batch)
                    : 0.0;
    char speedup_txt[96];
    std::snprintf(speedup_txt, sizeof(speedup_txt),
                  "seq %llums vs batched %llums = %.2fx",
                  (unsigned long long)t_seq,
                  (unsigned long long)t_batch, speedup);
    gate("batched pass beats sequential >= 1.3x", speedup >= 1.3,
         speedup_txt);

    // ---- crash leg -------------------------------------------------
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    gate("server SIGKILLed",
         WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
         "no chance to flush or unlink its socket");

    // Restart on the SAME socket path (stale-socket reclaim) and the
    // same cache directory (journal replay); small inflight table so
    // the degradation leg can fill it.
    pid = spawnServer(socket_path, cache_dir, jobs,
                      {"--max-inflight", "1", "--max-retries", "2",
                       "--backoff-base-ms", "1"});
    gate("restart reclaims stale socket",
         waitForServer(socket_path, pid),
         "bind over the dead server's socket file");

    // By the SIGKILL the journal held the identity + storm keys plus
    // the four catalog entries and the four batching-leg keys.
    const double expect_recovered = expect_computed + 8.0;
    const std::string stats2 =
        rpc(socket_path, R"({"cmd":"stats"})");
    gate("journal replayed after SIGKILL",
         statNumber(stats2, "cache", "recovered") >=
             expect_recovered,
         "recovered=" +
             std::to_string((long long)statNumber(
                 stats2, "cache", "recovered")) +
             " >= " + std::to_string((long long)expect_recovered));

    const std::string replay =
        rpc(socket_path, runRequest("fig7", refs, opt.seed));
    gate("cached replay is byte-identical",
         isCached(replay) && resultBytes(replay) == golden7,
         "served from the journal-recovered cache");

    // Every catalog entry replays from the recovered cache with the
    // exact renderer bytes — the crash lost nothing and changed
    // nothing.
    int cat_replay_bad = 0;
    for (const auto &entry : catalog) {
        const std::string r = rpc(socket_path, *entry.first);
        if (!isCached(r) || resultBytes(r) != *entry.second)
            ++cat_replay_bad;
    }
    gate("catalog crash replay byte-identical", cat_replay_bad == 0,
         "table1/table3/fig13/fig7-sampled from the journal");

    gate("replay recomputed nothing",
         statNumber(rpc(socket_path, R"({"cmd":"stats"})"),
                    "counters", "computed") == 0.0,
         "computed=0 on the restarted server");

    // ---- degradation leg ------------------------------------------
    // Transient faults: two injected failures, three attempts.
    const std::string retried = rpc(
        socket_path, runRequest("fig7", refs, 7'001,
                                R"(,"fault":{"fail_points":2})"));
    gate("transient faults retried to success",
         resultBytes(retried) == golden7,
         "fail_points=2 vs max-retries=2");

    // Persistent faults: more failures than attempts.
    gate("persistent faults surface worker_failed",
         errorCodeOf(rpc(socket_path,
                         runRequest(
                             "fig7", refs, 7'002,
                             R"(,"fault":{"fail_points":10000})"))) ==
             "worker_failed",
         "fail_points=10000");

    // Deadline: every point hangs 150 ms, the client allows 30 ms.
    gate("deadline surfaces deadline_exceeded",
         errorCodeOf(rpc(
             socket_path,
             runRequest(
                 "fig7", refs, 7'003,
                 R"(,"deadline_ms":30,"fault":{"hang_ms":150})"))) ==
             "deadline_exceeded",
         "30ms deadline vs 150ms/point hang");

    // Overload: hog the single inflight slot, then ask for more.
    std::thread hog([&] {
        rpc(socket_path,
            runRequest("fig7", refs, 7'004,
                       R"(,"fault":{"hang_ms":400})"));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::string shed_resp =
        rpc(socket_path, runRequest("fig8", refs, 7'005));
    JsonValue shed_json;
    std::string err;
    const bool shed_parsed =
        parseJson(shed_resp, shed_json, err) &&
        shed_json.find("error") != nullptr;
    const bool has_retry_after =
        shed_parsed && shed_json.find("error")->find(
                           "retry_after_ms") != nullptr;
    gate("overload sheds with retry_after",
         errorCodeOf(shed_resp) == "overloaded" && has_retry_after,
         "max-inflight=1, slot hogged by a hanging run");
    hog.join();

    // ---- client leg -----------------------------------------------
    // The real mw-client binary. Success is exit 0 (a cached key, so
    // it returns at once)...
    const ClientRun client_ok = runClient(
        {"--socket", socket_path, "--timeout-ms", "120000", "run",
         "--experiment", "fig7", "--refs", std::to_string(refs),
         "--seed", std::to_string(opt.seed)});
    gate("mw-client exits 0 on success", client_ok.exit_code == 0,
         "exit=" + std::to_string(client_ok.exit_code));

    // ...and a server-side error response — worker_failed from an
    // injected persistent fault — is exit 1, not a swallowed "ok".
    const ClientRun client_fail = runClient(
        {"--socket", socket_path, "--timeout-ms", "120000", "send",
         runRequest("fig7", refs, 7'101,
                    R"(,"fault":{"fail_points":10000})")});
    gate("mw-client exits nonzero on worker_failed",
         client_fail.exit_code == 1,
         "exit=" + std::to_string(client_fail.exit_code));

    // A bound-but-wedged socket: listening, backlog full, nobody
    // accepting. A plain connect(2) would block indefinitely — no
    // read timeout ever fires because the connect never completes.
    // --timeout-ms must bound the connect itself.
    {
        const std::string decoy = scratch + "/wedged.sock";
        std::string why;
        const int lfd = listenUnix(decoy, 0, &why);
        gate("decoy wedged listener bound", lfd >= 0, why);
        // Fill the (zero-length) backlog so the client's connect
        // cannot complete. If the filler itself cannot get in, the
        // client's connect will — and then its I/O timeout bounds
        // the read instead; either way the gate must see a prompt
        // nonzero exit.
        const int filler = connectUnixTimeout(decoy, 2'000, &why);
        const ClientRun hung = runClient({"--socket", decoy,
                                          "--timeout-ms", "400",
                                          "ping"});
        gate("mw-client timeout bounds a wedged connect",
             hung.exit_code != 0 && hung.elapsed_ms < 5'000,
             "exit=" + std::to_string(hung.exit_code) + " after " +
                 std::to_string(hung.elapsed_ms) + "ms");
        if (filler >= 0)
            ::close(filler);
        if (lfd >= 0)
            ::close(lfd);
        ::unlink(decoy.c_str());
    }

    // ---- shutdown leg ---------------------------------------------
    const std::string bye =
        rpc(socket_path, R"({"cmd":"shutdown"})");
    status = -1;
    for (int i = 0; i < 500; ++i) {
        if (::waitpid(pid, &status, WNOHANG) == pid)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    gate("shutdown request drains to exit 0",
         bye.find("shutting_down") != std::string::npos &&
             WIFEXITED(status) && WEXITSTATUS(status) == 0,
         "clean exit after \"shutdown\"");

    TextTable table("Experiment-service torture gates");
    table.setHeader({"gate", "detail", "status"});
    int failed = 0;
    for (const Gate &g : gates) {
        table.addRow({g.name, g.detail, g.pass ? "ok" : "FAIL"});
        if (!g.pass)
            ++failed;
    }
    table.print(std::cout);

    const std::string cleanup = "rm -rf '" + scratch + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());

    if (failed) {
        std::cout << "\n" << failed << " gate(s) FAILED\n";
        return 1;
    }
    std::cout << "\nall " << gates.size() << " gates passed\n";
    return 0;
}
