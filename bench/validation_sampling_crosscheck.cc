/**
 * @file
 * Validation: sampled simulation vs exhaustive simulation.
 *
 * Two legs, mirroring the two simulation styles in the repo. For
 * each, the headline metrics must land inside the sampled confidence
 * interval (or within a small absolute tolerance, for near-zero
 * values whose sampled variance collapses).
 *
 *   SPEC    every suite workload's Figure 7/8 headline miss rates
 *           (proposed icache, proposed+victim dcache), under BOTH
 *           sampling schemes, each against the exhaustive reference
 *           that measures the same population:
 *             systematic  vs the windowed exhaustive run (same
 *                         stream, same measurement window);
 *             stratified  vs a steady-state exhaustive run
 *                         (stationary_start — scatterState() then
 *                         warm up), since independent stationary
 *                         substreams estimate the steady-state rate,
 *                         not a particular cold-start window.
 *   SPLASH  all five kernels under the execution-driven CC-NUMA
 *           model. The reference value is the mean per-unit data
 *           access latency of an all-detail plan (k=1, W=0 — timing
 *           identical to the unsampled run); the systematic sampled
 *           run's confidence interval must cover it, and the
 *           checksums must match exactly (sampling may never perturb
 *           computed results).
 *
 * Text mode also times the runs and enforces an aggregate wall-clock
 * speedup (--min-speedup, default 5) over the production sampling
 * configurations: stratified for the trace-driven SPEC leg (the fast
 * mode fig7/fig8 --sample defaults to) and the systematic sampler
 * for SPLASH. The systematic SPEC scheme replays the entire stream
 * by construction, so its (smaller) speedup is reported but not
 * gated. With `--format json` the output carries no wall-clock
 * times, so it is byte-identical across runs and across --jobs
 * values — CI diffs it against a committed golden file.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "splash_driver.hh"
#include "workloads/missrate.hh"
#include "workloads/splash/splash.hh"

using namespace memwall;
using namespace memwall::cachelabels;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Run @p fn @p reps times and report the minimum wall-clock time in
 * @p seconds — the standard noise-robust estimator for a
 * deterministic computation on a possibly loaded host. Every run
 * computes identical values (the simulator is deterministic), so
 * only the first result is kept.
 */
template <typename Fn>
auto
timedBest(int reps, double &seconds, Fn &&fn)
{
    double t0 = nowSeconds();
    auto result = fn();
    seconds = nowSeconds() - t0;
    for (int i = 1; i < reps; ++i) {
        t0 = nowSeconds();
        static_cast<void>(fn());
        seconds = std::min(seconds, nowSeconds() - t0);
    }
    return result;
}

/** Timing repetitions for the speedup gate's two sides. */
struct TimingReps
{
    int full = 1;
    int sampled = 1;
};

/** One gated comparison: exhaustive value vs sampled interval. */
struct Check
{
    std::string metric;
    double full = 0.0;
    double mean = 0.0;
    double half = 0.0;
    std::uint64_t units = 0;
    bool pass = false;
};

/** One crosschecked workload or kernel. */
struct Point
{
    std::string name;
    std::vector<Check> checks;
    bool checksum_match = true;  ///< SPLASH only; true for SPEC
    /** Speedup-gated pair: exhaustive vs production sampling. */
    double full_s = 0.0;
    double sampled_s = 0.0;
    /** Ungated pair (SPEC only): windowed full vs systematic. */
    double sys_full_s = 0.0;
    double sys_sampled_s = 0.0;
};

/**
 * Coverage gate. The interval must cover the exhaustive value, with
 * an absolute fallback for degenerate samples: a stratified unit set
 * that never misses yields a zero-width interval at rate 0, and the
 * exhaustive rate over a 10x longer stream can still be a few
 * hundredths of a percent.
 */
bool
covered(double full, const ConfidenceInterval &ci, double abs_tol)
{
    if (ci.contains(full))
        return true;
    return std::abs(full - ci.mean) <= abs_tol;
}

Check
makeCheck(const std::string &metric, double full,
          const SampledCacheMissRate &sampled, double abs_tol)
{
    Check c;
    c.metric = metric;
    c.full = full;
    c.mean = sampled.mean();
    c.half = sampled.ci.half_width;
    c.units = sampled.unit_rates.count();
    c.pass = covered(full, sampled.ci, abs_tol);
    return c;
}

/**
 * Systematic SPEC: same stream, same window — the only deviation
 * sources are sampling error (the CI's job) and the finite warm
 * window, so the absolute fallback is tight: 0.15 percentage points.
 */
constexpr double spec_sys_abs_tol = 0.0015;
/**
 * Stratified SPEC: the fast approximate mode. Its units splice
 * independent substreams into one cache lifetime, which perturbs
 * long-reuse-distance behaviour; the documented accuracy contract
 * for the headline metrics is 0.3 percentage points.
 */
constexpr double spec_strat_abs_tol = 0.003;
/** Latencies are a handful of cycles. */
constexpr double splash_abs_tol = 0.25;

Point
runSpecPoint(const SpecWorkload &w, const MissRateParams &params,
             const SamplingPlan &sys_plan,
             const SamplingPlan &strat_plan, const TimingReps &reps)
{
    Point pt;
    pt.name = w.name;

    // Systematic scheme vs the windowed exhaustive run.
    const WorkloadMissRates window = timedBest(
        reps.full, pt.sys_full_s,
        [&] { return measureMissRates(w, params); });

    const SampledWorkloadMissRates sys = timedBest(
        reps.sampled, pt.sys_sampled_s,
        [&] { return measureMissRatesSampled(w, params, sys_plan); });

    pt.checks.push_back(makeCheck(
        "icache proposed (sys)", window.icache(proposed).missRate(),
        sys.icache(proposed), spec_sys_abs_tol));
    pt.checks.push_back(makeCheck(
        "dcache proposed+vc (sys)",
        window.dcache(proposed_vc).missRate(),
        sys.dcache(proposed_vc), spec_sys_abs_tol));

    // Stratified scheme vs the steady-state exhaustive run.
    MissRateParams steady_params = params;
    steady_params.stationary_start = true;
    const WorkloadMissRates steady = timedBest(
        reps.full, pt.full_s,
        [&] { return measureMissRates(w, steady_params); });

    const SampledWorkloadMissRates strat = timedBest(
        reps.sampled, pt.sampled_s, [&] {
            return measureMissRatesSampled(w, params, strat_plan);
        });

    pt.checks.push_back(makeCheck(
        "icache proposed (strat)",
        steady.icache(proposed).missRate(), strat.icache(proposed),
        spec_strat_abs_tol));
    pt.checks.push_back(makeCheck(
        "dcache proposed+vc (strat)",
        steady.dcache(proposed_vc).missRate(),
        strat.dcache(proposed_vc), spec_strat_abs_tol));
    return pt;
}

Point
runSplashPoint(const std::string &kernel, double scale,
               const SamplingPlan &sampled_plan,
               const TimingReps &reps)
{
    // All-detail plan: every access is a detail access, so the run
    // is timing-identical to the unsampled simulator and its mean
    // unit latency is the exhaustive reference value.
    SamplingPlan full_plan = sampled_plan;
    full_plan.warmup_refs = 0;
    full_plan.period_units = 1;

    SplashParams params;
    params.nprocs = 4;
    params.machine = benchutil::machineFor("integrated+vc", 4);
    params.scale = scale;

    Point pt;
    pt.name = kernel;

    params.sampling = &full_plan;
    const SplashResult full = timedBest(
        reps.full, pt.full_s,
        [&] { return runSplash(kernel, params); });

    params.sampling = &sampled_plan;
    const SplashResult sampled = timedBest(
        reps.sampled, pt.sampled_s,
        [&] { return runSplash(kernel, params); });

    pt.checksum_match = full.checksum == sampled.checksum;

    Check c;
    c.metric = "mean access latency";
    c.full = full.sampled_latency;
    c.mean = sampled.sampled_latency;
    c.half = sampled.sampled_latency_half;
    c.units = sampled.sample_units;
    ConfidenceInterval ci;
    ci.mean = c.mean;
    ci.half_width = c.half;
    ci.n = c.units;
    ci.valid = c.units >= 2;
    c.pass = covered(c.full, ci, splash_abs_tol) &&
             pt.checksum_match;
    pt.checks.push_back(c);
    return pt;
}

void
printJson(const std::vector<Point> &spec,
          const std::vector<Point> &splash, int failed)
{
    const auto checks = [](const Point &pt, const char *indent) {
        for (std::size_t i = 0; i < pt.checks.size(); ++i) {
            const Check &c = pt.checks[i];
            std::printf("%s{\"metric\": \"%s\", \"full\": %.6f, "
                        "\"mean\": %.6f, \"half\": %.6f, "
                        "\"units\": %llu, \"pass\": %s}%s\n",
                        indent, c.metric.c_str(), c.full, c.mean,
                        c.half,
                        static_cast<unsigned long long>(c.units),
                        c.pass ? "true" : "false",
                        i + 1 < pt.checks.size() ? "," : "");
        }
    };
    std::printf("{\n  \"spec\": [\n");
    for (std::size_t i = 0; i < spec.size(); ++i) {
        std::printf("    {\"workload\": \"%s\", \"checks\": [\n",
                    spec[i].name.c_str());
        checks(spec[i], "      ");
        std::printf("    ]}%s\n", i + 1 < spec.size() ? "," : "");
    }
    std::printf("  ],\n  \"splash\": [\n");
    for (std::size_t i = 0; i < splash.size(); ++i) {
        std::printf("    {\"kernel\": \"%s\", \"checksum_match\": "
                    "%s, \"checks\": [\n",
                    splash[i].name.c_str(),
                    splash[i].checksum_match ? "true" : "false");
        checks(splash[i], "      ");
        std::printf("    ]}%s\n", i + 1 < splash.size() ? "," : "");
    }
    std::printf("  ],\n  \"failed\": %d\n}\n", failed);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, {"--min-speedup"});
    const double min_speedup =
        std::strtod(opt.extraOr("--min-speedup", "5").c_str(),
                    nullptr);
    if (!opt.json())
        benchutil::banner(
            "Validation - sampled vs exhaustive simulation", opt);

    MissRateParams spec_params;
    spec_params.measured_refs = opt.quick ? 400'000 : 4'000'000;
    spec_params.warmup_refs = spec_params.measured_refs / 4;

    const SamplingPlan spec_sys_plan = parseSamplingPlan(
        opt.quick ? "U=1000,W=4000,k=50" : "U=1000,W=4000,k=50");
    SamplingPlan spec_strat_plan = parseSamplingPlan(
        opt.quick ? "mode=strat,U=1000,W=2000,n=12"
                  : "mode=strat,U=1000,W=2000,n=30");
    spec_strat_plan.seed = opt.seed;

    const SamplingPlan splash_plan =
        parseSamplingPlan("U=500,W=1000,k=50");

    // The speedup gate compares wall-clock on a possibly loaded
    // host; best-of-N per side keeps the measurement robust. Quick
    // runs are cheap enough to repeat; full runs take the single
    // measurement (minutes-long runs amortise the noise themselves).
    TimingReps reps;
    if (opt.quick) {
        reps.full = 2;
        reps.sampled = 3;
    }
    const std::vector<std::pair<std::string, double>> kernels{
        {"lu", 0.5},     {"mp3d", 1.0},  {"ocean", 1.0},
        {"water", 1.0},  {"pthor", 0.3}};

    std::vector<Point> spec, splash;
    ParallelSweep<Point> sweep(opt.jobs, opt.seed);
    for (const auto &w : specSuite())
        sweep.submit(
            [&w, &spec_params, &spec_sys_plan, &spec_strat_plan,
             &reps](const PointContext &) {
                return runSpecPoint(w, spec_params, spec_sys_plan,
                                    spec_strat_plan, reps);
            },
            [&spec](const PointContext &, Point pt) {
                spec.push_back(std::move(pt));
            });
    for (const auto &[kernel, full_scale] : kernels) {
        const double scale =
            opt.quick ? full_scale / 6.0 : full_scale;
        sweep.submit(
            [kernel = kernel, scale, &splash_plan,
             &reps](const PointContext &) {
                return runSplashPoint(kernel, scale, splash_plan,
                                      reps);
            },
            [&splash](const PointContext &, Point pt) {
                splash.push_back(std::move(pt));
            });
    }
    sweep.finish();

    int failed = 0;
    for (const auto *leg : {&spec, &splash})
        for (const Point &pt : *leg)
            for (const Check &c : pt.checks)
                if (!c.pass)
                    ++failed;

    if (opt.json()) {
        printJson(spec, splash, failed);
        return failed != 0 ? 1 : 0;
    }

    TextTable spec_table(
        "SPEC leg: exhaustive miss rate vs sampled CI (%)");
    spec_table.setHeader({"workload", "metric", "exhaustive",
                          "sampled", "units", "status"});
    for (const Point &pt : spec)
        for (const Check &c : pt.checks)
            spec_table.addRow(
                {pt.name, c.metric, TextTable::num(c.full * 100, 3),
                 TextTable::num(c.mean * 100, 3) + "±" +
                     TextTable::num(c.half * 100, 3),
                 std::to_string(c.units),
                 c.pass ? "ok" : "FAIL"});
    spec_table.print(std::cout);

    TextTable splash_table("SPLASH leg: exhaustive mean latency vs "
                           "sampled CI (cycles)");
    splash_table.setHeader({"kernel", "exhaustive", "sampled",
                            "units", "checksum", "status"});
    for (const Point &pt : splash) {
        const Check &c = pt.checks.front();
        splash_table.addRow(
            {pt.name, TextTable::num(c.full, 3),
             TextTable::num(c.mean, 3) + "±" +
                 TextTable::num(c.half, 3),
             std::to_string(c.units),
             pt.checksum_match ? "match" : "MISMATCH",
             c.pass ? "ok" : "FAIL"});
    }
    std::cout << '\n';
    splash_table.print(std::cout);

    double spec_full = 0.0, spec_sampled = 0.0;
    double sys_full = 0.0, sys_sampled = 0.0;
    for (const Point &pt : spec) {
        spec_full += pt.full_s;
        spec_sampled += pt.sampled_s;
        sys_full += pt.sys_full_s;
        sys_sampled += pt.sys_sampled_s;
    }
    double splash_full = 0.0, splash_sampled = 0.0;
    for (const Point &pt : splash) {
        splash_full += pt.full_s;
        splash_sampled += pt.sampled_s;
    }
    const double total_full = spec_full + splash_full;
    const double total_sampled = spec_sampled + splash_sampled;
    const double speedup =
        total_sampled > 0.0 ? total_full / total_sampled : 0.0;

    std::printf("\nwall-clock (production modes): "
                "SPEC strat %.3fs -> %.3fs (%.1fx), "
                "SPLASH %.3fs -> %.3fs (%.1fx)\n",
                spec_full, spec_sampled,
                spec_sampled > 0 ? spec_full / spec_sampled : 0.0,
                splash_full, splash_sampled,
                splash_sampled > 0 ? splash_full / splash_sampled
                                   : 0.0);
    std::printf("wall-clock (systematic SPEC, ungated): "
                "%.3fs -> %.3fs (%.1fx)\n",
                sys_full, sys_sampled,
                sys_sampled > 0 ? sys_full / sys_sampled : 0.0);
    std::printf("aggregate measured speedup: %.1fx (gate: >= %.1fx)\n",
                speedup, min_speedup);
    std::printf("coverage: %d failed check(s)\n", failed);

    if (failed != 0)
        return 1;
    if (speedup < min_speedup) {
        std::printf("FAIL: sampling speedup below the gate\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
