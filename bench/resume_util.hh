/**
 * @file
 * Shared --resume / --ckpt-dir plumbing for the miss-rate figure
 * benches (Figures 7 and 8).
 */

#ifndef MEMWALL_BENCH_RESUME_UTIL_HH
#define MEMWALL_BENCH_RESUME_UTIL_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.hh"
#include "checkpoint/journal.hh"
#include "checkpoint/store.hh"
#include "workloads/missrate.hh"

namespace memwall::benchutil {

/** Run hash tying a resume journal to one (bench, flags) tuple. */
inline std::uint64_t
missRateRunHash(const char *bench, const Options &opt,
                const MissRateParams &params,
                const SamplingPlan *plan)
{
    std::uint64_t h = ckpt::fnv1a64(bench);
    h = ckpt::fnvMix(h, opt.seed);
    h = ckpt::fnvMix(h, params.measured_refs);
    h = ckpt::fnvMix(h, params.warmup_refs);
    h = ckpt::fnvMix(h, plan ? samplingPlanHash(*plan) : 0);
    return h;
}

/**
 * Open the journal (fatal on I/O errors) and report recovery on
 * stderr — stdout must stay byte-identical between an uninterrupted
 * run and a killed-and-resumed one.
 */
inline void
openJournal(ckpt::SweepJournal &journal, const std::string &path,
            std::uint64_t run_hash)
{
    std::string why;
    if (!journal.open(path, run_hash, &why))
        MW_FATAL("--resume: ", why);
    if (journal.discardedForeign())
        std::fprintf(stderr, "resume journal: foreign run "
                             "discarded, starting fresh\n");
    else if (journal.recovered() > 0)
        std::fprintf(stderr,
                     "resume journal: replaying %zu committed "
                     "point(s)%s\n",
                     journal.recovered(),
                     journal.tornBytes() ? " (torn tail truncated)"
                                         : "");
}

/** One-line degradation/bookkeeping summary of a checkpoint store,
 *  on stderr: it legitimately differs between populating and
 *  loading runs, and stdout must stay byte-identical to a
 *  non-accelerated run. */
inline void
printStoreCounters(const ckpt::CheckpointStore &store)
{
    const ckpt::StoreCounters c = store.counters();
    std::fprintf(stderr,
                 "checkpoint store: loaded=%llu written=%llu "
                 "degraded=%llu (missing=%llu corrupt=%llu "
                 "version=%llu config=%llu) write-errors=%llu\n",
                 static_cast<unsigned long long>(c.loaded),
                 static_cast<unsigned long long>(c.written),
                 static_cast<unsigned long long>(c.degraded()),
                 static_cast<unsigned long long>(c.degraded_missing),
                 static_cast<unsigned long long>(c.degraded_corrupt),
                 static_cast<unsigned long long>(c.degraded_version),
                 static_cast<unsigned long long>(c.degraded_config),
                 static_cast<unsigned long long>(c.write_errors));
}

/**
 * Build the per-unit checkpoint store for a sampled run, or null
 * when --ckpt-dir was not given. Only stratified plans are
 * accelerated; other plans get a warning and no store.
 */
inline std::unique_ptr<ckpt::CheckpointStore>
makeMissRateStore(const std::string &ckpt_dir,
                  const SamplingPlan &plan)
{
    if (ckpt_dir.empty())
        return nullptr;
    if (plan.scheme != SampleScheme::Stratified) {
        MW_WARN("--ckpt-dir only accelerates stratified plans "
                "(mode=strat); ignoring it");
        return nullptr;
    }
    return std::make_unique<ckpt::CheckpointStore>(
        ckpt_dir, ckpt::fnvMix(ckpt::fnv1a64("missrate-sampled"),
                               samplingPlanHash(plan)));
}

} // namespace memwall::benchutil

#endif // MEMWALL_BENCH_RESUME_UTIL_HH
