/**
 * @file
 * Torture validation of the checkpoint/restore subsystem. Four legs,
 * each an acceptance gate:
 *
 *   determinism  the sampled Figure 7/8 measurement, journal-encoded
 *                per workload and hashed, is byte-identical between a
 *                parallel (--jobs N) and a serial sweep;
 *
 *   speedup      warm checkpoint-accelerated runs beat plain
 *                functional rewarming by at least --min-speedup
 *                (default 10) in aggregate wall-clock, while the
 *                measurements stay byte-identical across the plain,
 *                cold-populating and warm-restoring runs;
 *
 *   corruption   an adversarial campaign over one populated unit
 *                checkpoint: truncations, bit flips in header /
 *                section table / payload, honest version skew,
 *                foreign configuration, plus a deterministic bit-flip
 *                fuzz sweep. Every corruption must be classified into
 *                the right LoadError, every accelerated run must
 *                degrade to rewarming with byte-identical results,
 *                and nothing may ever crash or silently load;
 *
 *   resume       a journaled sweep is SIGKILLed mid-run in a forked
 *                child; the parent resumes from the journal and must
 *                reproduce the uninterrupted run's results exactly,
 *                replaying at least one committed point.
 *
 * Exit status is non-zero when any gate fails, so CI can run this
 * binary directly. Under ctest the speedup gate is relaxed (other
 * tests steal cycles); the CI checkpoint job runs the full gate
 * serially.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "checkpoint/checkpoint.hh"
#include "checkpoint/journal.hh"
#include "checkpoint/store.hh"
#include "common/table.hh"
#include "harness/parallel_sweep.hh"
#include "harness/sweep_resume.hh"
#include "resume_util.hh"
#include "workloads/missrate.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One gate's verdict for the summary table. */
struct Gate
{
    std::string name;
    std::string detail;
    bool pass = false;
};

std::vector<Gate> gates;

void
gate(const std::string &name, bool pass, const std::string &detail)
{
    gates.push_back(Gate{name, detail, pass});
    if (!pass)
        std::cout << "FAIL: " << name << ": " << detail << "\n";
}

/** Scratch directory for stores and journals. */
std::string
makeScratchDir()
{
    char tmpl[] = "/tmp/mw-ckpt-torture-XXXXXX";
    const char *p = ::mkdtemp(tmpl);
    if (!p)
        MW_FATAL("cannot create scratch directory: ",
                 std::strerror(errno));
    return p;
}

/** Journal-encoding of one sampled measurement (the canonical
 *  byte-comparable form), with the acceleration bookkeeping masked
 *  so plain / cold / warm runs are comparable. */
std::vector<std::uint8_t>
measurementBytes(SampledWorkloadMissRates r)
{
    r.ckpt_restored_units = 0;
    r.ckpt_saved_units = 0;
    r.ckpt_degraded_units = 0;
    ckpt::Encoder e;
    encodeResult(e, r);
    return e.take();
}

std::uint64_t
hashBytes(const std::vector<std::uint8_t> &bytes,
          std::uint64_t h = ckpt::fnv_basis)
{
    return ckpt::fnv1a64(bytes.data(), bytes.size(), h);
}

// ---- determinism leg ---------------------------------------------------

/**
 * Sweep the workload set, returning each point's journal encoding in
 * index order. @p journal_path (optional) makes the sweep resumable;
 * @p kill_after_stores > 0 SIGKILLs the process from inside the
 * journal-store hook (child side of the resume leg).
 */
std::vector<std::vector<std::uint8_t>>
runSweep(const std::vector<const SpecWorkload *> &set,
         const MissRateParams &params, const SamplingPlan &plan,
         unsigned jobs, std::uint64_t seed,
         const std::string &journal_path = "",
         int kill_after_stores = 0)
{
    std::map<std::size_t, SampledWorkloadMissRates> results;
    ParallelSweep<SampledWorkloadMissRates> sweep(jobs, seed);
    ckpt::SweepJournal journal;
    int stores = 0;
    if (!journal_path.empty()) {
        benchutil::openJournal(journal, journal_path,
                               samplingPlanHash(plan));
        attachSweepJournal(
            sweep, journal,
            [&stores, kill_after_stores](
                ckpt::Encoder &e,
                const SampledWorkloadMissRates &r) {
                if (kill_after_stores > 0 &&
                    ++stores > kill_after_stores)
                    ::raise(SIGKILL);
                encodeResult(e, r);
            },
            [](ckpt::Decoder &d, SampledWorkloadMissRates &r) {
                return decodeResult(d, r);
            });
    }
    for (const SpecWorkload *w : set)
        sweep.submit(
            [w, &params, &plan](const PointContext &) {
                return measureMissRatesSampled(*w, params, plan);
            },
            [&results](const PointContext &ctx,
                       SampledWorkloadMissRates r) {
                results[ctx.index] = std::move(r);
            });
    sweep.finish();

    std::vector<std::vector<std::uint8_t>> bytes;
    for (std::size_t i = 0; i < set.size(); ++i)
        bytes.push_back(measurementBytes(results.at(i)));
    return bytes;
}

void
determinismLeg(const std::vector<const SpecWorkload *> &set,
               const MissRateParams &params,
               const SamplingPlan &plan,
               const benchutil::Options &opt)
{
    std::uint64_t parallel_hash = ckpt::fnv_basis;
    for (const auto &b :
         runSweep(set, params, plan, opt.jobs, opt.seed))
        parallel_hash = hashBytes(b, parallel_hash);
    std::uint64_t serial_hash = ckpt::fnv_basis;
    for (const auto &b : runSweep(set, params, plan, 1, opt.seed))
        serial_hash = hashBytes(b, serial_hash);

    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "golden hash %016llx (jobs=%u vs jobs=1)",
                  static_cast<unsigned long long>(parallel_hash),
                  opt.jobs);
    gate("determinism across --jobs", parallel_hash == serial_hash,
         detail);
}

// ---- speedup leg -------------------------------------------------------

void
speedupLeg(const std::vector<const SpecWorkload *> &set,
           const MissRateParams &params, const SamplingPlan &plan,
           const std::string &scratch, double min_speedup)
{
    const std::string dir = scratch + "/speedup";
    if (::mkdir(dir.c_str(), 0755) != 0)
        MW_FATAL("mkdir '", dir, "': ", std::strerror(errno));
    const auto store = benchutil::makeMissRateStore(dir, plan);

    double plain_s = 0.0, cold_s = 0.0, warm_s = 0.0;
    bool identical = true;
    std::uint64_t restored = 0, saved = 0;
    for (const SpecWorkload *w : set) {
        double t0 = nowSeconds();
        const auto plain = measureMissRatesSampled(*w, params, plan);
        plain_s += nowSeconds() - t0;

        t0 = nowSeconds();
        const auto cold =
            measureMissRatesSampled(*w, params, plan, store.get());
        cold_s += nowSeconds() - t0;

        t0 = nowSeconds();
        const auto warm =
            measureMissRatesSampled(*w, params, plan, store.get());
        warm_s += nowSeconds() - t0;

        restored += warm.ckpt_restored_units;
        saved += cold.ckpt_saved_units;
        identical = identical &&
                    measurementBytes(cold) ==
                        measurementBytes(plain) &&
                    measurementBytes(warm) ==
                        measurementBytes(plain);
    }

    gate("restore == rewarm (byte-identical)", identical,
         "plain vs cold-populating vs warm-restoring runs");
    const std::uint64_t expect_units =
        plan.units * static_cast<std::uint64_t>(set.size());
    char counts[96];
    std::snprintf(counts, sizeof(counts),
                  "saved=%llu restored=%llu of %llu units",
                  static_cast<unsigned long long>(saved),
                  static_cast<unsigned long long>(restored),
                  static_cast<unsigned long long>(expect_units));
    gate("all units saved and restored",
         saved == expect_units && restored == expect_units, counts);

    const double speedup = warm_s > 0.0 ? plain_s / warm_s : 0.0;
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%.1fx (plain %.3fs, warm %.3fs; gate %.1fx)",
                  speedup, plain_s, warm_s, min_speedup);
    gate("warm restore speedup", speedup >= min_speedup, detail);
}

// ---- corruption leg ----------------------------------------------------

using Mutator =
    bool (*)(std::vector<std::uint8_t> &bytes);

/** Patch the header CRC after a deliberate header edit, so the file
 *  stays internally consistent (honest skew, scrambled table). */
void
fixHeaderCrc(std::vector<std::uint8_t> &bytes)
{
    // section count at offset 16; table entries are 24 bytes.
    const std::uint32_t count = bytes[16] |
                                bytes[17] << 8 |
                                bytes[18] << 16 |
                                static_cast<std::uint32_t>(bytes[19])
                                    << 24;
    const std::size_t crc_off = 20 + count * 24;
    const std::uint32_t crc = ckpt::crc32(bytes.data(), crc_off);
    for (int i = 0; i < 4; ++i)
        bytes[crc_off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));
}

struct CorruptionCase
{
    const char *name;
    Mutator mutate;
    ckpt::LoadError expect;
};

const CorruptionCase corruption_cases[] = {
    {"empty file",
     [](std::vector<std::uint8_t> &b) {
         b.clear();
         return true;
     },
     ckpt::LoadError::Truncated},
    {"truncated header",
     [](std::vector<std::uint8_t> &b) {
         b.resize(12);
         return true;
     },
     ckpt::LoadError::Truncated},
    {"torn payload tail",
     [](std::vector<std::uint8_t> &b) {
         b.resize(b.size() - b.size() / 4);
         return true;
     },
     ckpt::LoadError::Truncated},
    {"bad magic",
     [](std::vector<std::uint8_t> &b) {
         b[0] ^= 0xff;
         return true;
     },
     ckpt::LoadError::BadMagic},
    {"version bit flip",
     [](std::vector<std::uint8_t> &b) {
         b[4] ^= 0x02;
         return true;
     },
     ckpt::LoadError::BadHeaderCrc},
    {"honest version skew",
     [](std::vector<std::uint8_t> &b) {
         b[4] += 1;
         fixHeaderCrc(b);
         return true;
     },
     ckpt::LoadError::BadVersion},
    {"section table bit flip",
     [](std::vector<std::uint8_t> &b) {
         b[20] ^= 0x10; // first table entry's id
         return true;
     },
     ckpt::LoadError::BadHeaderCrc},
    {"scrambled section table",
     [](std::vector<std::uint8_t> &b) {
         b[20 + 4] ^= 0x01; // first section's offset, CRC fixed
         fixHeaderCrc(b);
         return true;
     },
     ckpt::LoadError::Malformed},
    {"payload bit flip",
     [](std::vector<std::uint8_t> &b) {
         b[b.size() - 1] ^= 0x01;
         return true;
     },
     ckpt::LoadError::BadSectionCrc},
};

void
corruptionLeg(const SpecWorkload &w, const std::string &scratch,
              std::uint64_t seed, bool quick)
{
    // A small dedicated plan keeps each degraded re-run cheap; the
    // byte-equality gate is against this leg's own golden run.
    MissRateParams params;
    SamplingPlan plan;
    plan.scheme = SampleScheme::Stratified;
    plan.units = 4;
    plan.unit_refs = 200;
    plan.warmup_refs = 600;
    plan.seed = seed;
    plan.validate();

    const std::string dir = scratch + "/corrupt";
    if (::mkdir(dir.c_str(), 0755) != 0)
        MW_FATAL("mkdir '", dir, "': ", std::strerror(errno));
    const auto store = benchutil::makeMissRateStore(dir, plan);
    const auto golden =
        measurementBytes(measureMissRatesSampled(w, params, plan));
    measureMissRatesSampled(w, params, plan, store.get());

    const std::string victim = store->pathFor(w.name + "-u1");
    const auto pristine = ckpt::readFileBytes(victim);
    if (!pristine)
        MW_FATAL("cannot read populated checkpoint '", victim, "'");

    // Named cases: exact LoadError classification + graceful run.
    bool classified = true, degraded_ok = true;
    for (const CorruptionCase &c : corruption_cases) {
        std::vector<std::uint8_t> bytes = *pristine;
        c.mutate(bytes);
        std::string why;
        if (!ckpt::atomicWriteFile(victim, bytes.data(),
                                   bytes.size(), &why))
            MW_FATAL("cannot plant corruption: ", why);

        ckpt::CheckpointReader reader;
        const ckpt::LoadError e =
            reader.loadFile(victim, store->configHash());
        if (e != c.expect) {
            classified = false;
            std::cout << "  corruption '" << c.name
                      << "': classified as "
                      << ckpt::loadErrorName(e) << ", expected "
                      << ckpt::loadErrorName(c.expect) << "\n";
        }
        // The accelerated run must degrade that unit and still
        // produce the golden measurement.
        const auto run =
            measureMissRatesSampled(w, params, plan, store.get());
        if (run.ckpt_degraded_units < 1 ||
            measurementBytes(run) != golden) {
            degraded_ok = false;
            std::cout << "  corruption '" << c.name
                      << "': degradation did not preserve the "
                         "measurement\n";
        }
        // The degraded run rewrote the unit; restore the corrupt
        // file for independence of the next case.
    }
    gate("corruption classified correctly", classified,
         std::to_string(std::size(corruption_cases)) +
             " named cases");
    gate("corruption degrades gracefully", degraded_ok,
         "byte-identical after every rewarm");

    // Foreign configuration: same bytes, different expected hash.
    ckpt::atomicWriteFile(victim, pristine->data(),
                          pristine->size());
    ckpt::CheckpointStore foreign(dir, store->configHash() + 1);
    ckpt::CheckpointReader reader;
    gate("foreign config rejected",
         foreign.load(w.name + "-u1", reader) ==
             ckpt::LoadError::BadConfig,
         "config-hash mismatch never silently loads");

    // Deterministic bit-flip fuzz across the whole file. Every flip
    // must be either rejected by the container or caught by a
    // payload guard; the run must stay golden either way.
    const int flips = quick ? 48 : 192;
    bool fuzz_ok = true;
    std::uint64_t x = seed | 1;
    for (int i = 0; i < flips && fuzz_ok; ++i) {
        // xorshift64 positions, deterministic given the seed.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        std::vector<std::uint8_t> bytes = *pristine;
        const std::size_t bit = x % (bytes.size() * 8);
        bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ckpt::atomicWriteFile(victim, bytes.data(), bytes.size());
        const auto run =
            measureMissRatesSampled(w, params, plan, store.get());
        if (measurementBytes(run) != golden) {
            fuzz_ok = false;
            std::cout << "  fuzz flip of bit " << bit
                      << " changed the measurement\n";
        }
    }
    gate("bit-flip fuzz harmless", fuzz_ok,
         std::to_string(flips) + " single-bit flips");
}

// ---- kill-and-resume leg -----------------------------------------------

void
resumeLeg(const std::vector<const SpecWorkload *> &set,
          const MissRateParams &params, const SamplingPlan &plan,
          const std::string &scratch,
          const benchutil::Options &opt)
{
    const auto golden =
        runSweep(set, params, plan, opt.jobs, opt.seed);

    const std::string journal_path = scratch + "/resume.mwsj";
    const int kill_after = 2;

    const pid_t pid = ::fork();
    if (pid < 0)
        MW_FATAL("fork: ", std::strerror(errno));
    if (pid == 0) {
        // Child: run the journaled sweep serially and SIGKILL
        // ourselves from inside the journal hook mid-run.
        runSweep(set, params, plan, 1, opt.seed, journal_path,
                 kill_after);
        _exit(0); // not reached: the kill fires first
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        MW_FATAL("waitpid: ", std::strerror(errno));
    gate("child killed mid-sweep",
         WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
         "SIGKILL from inside the journal-store hook");

    // The journal must hold the committed prefix...
    std::size_t committed = 0;
    {
        ckpt::SweepJournal peek;
        if (peek.open(journal_path, samplingPlanHash(plan)))
            committed = peek.recovered();
    }
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "%zu committed point(s) survived the kill",
                  committed);
    gate("journal survived SIGKILL",
         committed == static_cast<std::size_t>(kill_after), detail);

    // ...and the resumed run (parallel, unlike the killed serial
    // child) must replay it and finish with the golden results.
    const auto resumed = runSweep(set, params, plan, opt.jobs,
                                  opt.seed, journal_path);
    gate("resumed run matches golden", resumed == golden,
         "byte-identical across kill/resume and --jobs");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, {"--min-speedup"});
    const double min_speedup =
        std::strtod(opt.extraOr("--min-speedup", "10").c_str(),
                    nullptr);
    benchutil::banner("Validation - checkpoint/restore torture",
                      opt);

    const std::string scratch = makeScratchDir();

    // Workload set: enough variety to exercise every generator
    // feature (lockstep groups, call targets, pointer chases).
    std::vector<const SpecWorkload *> set;
    for (const SpecWorkload &w : specSuite()) {
        set.push_back(&w);
        if (set.size() == (opt.quick ? 4u : 8u))
            break;
    }

    // Sweep-level plan (determinism + resume legs): small units so
    // the sweep itself is cheap.
    MissRateParams params;
    SamplingPlan sweep_plan;
    sweep_plan.scheme = SampleScheme::Stratified;
    sweep_plan.units = 6;
    sweep_plan.unit_refs = 400;
    sweep_plan.warmup_refs = 1'200;
    sweep_plan.seed = opt.seed;
    sweep_plan.validate();

    // Speedup-leg plan: warming dominates (W >> U), which is the
    // regime checkpoint acceleration targets — fig7/fig8's sampled
    // mode spends nearly all its time in functional warming.
    SamplingPlan speed_plan = sweep_plan;
    speed_plan.units = 8;
    speed_plan.unit_refs = 500;
    speed_plan.warmup_refs = opt.quick ? 150'000 : 400'000;

    determinismLeg(set, params, sweep_plan, opt);
    speedupLeg(set, params, speed_plan, scratch, min_speedup);
    corruptionLeg(*set.front(), scratch, opt.seed, opt.quick);
    resumeLeg(set, params, sweep_plan, scratch, opt);

    TextTable table("Checkpoint torture gates");
    table.setHeader({"gate", "detail", "status"});
    int failed = 0;
    for (const Gate &g : gates) {
        table.addRow({g.name, g.detail, g.pass ? "ok" : "FAIL"});
        if (!g.pass)
            ++failed;
    }
    table.print(std::cout);

    const std::string cleanup = "rm -rf '" + scratch + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());

    if (failed) {
        std::cout << "\n" << failed << " gate(s) FAILED\n";
        return 1;
    }
    std::cout << "\nall " << gates.size() << " gates passed\n";
    return 0;
}
