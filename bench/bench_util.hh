/**
 * @file
 * Shared plumbing for the table/figure regeneration binaries.
 *
 * Every bench accepts:
 *   --refs N     measured references per workload (default varies)
 *   --quick      cut the workload sizes ~10x for smoke runs
 *   --seed S     RNG seed
 */

#ifndef MEMWALL_BENCH_BENCH_UTIL_HH
#define MEMWALL_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace memwall::benchutil {

struct Options
{
    std::uint64_t refs = 0;  ///< 0 = use the bench's default
    bool quick = false;
    std::uint64_t seed = 42;
};

inline Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--refs") == 0 &&
                   i + 1 < argc) {
            opt.refs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--refs N] [--quick] [--seed S]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

inline void
banner(const std::string &what, const Options &opt)
{
    std::printf("================================================="
                "=============\n");
    std::printf("memwall reproduction: %s\n", what.c_str());
    std::printf("seed=%llu%s\n",
                static_cast<unsigned long long>(opt.seed),
                opt.quick ? "  (quick mode)" : "");
    std::printf("================================================="
                "=============\n\n");
}

} // namespace memwall::benchutil

#endif // MEMWALL_BENCH_BENCH_UTIL_HH
