/**
 * @file
 * Shared plumbing for the table/figure regeneration binaries.
 *
 * Every bench accepts:
 *   --refs N     measured references per workload (default varies)
 *   --quick      cut the workload sizes ~10x for smoke runs
 *   --seed S     RNG seed
 *   --jobs N     worker threads for the point sweep (default: one
 *                per hardware thread; 1 = serial reference run).
 *                Output is byte-identical for every N (see
 *                harness/parallel_sweep.hh).
 *   --format F   output format: "text" (default) or "json" for
 *                benches that support machine-readable results
 *                (e.g. validation_static_crosscheck per-kernel
 *                deltas).
 *
 * A bench may register additional value-taking flags (e.g.
 * `--reseeds 0,777,31415`) by passing them to parse(); their values
 * land in Options::extra keyed by flag name, and the comma-list
 * helpers below turn them into numbers.
 */

#ifndef MEMWALL_BENCH_BENCH_UTIL_HH
#define MEMWALL_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace memwall::benchutil {

/** Default for --jobs: one worker per hardware thread, at least 1. */
inline unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

struct Options
{
    std::uint64_t refs = 0;  ///< 0 = use the bench's default
    bool quick = false;
    std::uint64_t seed = 42;
    /** Sweep worker threads; 1 runs points serially inline. */
    unsigned jobs = defaultJobs();
    /** Output format: "text" or "json". */
    std::string format = "text";

    bool json() const { return format == "json"; }
    /** Values of the bench's registered extra flags, keyed by the
     * flag spelled with its dashes (e.g. "--reseeds"). */
    std::map<std::string, std::string> extra;

    /** Value of extra flag @p flag, or @p fallback if not given. */
    std::string
    extraOr(const std::string &flag,
            const std::string &fallback) const
    {
        auto it = extra.find(flag);
        return it != extra.end() ? it->second : fallback;
    }
};

inline void
printUsage(const char *prog,
           std::initializer_list<const char *> extra_flags)
{
    std::fprintf(stderr,
                 "usage: %s [--refs N] [--quick] [--seed S] "
                 "[--jobs N] [--format text|json]",
                 prog);
    for (const char *flag : extra_flags)
        std::fprintf(stderr, " [%s V[,V...]]", flag);
    std::fprintf(stderr, "\n");
}

[[noreturn]] inline void
usageError(const char *prog,
           std::initializer_list<const char *> extra_flags,
           const std::string &why)
{
    std::fprintf(stderr, "error: %s\n", why.c_str());
    printUsage(prog, extra_flags);
    std::exit(2);
}

/**
 * Parse the whole of @p text as an unsigned integer (base prefixes
 * honoured); reject empty, trailing junk and overflow with an error
 * naming @p flag rather than silently falling back to a default.
 */
inline std::uint64_t
parseU64Flag(const char *text, const char *flag, const char *prog,
             std::initializer_list<const char *> extra_flags)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' || errno == ERANGE)
        usageError(prog, extra_flags,
                   std::string("invalid value '") + text + "' for " +
                       flag);
    return value;
}

inline Options
parse(int argc, char **argv,
      std::initializer_list<const char *> extra_flags = {})
{
    Options opt;
    const char *prog = argv[0];
    // A value-taking flag in final position has no value: report it
    // by name instead of the generic usage line.
    auto value_of = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usageError(prog, extra_flags,
                       std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
            continue;
        }
        if (std::strcmp(argv[i], "--refs") == 0) {
            opt.refs = parseU64Flag(value_of(i), "--refs", prog,
                                    extra_flags);
            continue;
        }
        if (std::strcmp(argv[i], "--seed") == 0) {
            opt.seed = parseU64Flag(value_of(i), "--seed", prog,
                                    extra_flags);
            continue;
        }
        if (std::strcmp(argv[i], "--format") == 0) {
            opt.format = value_of(i);
            if (opt.format != "text" && opt.format != "json")
                usageError(prog, extra_flags,
                           std::string("invalid value '") +
                               opt.format + "' for --format");
            continue;
        }
        if (std::strcmp(argv[i], "--jobs") == 0) {
            const std::uint64_t jobs =
                parseU64Flag(value_of(i), "--jobs", prog,
                             extra_flags);
            // 0 = auto-detect, same as omitting the flag.
            opt.jobs = jobs ? static_cast<unsigned>(jobs)
                            : defaultJobs();
            continue;
        }
        bool matched = false;
        for (const char *flag : extra_flags) {
            if (std::strcmp(argv[i], flag) == 0) {
                opt.extra[flag] = value_of(i);
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        usageError(prog, extra_flags,
                   std::string("unknown flag '") + argv[i] + "'");
    }
    return opt;
}

/**
 * Validate the --ckpt-dir flag value: non-empty, a directory
 * (created if missing) and writable. Anything else is a usage error
 * (exit 2) naming the path and the errno — a typo must never
 * silently disable checkpoint acceleration or scatter files into an
 * unintended place. Returns "" when the flag was not given.
 */
inline std::string
checkpointDirFlag(const Options &opt, const char *prog,
                  std::initializer_list<const char *> extra_flags)
{
    const std::string dir = opt.extraOr("--ckpt-dir", "");
    if (opt.extra.find("--ckpt-dir") == opt.extra.end())
        return "";
    if (dir.empty())
        usageError(prog, extra_flags, "--ckpt-dir: empty path");
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0) {
        if (errno != ENOENT)
            usageError(prog, extra_flags,
                       "--ckpt-dir: cannot stat '" + dir +
                           "': " + std::strerror(errno));
        if (::mkdir(dir.c_str(), 0755) != 0)
            usageError(prog, extra_flags,
                       "--ckpt-dir: cannot create '" + dir +
                           "': " + std::strerror(errno));
    } else if (!S_ISDIR(st.st_mode)) {
        usageError(prog, extra_flags,
                   "--ckpt-dir: '" + dir + "' is not a directory");
    }
    if (::access(dir.c_str(), W_OK | X_OK) != 0)
        usageError(prog, extra_flags,
                   "--ckpt-dir: '" + dir +
                       "' is not writable: " + std::strerror(errno));
    return dir;
}

/**
 * Validate the --resume flag value (sweep-journal path): non-empty;
 * an existing path must be a regular file, and the containing
 * directory must be writable so the journal can be created and
 * fsynced. Usage error (exit 2) otherwise. Returns "" when the flag
 * was not given.
 */
inline std::string
resumePathFlag(const Options &opt, const char *prog,
               std::initializer_list<const char *> extra_flags)
{
    const std::string path = opt.extraOr("--resume", "");
    if (opt.extra.find("--resume") == opt.extra.end())
        return "";
    if (path.empty())
        usageError(prog, extra_flags, "--resume: empty path");
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
        if (!S_ISREG(st.st_mode))
            usageError(prog, extra_flags,
                       "--resume: '" + path +
                           "' is not a regular file");
    } else if (errno != ENOENT) {
        usageError(prog, extra_flags,
                   "--resume: cannot stat '" + path +
                       "': " + std::strerror(errno));
    }
    const std::size_t slash = path.find_last_of('/');
    const std::string parent = slash == std::string::npos
        ? std::string(".")
        : (slash == 0 ? std::string("/") : path.substr(0, slash));
    if (::access(parent.c_str(), W_OK | X_OK) != 0)
        usageError(prog, extra_flags,
                   "--resume: directory '" + parent +
                       "' is not writable: " + std::strerror(errno));
    return path;
}

/** Split @p list on commas ("1,2,3" -> {"1","2","3"}). */
inline std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(list.substr(start));
            break;
        }
        out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Parse a comma-separated list of unsigned integers. */
inline std::vector<std::uint64_t>
parseU64List(const std::string &list)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : splitList(list))
        out.push_back(std::strtoull(item.c_str(), nullptr, 0));
    return out;
}

/** Parse a comma-separated list of doubles ("0,1e-6,5e-5"). */
inline std::vector<double>
parseDoubleList(const std::string &list)
{
    std::vector<double> out;
    for (const std::string &item : splitList(list))
        out.push_back(std::strtod(item.c_str(), nullptr));
    return out;
}

inline void
banner(const std::string &what, const Options &opt)
{
    std::printf("================================================="
                "=============\n");
    std::printf("memwall reproduction: %s\n", what.c_str());
    std::printf("seed=%llu%s\n",
                static_cast<unsigned long long>(opt.seed),
                opt.quick ? "  (quick mode)" : "");
    std::printf("================================================="
                "=============\n\n");
}

} // namespace memwall::benchutil

#endif // MEMWALL_BENCH_BENCH_UTIL_HH
