/**
 * @file
 * Tests for the CC-NUMA machine models: protocol transitions,
 * Table 6 latencies, victim-cache staging, first-touch placement.
 */

#include <gtest/gtest.h>

#include "coherence/numa.hh"

using namespace memwall;

namespace {

NumaConfig
integrated(unsigned nodes = 4, bool victim = true)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = NodeArch::Integrated;
    c.victim_cache = victim;
    return c;
}

NumaConfig
reference(unsigned nodes = 4)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = NodeArch::ReferenceCcNuma;
    return c;
}

} // namespace

TEST(Numa, FirstTouchAssignsHome)
{
    NumaMachine m(integrated());
    m.access(2, 0x100000, false);
    EXPECT_EQ(m.homeOf(0x100000), 2u);
    // Same page, any other toucher: home is fixed.
    m.access(3, 0x100800, false);
    EXPECT_EQ(m.homeOf(0x100800), 2u);
}

TEST(Numa, InterleavedPlacementWhenDisabled)
{
    NumaConfig c = integrated(4);
    c.first_touch = false;
    NumaMachine m(c);
    m.access(0, 0x0, false);
    EXPECT_EQ(m.homeOf(0x0), 0u);
    EXPECT_EQ(m.homeOf(0x1000), 1u);
    EXPECT_EQ(m.homeOf(0x2000), 2u);
    EXPECT_EQ(m.homeOf(0x4000), 0u);
}

TEST(Numa, LocalColdMissCostsLocalMemory)
{
    NumaMachine m(integrated());
    const Cycles lat = m.access(0, 0x1000, false);
    EXPECT_EQ(lat, 6u);  // Table 6: local memory
    EXPECT_EQ(m.lastService(), ServiceLevel::LocalMemory);
}

TEST(Numa, LocalReuseHitsColumnBuffer)
{
    NumaMachine m(integrated());
    m.access(0, 0x1000, false);
    const Cycles lat = m.access(0, 0x1000, false);
    EXPECT_EQ(lat, 1u);
    EXPECT_EQ(m.lastService(), ServiceLevel::CacheHit);
}

TEST(Numa, ColumnPrefetchServesNeighbours)
{
    // The 512-byte column fill makes the neighbouring blocks of the
    // same column 1-cycle hits — the long-line prefetch effect.
    NumaMachine m(integrated());
    m.access(0, 0x1000, false);
    EXPECT_EQ(m.access(0, 0x1040, false), 1u);
    EXPECT_EQ(m.access(0, 0x11ff, false), 1u);
}

TEST(Numa, RemoteColdLoadCosts80)
{
    NumaMachine m(integrated());
    m.access(1, 0x200000, false);  // node 1 first-touches: home 1
    const Cycles lat = m.access(0, 0x200000, false);
    EXPECT_EQ(lat, 80u);
    EXPECT_EQ(m.lastService(), ServiceLevel::Remote);
}

TEST(Numa, ImportedBlockHitsVictimCacheThenInc)
{
    NumaMachine m(integrated());
    m.access(1, 0x200000, false);
    m.access(0, 0x200000, false);  // import, staged in VC
    // Immediate reuse: 1-cycle VC hit.
    EXPECT_EQ(m.access(0, 0x200000, false), 1u);
    EXPECT_EQ(m.lastService(), ServiceLevel::CacheHit);
    // Push 16 other blocks through the victim cache to evict it.
    for (unsigned i = 1; i <= 16; ++i)
        m.access(0, 0x200000 + i * 32ull, false);
    // Now it falls back to the INC at 6+1 cycles.
    const Cycles lat = m.access(0, 0x200000, false);
    EXPECT_EQ(lat, 7u);
    EXPECT_EQ(m.lastService(), ServiceLevel::IncHit);
}

TEST(Numa, WithoutVictimCacheRemoteReuseGoesToInc)
{
    NumaMachine m(integrated(4, /*victim=*/false));
    m.access(1, 0x200000, false);
    m.access(0, 0x200000, false);
    const Cycles lat = m.access(0, 0x200000, false);
    EXPECT_EQ(lat, 7u);  // INC data + tag check
    EXPECT_EQ(m.lastService(), ServiceLevel::IncHit);
}

TEST(Numa, StoreToSharedInvalidates)
{
    NumaMachine m(integrated());
    m.access(0, 0x100000, false);  // home 0, shared by 0
    m.access(1, 0x100000, false);  // shared by 1 too
    const Cycles lat = m.access(0, 0x100000, true);
    EXPECT_EQ(lat, 80u);  // invalidation round trip
    EXPECT_EQ(m.lastService(), ServiceLevel::Invalidation);
    // Node 1's copy is gone: its next read re-imports.
    const Cycles lat1 = m.access(1, 0x100000, false);
    EXPECT_EQ(lat1, 80u);
}

TEST(Numa, OwnerStoresHitAfterUpgrade)
{
    NumaMachine m(integrated());
    m.access(0, 0x100000, true);  // local store: M(0)
    EXPECT_EQ(m.access(0, 0x100000, true), 1u);
    EXPECT_EQ(m.access(0, 0x100008, true), 1u);  // same block
}

TEST(Numa, LoadFromDirtyRemoteDowngrades)
{
    NumaMachine m(integrated());
    m.access(0, 0x100000, true);  // M(0), home 0
    const Cycles lat = m.access(1, 0x100000, false);
    EXPECT_EQ(lat, 80u);  // fetched through the owner
    // The owner keeps a shared copy: its reload is cheap.
    EXPECT_EQ(m.access(0, 0x100000, false), 1u);
    // A new store by node 0 needs invalidation again.
    EXPECT_EQ(m.access(0, 0x100000, true), 80u);
}

TEST(Numa, ReferenceFlcHitsAfterImport)
{
    NumaMachine m(reference());
    m.access(1, 0x300000, false);
    m.access(0, 0x300000, false);  // remote 80, fills FLC
    EXPECT_EQ(m.access(0, 0x300000, false), 1u);
}

TEST(Numa, ReferenceInfiniteSlcAbsorbsCapacity)
{
    NumaMachine m(reference());
    // Stream far beyond the 16 KB FLC, all local.
    for (Addr a = 0; a < 64 * KiB; a += 32)
        m.access(0, 0x400000 + a, false);
    // The first line was evicted from the FLC but the infinite SLC
    // still has it: 6 cycles, not 80.
    const Cycles lat = m.access(0, 0x400000, false);
    EXPECT_EQ(lat, 6u);
    EXPECT_EQ(m.lastService(), ServiceLevel::LocalMemory);
}

TEST(Numa, InvalidationRemovesFromSlcToo)
{
    NumaMachine m(reference());
    m.access(0, 0x500000, false);
    m.access(1, 0x500000, false);
    m.access(1, 0x500000, true);  // invalidates node 0
    const Cycles lat = m.access(0, 0x500000, false);
    EXPECT_EQ(lat, 80u);  // gone from FLC and SLC
}

TEST(Numa, ColumnInvalidationDropsWholeColumn)
{
    // Integrated long-line cost: invalidating one 32-byte block
    // kills the surrounding 512-byte column (Section 6.2).
    NumaMachine m(integrated());
    m.access(0, 0x100000, false);
    EXPECT_EQ(m.access(0, 0x100040, false), 1u);  // same column
    m.access(1, 0x100000, true);  // invalidates node 0's column
    const Cycles lat = m.access(0, 0x100040, false);
    EXPECT_GT(lat, 1u);
}

TEST(Numa, StatsAccumulate)
{
    NumaMachine m(integrated());
    m.access(0, 0x100000, false);
    m.access(0, 0x100000, false);
    m.access(1, 0x100000, false);
    EXPECT_EQ(m.totalAccesses(), 3u);
    EXPECT_EQ(m.nodeStats(0).total.value(), 2u);
    EXPECT_EQ(m.nodeStats(1).total.value(), 1u);
    EXPECT_EQ(m.totalRemoteLoads(), 1u);
}

TEST(Numa, SixteenNodesSupported)
{
    NumaMachine m(integrated(16));
    for (unsigned cpu = 0; cpu < 16; ++cpu)
        m.access(cpu, 0x600000 + cpu * 0x10000ull, false);
    EXPECT_EQ(m.totalAccesses(), 16u);
}

TEST(NumaDeath, RejectsSeventeenNodes)
{
    NumaConfig c = integrated(17);
    EXPECT_DEATH(NumaMachine m(c), "director");
}

TEST(Numa, BroadcastInvalidationAfterOverflow)
{
    NumaMachine m(integrated(8));
    // Five sharers overflow the 3-pointer directory.
    m.access(0, 0x700000, false);
    for (unsigned cpu = 1; cpu < 5; ++cpu)
        m.access(cpu, 0x700000, false);
    // A store must now broadcast; every other copy dies.
    m.access(7, 0x700000, true);
    for (unsigned cpu = 0; cpu < 5; ++cpu) {
        const Cycles lat = m.access(cpu, 0x700000, false);
        EXPECT_EQ(lat, 80u) << "cpu " << cpu;
    }
}

// ---- Simple-COMA mode (Section 4.2 / reference [21]) -----------------

namespace {

NumaConfig
scoma(unsigned nodes = 4)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = NodeArch::SimpleComa;
    // Disable the victim cache so the attraction-memory paths are
    // observable (otherwise the VC catches evicted blocks at 1
    // cycle, which is correct but hides the 6-cycle path).
    c.victim_cache = false;
    return c;
}

} // namespace

TEST(SimpleComa, FirstRemoteTouchReplicatesThenLocal)
{
    NumaMachine m(scoma());
    m.access(1, 0x200000, false);  // node 1 first-touch (home 1)
    // Node 0's first access: fabric fetch + replication.
    EXPECT_EQ(m.access(0, 0x200000, false), 80u);
    // Column hit right after.
    EXPECT_EQ(m.access(0, 0x200000, false), 1u);
    // Push the column out with conflicting local columns; the block
    // is still in node 0's attraction memory: 6 cycles, NOT remote.
    for (int i = 1; i <= 4; ++i)
        m.access(0, 0x200000 + i * 0x2000ull, false);
    const Cycles lat = m.access(0, 0x200000, false);
    EXPECT_EQ(lat, 6u);
    EXPECT_EQ(m.lastService(), ServiceLevel::LocalMemory);
}

TEST(SimpleComa, ComparedToIncForRemoteReuse)
{
    // The headline S-COMA advantage: re-used remote data costs a
    // local access (6) instead of an INC lookup (7) or a remote
    // reload, without depending on INC capacity.
    NumaMachine ccnuma(integrated(2, /*victim=*/false));
    NumaMachine sc(scoma(2));
    for (NumaMachine *m : {&ccnuma, &sc})
        m->access(1, 0x300000, false);  // home at node 1
    ccnuma.access(0, 0x300000, false);
    sc.access(0, 0x300000, false);
    // Evict from columns in both (conflicting local fills).
    for (int i = 1; i <= 4; ++i) {
        ccnuma.access(0, 0x300000 + i * 0x2000ull, false);
        sc.access(0, 0x300000 + i * 0x2000ull, false);
    }
    const Cycles inc_cost = ccnuma.access(0, 0x300000, false);
    const Cycles scoma_cost = sc.access(0, 0x300000, false);
    EXPECT_EQ(inc_cost, 7u);   // INC data + tag check
    EXPECT_EQ(scoma_cost, 6u); // plain local DRAM access
}

TEST(SimpleComa, InvalidationEvictsReplica)
{
    NumaMachine m(scoma());
    m.access(1, 0x400000, false);
    m.access(0, 0x400000, false);  // replicate at node 0
    m.access(1, 0x400000, true);   // writer invalidates node 0
    // Node 0 must re-fetch across the fabric.
    EXPECT_EQ(m.access(0, 0x400000, false), 80u);
}

TEST(SimpleComa, StoresFollowSameProtocol)
{
    NumaMachine m(scoma());
    m.access(0, 0x500000, true);  // local store, M(0)
    EXPECT_EQ(m.access(0, 0x500000, true), 1u);
    m.access(1, 0x500000, false);  // downgrade + replicate at 1
    EXPECT_EQ(m.access(0, 0x500000, true), 80u);  // invalidate 1
    EXPECT_EQ(m.access(1, 0x500000, false), 80u); // gone at 1
}

TEST(SimpleComa, PagesGetPerNodeFrames)
{
    // Two nodes replicating the same pages must not alias each
    // other's cache views (frames are per node).
    NumaMachine m(scoma(2));
    m.access(0, 0xa00000, false);
    m.access(1, 0xa00000, false);
    m.access(0, 0xa00000, false);
    m.access(1, 0xa00000, false);
    EXPECT_EQ(m.access(0, 0xa00000, false), 1u);
    EXPECT_EQ(m.access(1, 0xa00000, false), 1u);
}

TEST(SimpleComa, SiblingBlocksSurviveRemoteInvalidation)
{
    // Invalidating one block of a replicated attraction page must
    // not take out the rest of the page: only the victim's column
    // is dropped (512-byte columns keep no holes) and only the
    // victim leaves the attraction memory.
    NumaMachine m(scoma());
    m.access(1, 0x600000, false);  // home 1
    m.access(1, 0x600200, false);  // same page, different column
    m.access(0, 0x600000, false);  // replicate page at node 0
    m.access(0, 0x600200, false);
    m.access(1, 0x600000, true);   // invalidate node 0's copy
    // The sibling column was untouched by the invalidation.
    EXPECT_EQ(m.access(0, 0x600200, false), 1u);
    // The invalidated block needs a full refetch.
    EXPECT_EQ(m.access(0, 0x600000, false), 80u);
    // Push the sibling's column out: the replicated page frame
    // still serves it from local DRAM at 6 cycles.
    for (int i = 1; i <= 4; ++i)
        m.access(0, 0x600200 + i * 0x2000ull, false);
    const Cycles sibling = m.access(0, 0x600200, false);
    EXPECT_EQ(sibling, 6u);
    EXPECT_EQ(m.lastService(), ServiceLevel::LocalMemory);
}

TEST(SimpleComa, DirtyReplicaRefetchKeepsOwnership)
{
    // A dirty block falling out of the column buffers is still in
    // the node's attraction memory with ownership retained: the
    // refetch is a 6-cycle local DRAM access, not an 80-cycle
    // coherence transaction.
    NumaMachine m(scoma());
    m.access(1, 0x700000, false);  // home 1
    m.access(0, 0x700000, true);   // node 0 takes M(0); replica dirty
    for (int i = 1; i <= 4; ++i)   // push the column out
        m.access(0, 0x700000 + i * 0x2000ull, false);
    EXPECT_EQ(m.access(0, 0x700000, true), 6u);
    EXPECT_EQ(m.lastService(), ServiceLevel::LocalMemory);
    EXPECT_EQ(m.access(0, 0x700000, true), 1u);  // back in columns
}

TEST(SimpleComa, VictimCacheCatchesEvictedReplica)
{
    // With the victim cache enabled, a replica evicted from the
    // columns is staged there and re-hits at 1 cycle instead of
    // paying the 6-cycle attraction-memory path.
    NumaConfig c = scoma();
    c.victim_cache = true;
    NumaMachine m(c);
    m.access(1, 0x800000, false);
    m.access(0, 0x800000, false);  // replicate at node 0
    for (int i = 1; i <= 4; ++i)
        m.access(0, 0x800000 + i * 0x2000ull, false);
    EXPECT_EQ(m.access(0, 0x800000, false), 1u);
    EXPECT_EQ(m.lastService(), ServiceLevel::CacheHit);
}

TEST(Numa, InvalidationClearsVictimAndIncStaging)
{
    // An imported block lives in both the victim cache (staged) and
    // the INC; a remote invalidation must clear every level so the
    // next access pays the full remote fetch, never serving stale
    // data from a staging structure.
    NumaMachine m(integrated());
    m.access(1, 0x900000, false);  // home 1
    m.access(0, 0x900000, false);  // import: INC + VC staged
    EXPECT_EQ(m.access(0, 0x900000, false), 1u);  // VC hit
    m.access(1, 0x900000, true);   // invalidates node 0 everywhere
    const Cycles lat = m.access(0, 0x900000, false);
    EXPECT_EQ(lat, 80u);
    EXPECT_EQ(m.lastService(), ServiceLevel::Remote);
}

// ---- Fabric-contention mode -------------------------------------------

TEST(FabricContention, UnloadedMatchesTable6)
{
    NumaConfig c = integrated();
    c.model_fabric_contention = true;
    NumaMachine m(c);
    m.access(1, 0x200000, false, 0);
    // A single unloaded remote load still costs the Table 6 floor
    // (the serial links are faster than 80 cycles when idle).
    const Cycles lat = m.access(0, 0x200000, false, 1000);
    EXPECT_EQ(lat, 80u);
}

TEST(FabricContention, HotHomeEngineQueues)
{
    NumaConfig c = integrated(8);
    c.model_fabric_contention = true;
    NumaMachine m(c);
    // Node 7 owns a hot page.
    m.access(7, 0x700000, false, 0);
    // Seven other nodes storm it at the same instant: later
    // requests queue at node 7's protocol engine and exceed 80.
    Cycles max_lat = 0;
    for (unsigned cpu = 0; cpu < 7; ++cpu)
        max_lat = std::max(
            max_lat, m.access(cpu, 0x700000 + cpu * 32ull, false,
                              1000));
    EXPECT_GT(max_lat, 80u);
}

TEST(FabricContention, DisabledModeIgnoresTime)
{
    NumaMachine a(integrated());
    NumaMachine b(integrated());
    a.access(1, 0x200000, false, 0);
    b.access(1, 0x200000, false, 12345);
    EXPECT_EQ(a.access(0, 0x200000, false, 0),
              b.access(0, 0x200000, false, 99999));
}
