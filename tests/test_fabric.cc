/**
 * @file
 * Tests for the serial links and the point-to-point fabric
 * (Section 4.2).
 */

#include <gtest/gtest.h>

#include "interconnect/fabric.hh"

using namespace memwall;

TEST(LinkConfig, SerialisationMath)
{
    LinkConfig c;  // 2.5 Gbit/s, 200 MHz
    // 40 bytes = 320 bits -> 128 ns -> 25.6 -> 26 cycles.
    EXPECT_EQ(c.serialisationCycles(40), 26u);
    // 8 bytes = 64 bits -> 25.6 ns -> 5.12 -> 6 cycles.
    EXPECT_EQ(c.serialisationCycles(8), 6u);
}

TEST(SerialLink, UnloadedDelivery)
{
    SerialLink link;
    const Tick arrival = link.send(100, 8);
    // serialisation (6) + flight (10).
    EXPECT_EQ(arrival, 116u);
    EXPECT_EQ(link.queuedCycles(), 0u);
}

TEST(SerialLink, BackToBackQueues)
{
    SerialLink link;
    link.send(0, 40);  // occupies the link for 26 cycles
    const Tick arrival = link.send(0, 40);
    EXPECT_EQ(arrival, 26u + 26u + 10u);
    EXPECT_EQ(link.queuedCycles(), 26u);
}

TEST(SerialLink, StatsAccumulate)
{
    SerialLink link;
    link.send(0, 8);
    link.send(100, 40);
    EXPECT_EQ(link.messages(), 2u);
    EXPECT_EQ(link.bytesSent(), 48u);
    link.resetStats();
    EXPECT_EQ(link.messages(), 0u);
}

TEST(SerialLink, ZeroByteSendIsADoorbellPulse)
{
    // Documented boundary case: 0 bytes charges flight latency only,
    // occupies the link for zero cycles, and counts as a message.
    SerialLink link;
    const Tick arrival = link.send(100, 0);
    EXPECT_EQ(arrival, 110u);  // flight (10) only
    EXPECT_EQ(link.freeAt(), 100u);  // zero occupancy
    EXPECT_EQ(link.messages(), 1u);
    EXPECT_EQ(link.bytesSent(), 0u);
    EXPECT_EQ(link.queuedCycles(), 0u);
    // The next message starts in the same cycle, unqueued.
    EXPECT_EQ(link.send(100, 8), 116u);
    EXPECT_EQ(link.queuedCycles(), 0u);
}

TEST(SerialLink, ZeroByteSendStillQueuesBehindTraffic)
{
    SerialLink link;
    link.send(0, 40);  // occupies the link until cycle 26
    const Tick arrival = link.send(0, 0);
    // Waits out the 26 busy cycles, then flight only.
    EXPECT_EQ(arrival, 36u);
    EXPECT_EQ(link.queuedCycles(), 26u);
    EXPECT_EQ(link.freeAt(), 26u);  // the pulse added no occupancy
}

TEST(SerialLink, QueueingStatAccumulatesAcrossBackToBackSends)
{
    SerialLink link;
    link.send(0, 40);  // busy [0, 26)
    link.send(0, 40);  // queued 26, busy [26, 52)
    link.send(0, 8);   // queued 52, busy [52, 58)
    EXPECT_EQ(link.queuedCycles(), 26u + 52u);
    EXPECT_EQ(link.messages(), 3u);
    EXPECT_EQ(link.bytesSent(), 88u);
    // A later send that misses the busy window queues nothing more.
    link.send(200, 8);
    EXPECT_EQ(link.queuedCycles(), 26u + 52u);
}

TEST(MessageBytes, HeadersAndPayloads)
{
    EXPECT_EQ(messageBytes(MsgType::ReadRequest), 8u);
    EXPECT_EQ(messageBytes(MsgType::ReadReply), 40u);
    EXPECT_EQ(messageBytes(MsgType::WritebackData), 40u);
    EXPECT_EQ(messageBytes(MsgType::Invalidate), 8u);
}

TEST(Fabric, LocalDeliveryIsFree)
{
    Fabric fabric(4);
    EXPECT_EQ(fabric.send(42, 1, 1, MsgType::ReadRequest), 42u);
    EXPECT_EQ(fabric.totalMessages(), 0u);
}

TEST(Fabric, RemoteDeliveryChargesLink)
{
    Fabric fabric(4);
    const Tick arrival = fabric.send(0, 0, 3, MsgType::ReadRequest);
    EXPECT_EQ(arrival, 16u);  // 6 serialisation + 10 flight
    EXPECT_EQ(fabric.totalMessages(), 1u);
    EXPECT_EQ(fabric.totalBytes(), 8u);
}

TEST(Fabric, FourLinksLoadBalance)
{
    Fabric fabric(2);
    // Four simultaneous sends use the four links without queueing.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(fabric.send(0, 0, 1, MsgType::ReadReply), 36u)
            << i;  // 26 serialisation (40B) + 10 flight
    // The fifth queues behind the least-loaded link.
    EXPECT_GT(fabric.send(0, 0, 1, MsgType::ReadReply), 36u);
}

TEST(Fabric, UnloadedLatencyBelow200ns)
{
    // The paper: remote memory latencies "below 200 ns" (40 cycles
    // at 200 MHz). A request/reply pair through the unloaded fabric
    // must fit comfortably.
    Fabric fabric(16);
    const Cycles round_trip =
        fabric.unloadedLatency(MsgType::ReadRequest) +
        fabric.unloadedLatency(MsgType::ReadReply);
    EXPECT_LT(round_trip, 80u);
}

TEST(FabricDeath, RejectsBadEndpoints)
{
    Fabric fabric(2);
    EXPECT_DEATH(fabric.send(0, 0, 5, MsgType::ReadRequest),
                 "endpoint");
}

TEST(Fabric, ResetStatsClears)
{
    Fabric fabric(2);
    fabric.send(0, 0, 1, MsgType::ReadRequest);
    fabric.resetStats();
    EXPECT_EQ(fabric.totalMessages(), 0u);
    EXPECT_EQ(fabric.totalBytes(), 0u);
}
