/**
 * @file
 * Tests for trace capture/replay and the MWTR file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/trace_file.hh"

using namespace memwall;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

TraceBuffer
sampleTrace()
{
    TraceBuffer t;
    t.record(MemRef::fetch(0x1000));
    t.record(MemRef::load(0x1000, 0xdeadbeef, 8));
    t.record(MemRef::store(0x1004, 0x12345678, 2));
    return t;
}

} // namespace

TEST(TraceBuffer, RecordAndReplay)
{
    TraceBuffer t = sampleTrace();
    EXPECT_EQ(t.size(), 3u);
    std::vector<MemRef> out;
    t.generate(10, [&](const MemRef &r) { out.push_back(r); });
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], MemRef::fetch(0x1000));
    EXPECT_EQ(out[1].addr, 0xdeadbeefu);
    EXPECT_EQ(out[2].type, RefType::Store);
}

TEST(TraceBuffer, GenerateRespectsLimitAndPosition)
{
    TraceBuffer t = sampleTrace();
    std::vector<MemRef> out;
    EXPECT_EQ(t.generate(2, [&](const MemRef &r) {
        out.push_back(r);
    }),
              2u);
    EXPECT_EQ(t.generate(10, [&](const MemRef &r) {
        out.push_back(r);
    }),
              1u);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(t.generate(10, [&](const MemRef &) {}), 0u);
    t.reset();
    EXPECT_EQ(t.generate(10, [&](const MemRef &) {}), 3u);
}

TEST(TraceBuffer, SinkRecords)
{
    TraceBuffer t;
    const RefSink sink = t.sink();
    sink(MemRef::fetch(0x42));
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].pc, 0x42u);
}

TEST(TraceFile, SaveLoadRoundTrip)
{
    const std::string path = tempPath("roundtrip.mwtr");
    TraceBuffer t = sampleTrace();
    ASSERT_TRUE(t.save(path));

    TraceBuffer loaded;
    ASSERT_TRUE(loaded.load(path));
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(loaded[i], t[i]);
    std::remove(path.c_str());
}

TEST(TraceFile, LoadRejectsGarbage)
{
    const std::string path = tempPath("garbage.mwtr");
    {
        std::ofstream os(path, std::ios::binary);
        os << "this is not a trace file at all";
    }
    TraceBuffer t;
    EXPECT_FALSE(t.load(path));
    std::remove(path.c_str());
}

TEST(TraceFile, LoadRejectsTruncated)
{
    const std::string path = tempPath("trunc.mwtr");
    TraceBuffer t = sampleTrace();
    ASSERT_TRUE(t.save(path));
    // Truncate mid-record.
    {
        std::ifstream is(path, std::ios::binary);
        std::string all((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(all.data(),
                 static_cast<std::streamsize>(all.size() - 10));
    }
    TraceBuffer loaded;
    EXPECT_FALSE(loaded.load(path));
    std::remove(path.c_str());
}

TEST(TraceFile, LoadMissingFileFails)
{
    TraceBuffer t;
    EXPECT_FALSE(t.load(tempPath("does-not-exist.mwtr")));
}

TEST(TraceFile, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.mwtr");
    TraceBuffer t;
    ASSERT_TRUE(t.save(path));
    TraceBuffer loaded;
    loaded.record(MemRef::fetch(1));  // must be replaced by load()
    ASSERT_TRUE(loaded.load(path));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceBuffer, ClearEmpties)
{
    TraceBuffer t = sampleTrace();
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.generate(5, [](const MemRef &) {}), 0u);
}
