/**
 * @file
 * Tests for the multi-bank DRAM timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace memwall;

TEST(DramConfig, DefaultsMatchPaper)
{
    DramConfig c;
    EXPECT_EQ(c.banks, 16u);
    EXPECT_EQ(c.column_bytes, 512u);
    EXPECT_EQ(c.access_cycles, 6u);   // 30 ns at 200 MHz
    EXPECT_EQ(c.capacity, 32 * MiB);  // 256 Mbit
}

TEST(DramConfigDeath, RejectsBadGeometry)
{
    DramConfig c;
    c.banks = 3;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Dram, BankInterleavingAtColumnGranularity)
{
    Dram d;
    EXPECT_EQ(d.bankFor(0x0), 0u);
    EXPECT_EQ(d.bankFor(0x1ff), 0u);
    EXPECT_EQ(d.bankFor(0x200), 1u);
    EXPECT_EQ(d.bankFor(0x1e00), 15u);
    EXPECT_EQ(d.bankFor(0x2000), 0u);  // wraps
}

TEST(Dram, ColumnAddrAligns)
{
    Dram d;
    EXPECT_EQ(d.columnAddr(0x345), 0x200u);
    EXPECT_EQ(d.columnAddr(0x200), 0x200u);
}

TEST(Dram, UnloadedAccessTakesAccessTime)
{
    Dram d;
    const auto res = d.access(100, 0x0);
    EXPECT_EQ(res.done, 106u);
    EXPECT_EQ(res.queued, 0u);
    EXPECT_EQ(res.bank, 0u);
}

TEST(Dram, PrechargeDelaysSameBank)
{
    Dram d;
    d.access(0, 0x0);
    // Bank busy until 6 + 4 (precharge) = 10.
    const auto res = d.access(1, 0x0);
    EXPECT_EQ(res.queued, 9u);
    EXPECT_EQ(res.done, 16u);
}

TEST(Dram, DifferentBanksDoNotInterfere)
{
    Dram d;
    d.access(0, 0x0);
    const auto res = d.access(1, 0x200);  // bank 1
    EXPECT_EQ(res.queued, 0u);
    EXPECT_EQ(res.done, 7u);
}

TEST(Dram, BankReadyAtTracksPrecharge)
{
    Dram d;
    d.access(0, 0x0);
    EXPECT_EQ(d.bankReadyAt(0), 10u);
    EXPECT_EQ(d.bankReadyAt(1), 0u);
}

TEST(Dram, UtilisationAccountsBusyWindows)
{
    Dram d;
    d.access(0, 0x0);  // busy 10 cycles of 100
    EXPECT_DOUBLE_EQ(d.bankUtilisation(0, 100), 0.10);
    EXPECT_DOUBLE_EQ(d.bankUtilisation(1, 100), 0.0);
    EXPECT_DOUBLE_EQ(d.meanUtilisation(100), 0.10 / 16);
}

TEST(Dram, StatsAccumulateAndReset)
{
    Dram d;
    d.access(0, 0x0);
    d.access(0, 0x0);
    EXPECT_EQ(d.totalAccesses(), 2u);
    EXPECT_GT(d.totalQueuedCycles(), 0u);
    d.resetStats();
    EXPECT_EQ(d.totalAccesses(), 0u);
    EXPECT_DOUBLE_EQ(d.meanUtilisation(100), 0.0);
}

TEST(Dram, CustomTiming)
{
    DramConfig c;
    c.access_cycles = 10;
    c.precharge_cycles = 2;
    Dram d(c);
    const auto first = d.access(0, 0x0);
    EXPECT_EQ(first.done, 10u);
    const auto second = d.access(20, 0x0);  // bank free at 12
    EXPECT_EQ(second.queued, 0u);
    EXPECT_EQ(second.done, 30u);
}

class DramBankSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DramBankSweep, AllBanksReachable)
{
    DramConfig c;
    c.banks = GetParam();
    Dram d(c);
    std::vector<bool> seen(c.banks, false);
    for (Addr a = 0; a < c.banks * 512ull; a += 512)
        seen[d.bankFor(a)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(Banks, DramBankSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));
