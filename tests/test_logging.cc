/**
 * @file
 * Tests for the logging helpers (format folding, level gating,
 * assertion macro).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace memwall;

TEST(Logging, FormatFoldsArguments)
{
    EXPECT_EQ(detail::format("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::format(), "");
    EXPECT_EQ(detail::format(42), "42");
}

TEST(Logging, LevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

TEST(Logging, AssertPassesOnTrue)
{
    MW_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH({ MW_ASSERT(false, "expected failure ", 42); },
                 "expected failure 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ MW_PANIC("boom ", 7); }, "boom 7");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT({ MW_FATAL("bad config"); },
                ::testing::ExitedWithCode(1), "bad config");
}
