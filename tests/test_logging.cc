/**
 * @file
 * Tests for the logging helpers (format folding, level gating,
 * assertion macro).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

using namespace memwall;

TEST(Logging, FormatFoldsArguments)
{
    EXPECT_EQ(detail::format("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::format(), "");
    EXPECT_EQ(detail::format(42), "42");
}

TEST(Logging, LevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

TEST(Logging, AssertPassesOnTrue)
{
    MW_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH({ MW_ASSERT(false, "expected failure ", 42); },
                 "expected failure 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ MW_PANIC("boom ", 7); }, "boom 7");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT({ MW_FATAL("bad config"); },
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(Logging, ConcurrentRecordsDoNotInterleave)
{
    // Sweep workers log concurrently; every record must reach the
    // stream as one complete line, never torn between the prefix
    // and the message.
    testing::internal::CaptureStderr();
    constexpr int kThreads = 8;
    constexpr int kRecords = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            const std::string payload(
                32, static_cast<char>('a' + t));
            for (int i = 0; i < kRecords; ++i)
                MW_WARN("thread ", t, " record ", i, " payload ",
                        payload);
        });
    for (auto &thread : threads)
        thread.join();
    const std::string out = testing::internal::GetCapturedStderr();

    std::istringstream is(out);
    std::string line;
    int lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        EXPECT_EQ(line.rfind("warn: thread ", 0), 0u) << line;
        EXPECT_NE(line.find(" payload "), std::string::npos) << line;
    }
    EXPECT_EQ(lines, kThreads * kRecords);
}

TEST(Logging, LevelIsSafeToReadConcurrently)
{
    const LogLevel before = logLevel();
    std::thread writer([] {
        for (int i = 0; i < 1'000; ++i)
            setLogLevel(i % 2 ? LogLevel::Quiet
                              : LogLevel::Verbose);
    });
    for (int i = 0; i < 1'000; ++i) {
        const LogLevel level = logLevel();
        EXPECT_TRUE(level == LogLevel::Quiet ||
                    level == LogLevel::Verbose ||
                    level == LogLevel::Normal);
    }
    writer.join();
    setLogLevel(before);
}
