/**
 * @file
 * Tests for the deterministic xoshiro256++ generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hh"

using namespace memwall;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b()) ? 1 : 0;
    EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t v = r.uniformInt(bound);
            EXPECT_LT(v, bound);
        }
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng r(9);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++hits[r.uniformInt(10)];
    for (int h : hits)
        EXPECT_GT(h, 700);  // expect ~1000 each
}

TEST(Rng, UniformRangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.uniformRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-0.5));
        EXPECT_TRUE(r.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(19);
    int heads = 0;
    for (int i = 0; i < 20000; ++i)
        heads += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ExponentialPositive)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(r.exponential(0.001), 0.0);
}

TEST(Rng, GeometricMean)
{
    Rng r(31);
    // Mean of geometric (failures before success) = (1-p)/p.
    const double p = 0.25;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricCertainSuccess)
{
    Rng r(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(41);
    Rng child = parent.split();
    // The child stream should not replicate the parent stream.
    Rng parent2(41);
    int matches = 0;
    for (int i = 0; i < 100; ++i)
        matches += (child() == parent2()) ? 1 : 0;
    EXPECT_LT(matches, 5);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(43), b(43);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca(), cb());
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundSweep, NoModuloBias)
{
    // Chi-square-lite: each residue class should be hit roughly
    // uniformly even for awkward bounds.
    const std::uint64_t bound = GetParam();
    Rng r(bound * 2654435761u + 1);
    std::vector<std::uint64_t> hits(bound, 0);
    const std::uint64_t n = 2000 * bound;
    for (std::uint64_t i = 0; i < n; ++i)
        ++hits[r.uniformInt(bound)];
    for (std::uint64_t h : hits) {
        EXPECT_GT(h, 1600u);
        EXPECT_LT(h, 2400u);
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 7, 11, 16, 31));
