/**
 * @file
 * Tests for the MWCP checkpoint subsystem: the codec, the container
 * (every rejection class), the sweep journal, the per-unit store, and
 * save/load round-trips of every checkpointable component — each one
 * must re-serialize to byte-identical state and continue producing
 * the exact behaviour of the original.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "checkpoint/checkpoint.hh"
#include "checkpoint/journal.hh"
#include "checkpoint/store.hh"
#include "coherence/directory.hh"
#include "coherence/inc.hh"
#include "coherence/numa.hh"
#include "io/refresh.hh"
#include "mem/cache.hh"
#include "mem/column_cache.hh"
#include "mem/dram.hh"
#include "mem/victim_cache.hh"
#include "sampling/plan.hh"
#include "sampling/splash_sampler.hh"
#include "trace/synthetic.hh"
#include "workloads/missrate.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

/** Scratch directory deleted (best effort) at destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/mwckpt-test-XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "/tmp";
    }

    ~TempDir()
    {
        const std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    std::string file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

/** Serialize one component's state to bytes. */
template <typename T>
std::vector<std::uint8_t>
stateBytes(const T &obj)
{
    ckpt::Encoder e;
    obj.saveState(e);
    return e.take();
}

/**
 * The core round-trip property: restoring @p src's state into
 * @p dst must leave dst re-serializing to the exact same bytes.
 */
template <typename T>
void
expectRoundTrip(const T &src, T &dst)
{
    const std::vector<std::uint8_t> bytes = stateBytes(src);
    ckpt::Decoder d(bytes);
    dst.loadState(d);
    EXPECT_TRUE(d.ok()) << d.error();
    EXPECT_TRUE(d.atEnd());
    EXPECT_EQ(stateBytes(dst), bytes);
}

CacheConfig
cacheCfg(std::uint64_t capacity, std::uint32_t assoc)
{
    CacheConfig c;
    c.capacity = capacity;
    c.line_size = 32;
    c.assoc = assoc;
    c.name = "test";
    return c;
}

/** Deterministic pseudo-random address stream (splitmix-style). */
Addr
scrambled(std::uint64_t i)
{
    std::uint64_t z = (i + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return (z ^ (z >> 27)) & 0xfffff8;
}

} // namespace

// ---- Codec -------------------------------------------------------------

TEST(CkptCodec, VarintRoundTrip)
{
    const std::uint64_t values[] = {
        0, 1, 127, 128, 300, 16383, 16384,
        0xffffffffULL, 0xffffffffffffffffULL};
    ckpt::Encoder e;
    for (const std::uint64_t v : values)
        e.varint(v);
    ckpt::Decoder d(e.data());
    for (const std::uint64_t v : values)
        EXPECT_EQ(d.varint(), v);
    EXPECT_TRUE(d.ok());
    EXPECT_TRUE(d.atEnd());
}

TEST(CkptCodec, FixedWidthAndF64RoundTrip)
{
    ckpt::Encoder e;
    e.u8(0xab);
    e.u16(0x1234);
    e.u32(0xdeadbeef);
    e.u64(0x0123456789abcdefULL);
    e.f64(-0.15625);
    e.str("hello");
    ckpt::Decoder d(e.data());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u16(), 0x1234);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.f64(), -0.15625);
    EXPECT_EQ(d.str(), "hello");
    EXPECT_TRUE(d.atEnd());
}

TEST(CkptCodec, TruncationLatchesAndLaterReadsReturnZero)
{
    const std::uint8_t two[] = {0xff, 0xff};
    ckpt::Decoder d(two, sizeof(two));
    EXPECT_EQ(d.u32(), 0u);
    EXPECT_TRUE(d.failed());
    // Latched: everything after the first failure reads as zero.
    EXPECT_EQ(d.u8(), 0u);
    EXPECT_EQ(d.varint(), 0u);
    EXPECT_EQ(d.str(), "");
    EXPECT_NE(d.error().find("truncated"), std::string::npos);
}

TEST(CkptCodec, ImplausibleStringLengthFails)
{
    ckpt::Encoder e;
    e.varint(1ULL << 40); // claims a 1 TiB string
    ckpt::Decoder d(e.data());
    EXPECT_EQ(d.str(), "");
    EXPECT_TRUE(d.failed());
    EXPECT_NE(d.error().find("implausible"), std::string::npos);
}

TEST(CkptCodec, ExplicitFailLatchesFirstError)
{
    ckpt::Encoder e;
    e.u8(7);
    ckpt::Decoder d(e.data());
    d.fail("first");
    d.fail("second");
    EXPECT_EQ(d.error(), "first");
    EXPECT_EQ(d.u8(), 0u);
}

// ---- Container ---------------------------------------------------------

namespace {

constexpr std::uint64_t test_config_hash = 0x1122334455667788ULL;

std::vector<std::uint8_t>
makeCheckpoint()
{
    ckpt::CheckpointWriter w(test_config_hash);
    ckpt::Encoder &a = w.section(ckpt::fourcc("AAAA"));
    a.u32(0xcafe);
    a.str("payload-a");
    ckpt::Encoder &b = w.section(ckpt::fourcc("BBBB"));
    b.varint(999);
    return w.serialize();
}

/** Patch the header CRC after deliberately editing header bytes. */
void
fixHeaderCrc(std::vector<std::uint8_t> &bytes, std::size_t sections)
{
    const std::size_t crc_off = 4 + 4 + 8 + 4 + sections * 24;
    const std::uint32_t crc = ckpt::crc32(bytes.data(), crc_off);
    for (int i = 0; i < 4; ++i)
        bytes[crc_off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));
}

} // namespace

TEST(CkptContainer, WriteReadRoundTrip)
{
    ckpt::CheckpointReader r;
    ASSERT_EQ(r.loadBytes(makeCheckpoint(), test_config_hash),
              ckpt::LoadError::None);
    EXPECT_EQ(r.version(), ckpt::format_version);
    EXPECT_EQ(r.configHash(), test_config_hash);
    ASSERT_EQ(r.sections().size(), 2u);
    EXPECT_TRUE(r.hasSection(ckpt::fourcc("AAAA")));
    EXPECT_TRUE(r.hasSection(ckpt::fourcc("BBBB")));
    EXPECT_FALSE(r.hasSection(ckpt::fourcc("ZZZZ")));

    ckpt::Decoder a = r.section(ckpt::fourcc("AAAA"));
    EXPECT_EQ(a.u32(), 0xcafeu);
    EXPECT_EQ(a.str(), "payload-a");
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(a.atEnd());

    ckpt::Decoder b = r.section(ckpt::fourcc("BBBB"));
    EXPECT_EQ(b.varint(), 999u);
    EXPECT_TRUE(b.atEnd());
}

TEST(CkptContainer, AbsentSectionYieldsFailedDecoder)
{
    ckpt::CheckpointReader r;
    ASSERT_EQ(r.loadBytes(makeCheckpoint(), test_config_hash),
              ckpt::LoadError::None);
    ckpt::Decoder d = r.section(ckpt::fourcc("ZZZZ"));
    EXPECT_TRUE(d.failed());
    EXPECT_NE(d.error().find("absent"), std::string::npos);
}

TEST(CkptContainer, RejectsBadMagic)
{
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    bytes[0] ^= 0xff;
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::BadMagic);
}

TEST(CkptContainer, RejectsShortHeader)
{
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    bytes.resize(10);
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::Truncated);
}

TEST(CkptContainer, RejectsTruncatedPayload)
{
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    bytes.pop_back();
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::Truncated);
}

TEST(CkptContainer, FlippedVersionByteReadsAsCorruption)
{
    // The header CRC covers the version field, so a bit flip in it
    // must be reported as corruption — not as honest version skew.
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    bytes[4] ^= 0x02;
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::BadHeaderCrc);
}

TEST(CkptContainer, HonestVersionSkewIsBadVersion)
{
    // A well-formed file from a future format (consistent CRC).
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    bytes[4] = static_cast<std::uint8_t>(ckpt::format_version + 1);
    fixHeaderCrc(bytes, 2);
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::BadVersion);
}

TEST(CkptContainer, RejectsForeignConfigHash)
{
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(makeCheckpoint(), test_config_hash + 1),
              ckpt::LoadError::BadConfig);
    // The inspector path (no expected hash) still loads it.
    EXPECT_EQ(r.loadBytes(makeCheckpoint(), std::nullopt),
              ckpt::LoadError::None);
}

TEST(CkptContainer, PayloadBitFlipIsSectionCrc)
{
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    bytes.back() ^= 0x01; // last payload byte
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::BadSectionCrc);
}

TEST(CkptContainer, ScrambledSectionTableIsMalformed)
{
    // Grow the first section's recorded length so the second
    // section's offset no longer tiles the payload; keep the header
    // CRC consistent so the table itself is what gets rejected.
    std::vector<std::uint8_t> bytes = makeCheckpoint();
    const std::size_t len_off = 4 + 4 + 8 + 4 + 4 + 8;
    bytes[len_off] += 1;
    fixHeaderCrc(bytes, 2);
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadBytes(std::move(bytes), test_config_hash),
              ckpt::LoadError::Malformed);
}

TEST(CkptContainer, MissingFileIsIoError)
{
    ckpt::CheckpointReader r;
    EXPECT_EQ(r.loadFile("/nonexistent/nope.mwcp", std::nullopt),
              ckpt::LoadError::Io);
    EXPECT_FALSE(r.errorDetail().empty());
}

TEST(CkptContainer, AtomicWriteRoundTripAndFailure)
{
    TempDir dir;
    const std::string path = dir.file("blob.bin");
    const std::vector<std::uint8_t> bytes = makeCheckpoint();
    std::string why;
    ASSERT_TRUE(ckpt::atomicWriteFile(path, bytes.data(),
                                      bytes.size(), &why))
        << why;
    const auto back = ckpt::readFileBytes(path, &why);
    ASSERT_TRUE(back.has_value()) << why;
    EXPECT_EQ(*back, bytes);
    // No temp file left behind.
    EXPECT_FALSE(
        ckpt::readFileBytes(path + ".tmp").has_value());

    EXPECT_FALSE(ckpt::atomicWriteFile("/nonexistent/dir/x",
                                       bytes.data(), bytes.size(),
                                       &why));
    EXPECT_NE(why.find("/nonexistent/dir/x"), std::string::npos);
}

// ---- Sweep journal -----------------------------------------------------

namespace {

std::vector<std::uint8_t>
payloadFor(std::size_t i)
{
    ckpt::Encoder e;
    e.str("point");
    e.varint(i * 17);
    return e.take();
}

} // namespace

TEST(SweepJournal, AppendCloseRecover)
{
    TempDir dir;
    const std::string path = dir.file("run.mwsj");
    {
        ckpt::SweepJournal j;
        std::string why;
        ASSERT_TRUE(j.open(path, 42, &why)) << why;
        EXPECT_EQ(j.recovered(), 0u);
        for (std::size_t i = 0; i < 3; ++i)
            ASSERT_TRUE(j.append(i, payloadFor(i), &why)) << why;
    }
    ckpt::SweepJournal j;
    ASSERT_TRUE(j.open(path, 42));
    EXPECT_EQ(j.recovered(), 3u);
    EXPECT_EQ(j.tornBytes(), 0u);
    EXPECT_FALSE(j.discardedForeign());
    for (std::size_t i = 0; i < 3; ++i) {
        const auto *p = j.lookup(i);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, payloadFor(i));
    }
    EXPECT_EQ(j.lookup(3), nullptr);
}

TEST(SweepJournal, TornTailTruncatedAndAppendable)
{
    TempDir dir;
    const std::string path = dir.file("run.mwsj");
    {
        ckpt::SweepJournal j;
        ASSERT_TRUE(j.open(path, 42));
        ASSERT_TRUE(j.append(0, payloadFor(0)));
        ASSERT_TRUE(j.append(1, payloadFor(1)));
    }
    {
        // Simulate SIGKILL mid-append: a partial record at the tail.
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const std::uint8_t garbage[7] = {2, 0, 0, 0, 0, 0, 0};
        std::fwrite(garbage, 1, sizeof(garbage), f);
        std::fclose(f);
    }
    ckpt::SweepJournal j;
    ASSERT_TRUE(j.open(path, 42));
    EXPECT_EQ(j.recovered(), 2u);
    EXPECT_GT(j.tornBytes(), 0u);
    ASSERT_NE(j.lookup(1), nullptr);
    // The journal is append-clean again after truncation.
    ASSERT_TRUE(j.append(2, payloadFor(2)));
    j.close();
    ckpt::SweepJournal j2;
    ASSERT_TRUE(j2.open(path, 42));
    EXPECT_EQ(j2.recovered(), 3u);
}

TEST(SweepJournal, CorruptPayloadMarksTornTail)
{
    TempDir dir;
    const std::string path = dir.file("run.mwsj");
    {
        ckpt::SweepJournal j;
        ASSERT_TRUE(j.open(path, 42));
        ASSERT_TRUE(j.append(0, payloadFor(0)));
        ASSERT_TRUE(j.append(1, payloadFor(1)));
    }
    {
        // Flip a byte in the LAST record's payload (CRC mismatch).
        auto bytes = ckpt::readFileBytes(path);
        ASSERT_TRUE(bytes.has_value());
        bytes->back() ^= 0x40;
        ASSERT_TRUE(ckpt::atomicWriteFile(path, bytes->data(),
                                          bytes->size()));
    }
    ckpt::SweepJournal j;
    ASSERT_TRUE(j.open(path, 42));
    EXPECT_EQ(j.recovered(), 1u);
    EXPECT_GT(j.tornBytes(), 0u);
    EXPECT_NE(j.lookup(0), nullptr);
    EXPECT_EQ(j.lookup(1), nullptr);
}

TEST(SweepJournal, ForeignRunHashDiscardsContents)
{
    TempDir dir;
    const std::string path = dir.file("run.mwsj");
    {
        ckpt::SweepJournal j;
        ASSERT_TRUE(j.open(path, 42));
        ASSERT_TRUE(j.append(0, payloadFor(0)));
    }
    ckpt::SweepJournal j;
    ASSERT_TRUE(j.open(path, 43));
    EXPECT_TRUE(j.discardedForeign());
    EXPECT_EQ(j.recovered(), 0u);
    EXPECT_EQ(j.lookup(0), nullptr);
}

// ---- Checkpoint store --------------------------------------------------

TEST(SweepJournal, AppendAfterCloseIsNamedError)
{
    TempDir dir;
    ckpt::SweepJournal j;
    ASSERT_TRUE(j.open(dir.file("j.mwsj"), 1));
    j.close();
    std::string why;
    EXPECT_FALSE(j.append(0, {1, 2, 3}, &why));
    EXPECT_EQ(why, "journal is not open");
}

TEST(SweepJournal, OpenFailureNamesPathAndErrno)
{
    ckpt::SweepJournal j;
    std::string why;
    // /dev/null is not a directory: open(2) fails with ENOTDIR.
    EXPECT_FALSE(j.open("/dev/null/sub/j.mwsj", 1, &why));
    EXPECT_NE(why.find("cannot open journal"), std::string::npos)
        << why;
    EXPECT_NE(why.find("/dev/null/sub/j.mwsj"), std::string::npos)
        << why;
    EXPECT_NE(why.find(std::strerror(ENOTDIR)), std::string::npos)
        << why;
}

TEST(CheckpointStore, SaveLoadAndCounters)
{
    TempDir dir;
    ckpt::CheckpointStore store(dir.path, test_config_hash);
    ckpt::CheckpointWriter w(store.configHash());
    w.section(ckpt::fourcc("AAAA")).varint(5);
    std::string why;
    ASSERT_TRUE(store.save("unit0", w, &why)) << why;

    ckpt::CheckpointReader r;
    EXPECT_EQ(store.load("unit0", r), ckpt::LoadError::None);
    const ckpt::StoreCounters c = store.counters();
    EXPECT_EQ(c.written, 1u);
    EXPECT_EQ(c.loaded, 1u);
    EXPECT_EQ(c.degraded(), 0u);
}

TEST(CheckpointStore, DegradationClassesAreDistinguished)
{
    TempDir dir;
    ckpt::CheckpointStore store(dir.path, test_config_hash);

    // Missing file.
    ckpt::CheckpointReader r;
    EXPECT_EQ(store.load("absent", r), ckpt::LoadError::Io);
    EXPECT_EQ(store.counters().degraded_missing, 1u);

    // Corrupt payload.
    ckpt::CheckpointWriter w(store.configHash());
    w.section(ckpt::fourcc("AAAA")).str("payload-bytes");
    ASSERT_TRUE(store.save("corrupt", w));
    {
        auto bytes = ckpt::readFileBytes(store.pathFor("corrupt"));
        ASSERT_TRUE(bytes.has_value());
        bytes->back() ^= 0x01;
        ASSERT_TRUE(ckpt::atomicWriteFile(store.pathFor("corrupt"),
                                          bytes->data(),
                                          bytes->size()));
    }
    EXPECT_EQ(store.load("corrupt", r),
              ckpt::LoadError::BadSectionCrc);
    EXPECT_EQ(store.counters().degraded_corrupt, 1u);

    // Honest version skew (header CRC kept consistent).
    ASSERT_TRUE(store.save("skew", w));
    {
        auto bytes = ckpt::readFileBytes(store.pathFor("skew"));
        ASSERT_TRUE(bytes.has_value());
        (*bytes)[4] += 1;
        fixHeaderCrc(*bytes, 1);
        ASSERT_TRUE(ckpt::atomicWriteFile(store.pathFor("skew"),
                                          bytes->data(),
                                          bytes->size()));
    }
    EXPECT_EQ(store.load("skew", r), ckpt::LoadError::BadVersion);
    EXPECT_EQ(store.counters().degraded_version, 1u);

    // Foreign configuration.
    ckpt::CheckpointStore other(dir.path, test_config_hash + 1);
    ASSERT_TRUE(store.save("foreign", w));
    EXPECT_EQ(other.load("foreign", r), ckpt::LoadError::BadConfig);
    EXPECT_EQ(other.counters().degraded_config, 1u);

    // Nothing ever crashed; totals add up.
    EXPECT_EQ(store.counters().degraded(), 3u);
}

TEST(CheckpointStore, NoteMalformedReclassifiesALoad)
{
    TempDir dir;
    ckpt::CheckpointStore store(dir.path, test_config_hash);
    ckpt::CheckpointWriter w(store.configHash());
    w.section(ckpt::fourcc("AAAA")).varint(1);
    ASSERT_TRUE(store.save("u", w));
    ckpt::CheckpointReader r;
    ASSERT_EQ(store.load("u", r), ckpt::LoadError::None);
    // Container CRCs passed but the payload failed to decode.
    store.noteMalformed();
    const ckpt::StoreCounters c = store.counters();
    EXPECT_EQ(c.loaded, 0u);
    EXPECT_EQ(c.degraded_corrupt, 1u);
}

TEST(CheckpointStore, WriteErrorIsCountedNotFatal)
{
    ckpt::CheckpointStore store("/nonexistent/dir", 1);
    ckpt::CheckpointWriter w(1);
    w.section(ckpt::fourcc("AAAA")).varint(1);
    std::string why;
    EXPECT_FALSE(store.save("u", w, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_EQ(store.counters().write_errors, 1u);
    EXPECT_EQ(store.counters().written, 0u);
}

TEST(CheckpointStore, CapEvictsOldestEntriesFirst)
{
    TempDir dir;
    ckpt::CheckpointStore store(dir.path, test_config_hash);
    ckpt::CheckpointWriter w(store.configHash());
    w.section(ckpt::fourcc("AAAA")).str(std::string(256, 'x'));

    ASSERT_TRUE(store.save("k0", w));
    struct stat st;
    ASSERT_EQ(::stat(store.pathFor("k0").c_str(), &st), 0);
    const auto entry_size = static_cast<std::uint64_t>(st.st_size);

    // Room for three entries; the fourth save must evict exactly
    // one, and — with all mtimes in the same second — the name
    // tiebreak makes "k0" the deterministic victim.
    store.setCapBytes(3 * entry_size);
    ASSERT_TRUE(store.save("k1", w));
    ASSERT_TRUE(store.save("k2", w));
    ASSERT_TRUE(store.save("k3", w));

    EXPECT_EQ(store.counters().evicted, 1u);
    ckpt::CheckpointReader r;
    EXPECT_EQ(store.load("k0", r), ckpt::LoadError::Io);
    EXPECT_EQ(store.counters().degraded_missing, 1u);
    for (const char *k : {"k1", "k2", "k3"})
        EXPECT_EQ(store.load(k, r), ckpt::LoadError::None) << k;
}

TEST(CheckpointStore, CapNeverEvictsTheEntryJustWritten)
{
    TempDir dir;
    ckpt::CheckpointStore store(dir.path, test_config_hash);
    store.setCapBytes(1); // nothing fits
    ckpt::CheckpointWriter w(store.configHash());
    w.section(ckpt::fourcc("AAAA")).varint(7);
    ASSERT_TRUE(store.save("only", w));
    // The just-written entry survives even though it busts the cap.
    ckpt::CheckpointReader r;
    EXPECT_EQ(store.load("only", r), ckpt::LoadError::None);
    ASSERT_TRUE(store.save("next", w));
    EXPECT_EQ(store.load("next", r), ckpt::LoadError::None);
    // ...but it is fair game for the following save's sweep.
    EXPECT_EQ(store.load("only", r), ckpt::LoadError::Io);
}

TEST(CheckpointStore, TwoProcessSaveLoadRaceNeverShowsTornEntry)
{
    // The atomic-rename contract: a reader racing a writer on the
    // same key sees either a complete old entry or a complete new
    // one — never a torn file. Run a child process hammering saves
    // of two distinguishable payloads while the parent loads.
    TempDir dir;
    const std::string payload_a(4096, 'a');
    const std::string payload_b(4096, 'b');

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ckpt::CheckpointStore store(dir.path, test_config_hash);
        for (int i = 0; i < 200; ++i) {
            ckpt::CheckpointWriter w(store.configHash());
            w.section(ckpt::fourcc("RACE"))
                .str(i % 2 ? payload_b : payload_a);
            if (!store.save("race", w))
                ::_exit(2);
        }
        ::_exit(0);
    }

    ckpt::CheckpointStore store(dir.path, test_config_hash);
    int loads_ok = 0;
    int status = 0;
    bool child_done = false;
    // Load as fast as possible for the writer's whole lifetime (plus
    // one final pass), so loads overlap every save/rename window.
    while (!child_done) {
        child_done = ::waitpid(pid, &status, WNOHANG) == pid;
        ckpt::CheckpointReader r;
        const ckpt::LoadError e = store.load("race", r);
        if (e == ckpt::LoadError::Io)
            continue; // not yet written: fine
        // Any *visible* entry must validate completely...
        ASSERT_EQ(e, ckpt::LoadError::None) << "torn entry seen";
        // ...and decode to one of the two full payloads.
        ckpt::Decoder d = r.section(ckpt::fourcc("RACE"));
        const std::string got = d.str();
        ASSERT_TRUE(d.ok());
        ASSERT_TRUE(got == payload_a || got == payload_b)
            << "mixed payload of length " << got.size();
        ++loads_ok;
    }
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_GT(loads_ok, 0);
    // After the writer exits the entry is stably loadable.
    ckpt::CheckpointReader r;
    EXPECT_EQ(store.load("race", r), ckpt::LoadError::None);
}

// ---- Component round-trips ----------------------------------------------

TEST(StateRoundTrip, Cache)
{
    Cache src(cacheCfg(8 * KiB, 2));
    for (std::uint64_t i = 0; i < 500; ++i)
        src.access(scrambled(i), i % 3 == 0);
    Cache dst(cacheCfg(8 * KiB, 2));
    expectRoundTrip(src, dst);

    // The restored cache continues with identical behaviour.
    for (std::uint64_t i = 0; i < 200; ++i) {
        const Addr a = scrambled(i * 7 + 1);
        EXPECT_EQ(src.access(a, false).hit, dst.access(a, false).hit);
    }
    EXPECT_EQ(stateBytes(src), stateBytes(dst));
}

TEST(StateRoundTrip, CacheRejectsForeignGeometry)
{
    Cache src(cacheCfg(8 * KiB, 2));
    src.access(0x100, false);
    const auto bytes = stateBytes(src);

    Cache other(cacheCfg(16 * KiB, 2));
    other.access(0x200, false);
    const auto before = stateBytes(other);
    ckpt::Decoder d(bytes);
    other.loadState(d);
    EXPECT_TRUE(d.failed());
    EXPECT_NE(d.error().find("geometry"), std::string::npos);
    // All-or-nothing: the rejected load changed nothing.
    EXPECT_EQ(stateBytes(other), before);
}

TEST(StateRoundTrip, VictimCache)
{
    VictimCache src;
    for (std::uint64_t i = 0; i < 100; ++i) {
        src.insert(scrambled(i));
        src.access(scrambled(i / 2), i % 5 == 0);
    }
    VictimCache dst;
    expectRoundTrip(src, dst);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(src.probe(scrambled(i)), dst.probe(scrambled(i)));
}

TEST(StateRoundTrip, ColumnCaches)
{
    ColumnDataCache dsrc;
    ColumnInstrCache isrc;
    for (std::uint64_t i = 0; i < 400; ++i) {
        dsrc.access(scrambled(i), i % 4 == 0);
        isrc.fetch(0x10000 + (scrambled(i) & 0xffff));
    }
    ColumnDataCache ddst;
    ColumnInstrCache idst;
    expectRoundTrip(dsrc, ddst);
    expectRoundTrip(isrc, idst);
    // Continuation equivalence for the data side.
    for (std::uint64_t i = 0; i < 100; ++i) {
        const Addr a = scrambled(i * 3 + 5);
        EXPECT_EQ(dsrc.access(a, true), ddst.access(a, true));
    }
    EXPECT_EQ(stateBytes(dsrc), stateBytes(ddst));
}

TEST(StateRoundTrip, DramAndRefresh)
{
    Dram src;
    Tick now = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        now += 3;
        src.access(now, scrambled(i));
    }
    Dram dst;
    expectRoundTrip(src, dst);
    EXPECT_EQ(src.bankReadyAt(0), dst.bankReadyAt(0));
    EXPECT_EQ(src.totalAccesses(), dst.totalAccesses());

    RefreshAgent rsrc(RefreshConfig{}, src.config());
    rsrc.drainUpTo(src, 1'000'000);
    RefreshAgent rdst(RefreshConfig{}, dst.config());
    expectRoundTrip(rsrc, rdst);
    EXPECT_EQ(rsrc.refreshesIssued(), rdst.refreshesIssued());
}

TEST(StateRoundTrip, Directory)
{
    Directory src(8);
    for (std::uint64_t i = 0; i < 64; ++i) {
        DirEntry &e = src.entry(scrambled(i));
        if (i % 3 == 0)
            e.setModified(static_cast<unsigned>(i % 8));
        else
            e.addSharer(static_cast<unsigned>(i % 8));
    }
    Directory dst(8);
    expectRoundTrip(src, dst);
    EXPECT_EQ(dst.materialisedEntries(), src.materialisedEntries());
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_TRUE(src.lookup(scrambled(i)) ==
                    dst.lookup(scrambled(i)));
}

TEST(StateRoundTrip, InterNodeCache)
{
    InterNodeCache src;
    for (std::uint64_t i = 0; i < 200; ++i) {
        src.insert(scrambled(i));
        src.access(scrambled(i / 3), i % 7 == 0);
        if (i % 11 == 0)
            src.invalidate(scrambled(i / 2));
    }
    InterNodeCache dst;
    expectRoundTrip(src, dst);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(src.probe(scrambled(i)), dst.probe(scrambled(i)));
}

TEST(StateRoundTrip, SyntheticWorkloadContinuation)
{
    const SpecWorkload &wl = specSuite().front();
    SyntheticWorkload src(wl.proxy);
    std::vector<MemRef> sink;
    src.generateBatch(5'000, sink);

    const auto bytes = stateBytes(src);
    SyntheticWorkload dst(wl.proxy);
    ckpt::Decoder d(bytes);
    dst.loadState(d);
    ASSERT_TRUE(d.ok()) << d.error();
    ASSERT_TRUE(d.atEnd());

    // Both generators must now emit the exact same future stream.
    std::vector<MemRef> a, b;
    src.generateBatch(2'000, a);
    dst.generateBatch(2'000, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].type, b[i].type);
    }
}

TEST(StateRoundTrip, SyntheticWorkloadRejectsForeignSpec)
{
    const SpecWorkload &wl = specSuite().front();
    SyntheticWorkload src(wl.proxy);
    const auto bytes = stateBytes(src);

    SyntheticSpec other = wl.proxy;
    other.seed += 1;
    SyntheticWorkload dst(other);
    ckpt::Decoder d(bytes);
    dst.loadState(d);
    EXPECT_TRUE(d.failed());
}

TEST(StateRoundTrip, NumaMachine)
{
    NumaConfig cfg;
    cfg.nodes = 4;
    cfg.arch = NodeArch::Integrated;
    cfg.victim_cache = true;
    NumaMachine src(cfg);
    for (std::uint64_t i = 0; i < 2'000; ++i)
        src.access(static_cast<unsigned>(i % 4), scrambled(i),
                   i % 5 == 0);

    NumaMachine dst(cfg);
    expectRoundTrip(src, dst);

    // Identical future behaviour, including protocol randomness.
    for (std::uint64_t i = 0; i < 500; ++i) {
        const unsigned cpu = static_cast<unsigned>((i * 3) % 4);
        const Addr a = scrambled(i * 13 + 7);
        EXPECT_EQ(src.access(cpu, a, i % 2 == 0),
                  dst.access(cpu, a, i % 2 == 0));
    }
    EXPECT_EQ(stateBytes(src), stateBytes(dst));
}

TEST(StateRoundTrip, NumaMachineRejectsForeignTopology)
{
    NumaConfig cfg;
    cfg.nodes = 4;
    NumaMachine src(cfg);
    src.access(0, 0x1000, false);
    const auto bytes = stateBytes(src);

    NumaConfig other = cfg;
    other.nodes = 8;
    NumaMachine dst(other);
    ckpt::Decoder d(bytes);
    dst.loadState(d);
    EXPECT_TRUE(d.failed());
}

TEST(StateRoundTrip, SplashSampler)
{
    SamplingPlan plan;
    plan.scheme = SampleScheme::Systematic;
    plan.unit_refs = 100;
    plan.warmup_refs = 200;
    plan.period_units = 10;
    SplashSampler src(plan, 4, 1000);
    SplashSampler dst(plan, 4, 1000);
    expectRoundTrip(src, dst);

    // A sampler built from a different plan refuses the state.
    SamplingPlan other = plan;
    other.period_units = 20;
    SplashSampler foreign(other, 4, 1000);
    ckpt::Decoder d(stateBytes(src));
    foreign.loadState(d);
    EXPECT_TRUE(d.failed());
}

// ---- Result serialization (journal payloads) ----------------------------

TEST(ResultCodec, WorkloadMissRatesRoundTrip)
{
    WorkloadMissRates r;
    r.workload = "126.gcc";
    CacheMissResult c;
    c.label = "proposed";
    c.stats.load_hits.inc(100);
    c.stats.load_misses.inc(7);
    r.icaches.push_back(c);
    c.label = "conv-16K-dm";
    c.stats.store_misses.inc(12);
    r.dcaches.push_back(c);

    ckpt::Encoder e;
    encodeResult(e, r);
    ckpt::Decoder d(e.data());
    WorkloadMissRates back;
    ASSERT_TRUE(decodeResult(d, back));
    ckpt::Encoder e2;
    encodeResult(e2, back);
    EXPECT_EQ(e2.data(), e.data());

    // Truncated payloads are refused without touching the output.
    auto bytes = e.take();
    bytes.pop_back();
    ckpt::Decoder d2(bytes);
    WorkloadMissRates untouched;
    untouched.workload = "sentinel";
    EXPECT_FALSE(decodeResult(d2, untouched));
    EXPECT_EQ(untouched.workload, "sentinel");
}

// ---- Checkpoint-accelerated sampling -------------------------------------

namespace {

/** Journal payload with the acceleration bookkeeping masked out —
 *  restored and rewarmed runs must agree on everything else. */
std::vector<std::uint8_t>
measurementBytes(SampledWorkloadMissRates r)
{
    r.ckpt_restored_units = 0;
    r.ckpt_saved_units = 0;
    r.ckpt_degraded_units = 0;
    ckpt::Encoder e;
    encodeResult(e, r);
    return e.take();
}

} // namespace

TEST(CkptAcceleration, RestoreMatchesRewarmByteForByte)
{
    const SpecWorkload &wl = specSuite().front();
    MissRateParams params;
    params.stationary_start = true;
    SamplingPlan plan;
    plan.scheme = SampleScheme::Stratified;
    plan.units = 4;
    plan.unit_refs = 300;
    plan.warmup_refs = 600;
    plan.validate();

    TempDir dir;
    ckpt::CheckpointStore store(dir.path, samplingPlanHash(plan));

    // Cold accelerated run: every unit degrades (missing) and then
    // populates the store.
    const SampledWorkloadMissRates cold =
        measureMissRatesSampled(wl, params, plan, &store);
    EXPECT_EQ(cold.ckpt_restored_units, 0u);
    EXPECT_EQ(cold.ckpt_degraded_units, 4u);
    EXPECT_EQ(cold.ckpt_saved_units, 4u);
    EXPECT_EQ(store.counters().written, 4u);

    // Warm accelerated run: every warm phase is a checkpoint load.
    const SampledWorkloadMissRates warm =
        measureMissRatesSampled(wl, params, plan, &store);
    EXPECT_EQ(warm.ckpt_restored_units, 4u);
    EXPECT_EQ(warm.ckpt_degraded_units, 0u);

    // Plain run without any store.
    const SampledWorkloadMissRates plain =
        measureMissRatesSampled(wl, params, plan);
    EXPECT_EQ(plain.ckpt_restored_units, 0u);
    EXPECT_EQ(plain.ckpt_degraded_units, 0u);

    // All three must be byte-identical measurements — restored warm
    // state IS the state a cold run reaches, and warm_refs is still
    // accounted for restored units.
    EXPECT_EQ(measurementBytes(cold), measurementBytes(plain));
    EXPECT_EQ(measurementBytes(warm), measurementBytes(plain));
    EXPECT_EQ(warm.warm_refs, plain.warm_refs);
}

TEST(CkptAcceleration, CorruptUnitDegradesGracefully)
{
    const SpecWorkload &wl = specSuite().front();
    MissRateParams params;
    SamplingPlan plan;
    plan.scheme = SampleScheme::Stratified;
    plan.units = 3;
    plan.unit_refs = 200;
    plan.warmup_refs = 400;
    plan.validate();

    TempDir dir;
    ckpt::CheckpointStore store(dir.path, samplingPlanHash(plan));
    const SampledWorkloadMissRates cold =
        measureMissRatesSampled(wl, params, plan, &store);

    // Corrupt one unit's file; the others stay intact.
    const std::string victim =
        store.pathFor(wl.name + "-u1");
    auto bytes = ckpt::readFileBytes(victim);
    ASSERT_TRUE(bytes.has_value());
    bytes->back() ^= 0x10;
    ASSERT_TRUE(ckpt::atomicWriteFile(victim, bytes->data(),
                                      bytes->size()));

    ckpt::CheckpointStore store2(dir.path, samplingPlanHash(plan));
    const SampledWorkloadMissRates mixed =
        measureMissRatesSampled(wl, params, plan, &store2);
    EXPECT_EQ(mixed.ckpt_restored_units, 2u);
    EXPECT_EQ(mixed.ckpt_degraded_units, 1u);
    EXPECT_EQ(store2.counters().degraded_corrupt, 1u);
    // The rewarmed unit reproduces the same measurement anyway.
    EXPECT_EQ(measurementBytes(mixed), measurementBytes(cold));
}
