/**
 * @file
 * Tests for the SPEC'95 workload registry and the miss-rate harness,
 * including the qualitative Figure 7/8 claims as assertions.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/missrate.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;
using namespace memwall::cachelabels;

namespace {

MissRateParams
quick()
{
    MissRateParams p;
    p.measured_refs = 300'000;
    p.warmup_refs = 100'000;
    return p;
}

} // namespace

TEST(SpecSuite, HasAllTable2Entries)
{
    const auto &suite = specSuite();
    EXPECT_EQ(suite.size(), 19u);  // 18 SPEC + synopsys
    std::set<std::string> names;
    for (const auto &w : suite)
        names.insert(w.name);
    for (const char *expected :
         {"099.go", "124.m88ksim", "126.gcc", "129.compress",
          "130.li", "132.ijpeg", "134.perl", "147.vortex",
          "101.tomcatv", "102.swim", "103.su2cor", "104.hydro2d",
          "107.mgrid", "110.applu", "125.turb3d", "141.apsi",
          "145.fpppp", "146.wave5", "synopsys"})
        EXPECT_TRUE(names.count(expected)) << expected;
}

TEST(SpecSuite, IntegerAndFloatSplits)
{
    EXPECT_EQ(integerNames().size(), 8u);
    EXPECT_EQ(floatNames().size(), 10u);
}

TEST(SpecSuite, MetadataConsistentWithPaperTables)
{
    for (const auto &w : specSuite()) {
        if (!w.in_spec_tables)
            continue;
        EXPECT_GE(w.base_cpi, 1.0) << w.name;
        EXPECT_GE(w.paper_mem_cpi_novc, 0.0) << w.name;
        // Table 4's total CPI is at least the base CPI.
        EXPECT_GE(w.paper_total_cpi_vc, w.base_cpi - 0.01) << w.name;
        // The victim cache never hurts the paper's ratios.
        EXPECT_GE(w.paper_ratio_vc, w.paper_ratio_novc - 0.01)
            << w.name;
        EXPECT_GT(w.alpha_ratio, 0.0) << w.name;
        EXPECT_GT(w.load_frac, 0.0);
        EXPECT_GT(w.store_frac, 0.0);
        EXPECT_LT(w.load_frac + w.store_frac, 0.6);
    }
}

TEST(SpecSuite, CalibrationReproducesPaperRatios)
{
    // k/CPI must reproduce both the Table 3 and Table 4 operating
    // points (the tables are mutually consistent under the model).
    for (const auto &w : specSuite()) {
        if (!w.in_spec_tables)
            continue;
        const SpecCalibration cal = w.calibration();
        EXPECT_NEAR(cal.ratio(w.base_cpi + w.paper_mem_cpi_novc),
                    w.paper_ratio_novc, 0.01)
            << w.name;
        EXPECT_NEAR(cal.ratio(w.paper_total_cpi_vc),
                    w.paper_ratio_vc, 0.35)
            << w.name;
    }
}

TEST(SpecSuite, FindWorkloadByName)
{
    EXPECT_EQ(findWorkload("126.gcc").name, "126.gcc");
}

TEST(SpecSuiteDeath, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(findWorkload("999.nope"),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(SpecSuite, ProxiesGenerateStreams)
{
    for (const auto &w : specSuite()) {
        SyntheticWorkload source(w.proxy);
        unsigned fetches = 0, data = 0;
        source.generate(5000, [&](const MemRef &r) {
            if (r.type == RefType::IFetch)
                ++fetches;
            else
                ++data;
        });
        EXPECT_GT(fetches, 3000u) << w.name;
        EXPECT_GT(data, 100u) << w.name;
    }
}

// ---- Figure 7 qualitative claims -------------------------------------

TEST(Figure7, ProposedBeatsSameSizeConventionalAlmostEverywhere)
{
    // "For almost all of the applications, the proposed cache has a
    // lower miss rate than conventional I-caches of over twice the
    // size" — 125.turb3d is the designed exception. Benchmarks whose
    // code fits a 16 KB cache entirely (e.g. 130.li) trivially tie,
    // so assert against the same-size cache for those.
    for (const char *name : {"126.gcc", "145.fpppp", "099.go",
                             "134.perl"}) {
        const auto rates = measureMissRates(findWorkload(name),
                                            quick());
        EXPECT_LT(rates.icache(proposed).missRate(),
                  rates.icache(conv16).missRate())
            << name;
    }
    for (const char *name : {"130.li", "124.m88ksim"}) {
        const auto rates = measureMissRates(findWorkload(name),
                                            quick());
        EXPECT_LT(rates.icache(proposed).missRate(),
                  rates.icache(conv8).missRate())
            << name;
    }
}

TEST(Figure7, FivesBenchmarksFitEightKilobytes)
{
    // applu, compress, swim, mgrid, ijpeg "run very tight code
    // loops that almost entirely fit an 8KByte cache".
    for (const char *name : {"110.applu", "129.compress", "102.swim",
                             "107.mgrid", "132.ijpeg"}) {
        const auto rates = measureMissRates(findWorkload(name),
                                            quick());
        EXPECT_LT(rates.icache(proposed).missRate(), 0.001) << name;
        EXPECT_LT(rates.icache(conv8).missRate(), 0.002) << name;
    }
}

TEST(Figure7, FppppLongLinesWinBig)
{
    // "in 145.fpppp the miss rate is a factor of 11.2 lower than
    // the conventional cache of the same size" (we assert > 5x) and
    // "the benchmark entirely fits a 64KByte I-cache".
    const auto rates = measureMissRates(findWorkload("145.fpppp"),
                                        quick());
    EXPECT_GT(rates.icache(conv8).missRate(),
              5.0 * rates.icache(proposed).missRate());
    EXPECT_LT(rates.icache(conv64).missRate(), 0.001);
}

TEST(Figure7, Turb3dIsTheOnlyRegression)
{
    // "The only application to produce a higher miss rate on the
    // proposed architecture was 125.turb3d" — the loop/function
    // column conflict.
    const auto turb = measureMissRates(findWorkload("125.turb3d"),
                                       quick());
    EXPECT_GT(turb.icache(proposed).missRate(),
              turb.icache(conv8).missRate());

    for (const auto &w : specSuite()) {
        if (w.name == "125.turb3d")
            continue;
        const auto rates = measureMissRates(w, quick());
        EXPECT_LE(rates.icache(proposed).missRate(),
                  rates.icache(conv8).missRate() + 1e-4)
            << w.name;
    }
}

// ---- Figure 8 qualitative claims ------------------------------------

TEST(Figure8, ConflictBenchmarksBlowUpWithoutVictimCache)
{
    // su2cor/swim/tomcatv: "the 512-Byte line size of the proposed
    // cache increases the number of conflict misses by almost a
    // factor of five over a conventional cache of the same size".
    for (const char *name :
         {"103.su2cor", "102.swim", "101.tomcatv"}) {
        const auto rates = measureMissRates(findWorkload(name),
                                            quick());
        EXPECT_GT(rates.dcache(proposed).missRate(),
                  1.5 * rates.dcache(conv16).missRate())
            << name;
    }
}

TEST(Figure8, VictimCacheAbsorbsTheConflicts)
{
    // "In all but one application the combined D-cache and victim
    // cache has a lower miss rate than the 16KByte direct-mapped
    // data cache" — and for the conflict cases the reduction is
    // dramatic.
    for (const char *name :
         {"103.su2cor", "102.swim", "101.tomcatv", "146.wave5"}) {
        const auto rates = measureMissRates(findWorkload(name),
                                            quick());
        EXPECT_GT(rates.dcache(proposed).missRate(),
                  3.0 * rates.dcache(proposed_vc).missRate())
            << name;
        EXPECT_LT(rates.dcache(proposed_vc).missRate(),
                  rates.dcache(conv16).missRate())
            << name;
    }
}

TEST(Figure8, GoResistsTheVictimCache)
{
    // "while the victim cache helps reduce the miss rate by 25%, it
    // does not have the capacity to absorb the conflicts" of go.
    const auto rates = measureMissRates(findWorkload("099.go"),
                                        quick());
    const double plain = rates.dcache(proposed).missRate();
    const double vc = rates.dcache(proposed_vc).missRate();
    EXPECT_LT(vc, plain);             // it helps...
    EXPECT_GT(vc, 0.5 * plain);       // ...but modestly
}

TEST(Figure8, PrefetchingWinsForSequentialCodes)
{
    // mgrid/hydro2d: "markedly reduced D-cache miss rates — over a
    // factor of ten lower for mgrid ... compared to a conventional
    // direct-mapped D-cache of the same capacity".
    const auto mgrid = measureMissRates(findWorkload("107.mgrid"),
                                        quick());
    EXPECT_GT(mgrid.dcache(conv16).missRate(),
              8.0 * mgrid.dcache(proposed).missRate());
    const auto hydro = measureMissRates(findWorkload("104.hydro2d"),
                                        quick());
    EXPECT_GT(hydro.dcache(conv16).missRate(),
              2.0 * hydro.dcache(proposed).missRate());
}

TEST(Figure8, RatesAreValidProbabilities)
{
    for (const auto &w : specSuite()) {
        const auto rates = measureMissRates(w, quick());
        for (const auto &r : rates.icaches) {
            EXPECT_GE(r.missRate(), 0.0) << w.name << " " << r.label;
            EXPECT_LE(r.missRate(), 1.0) << w.name << " " << r.label;
        }
        for (const auto &r : rates.dcaches) {
            EXPECT_GE(r.missRate(), 0.0) << w.name << " " << r.label;
            EXPECT_LE(r.missRate(), 1.0) << w.name << " " << r.label;
        }
    }
}

TEST(MissRates, HierarchyRatesAreConditionalProbabilities)
{
    const auto rates = measureHierarchyRates(
        findWorkload("126.gcc"), HierarchyConfig::reference(),
        quick());
    for (double r : {rates.icache_hit, rates.icache_l2_hit,
                     rates.load_hit, rates.load_l2_hit,
                     rates.store_hit, rates.store_l2_hit}) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    // gcc misses its L1s some of the time but the L2 catches most.
    EXPECT_LT(rates.icache_hit, 1.0);
    EXPECT_GT(rates.icache_l2_hit, 0.3);
}

TEST(MissRates, IntegratedRatesVictimHelps)
{
    const auto with_vc = measureIntegratedRates(
        findWorkload("102.swim"), true, quick());
    const auto without = measureIntegratedRates(
        findWorkload("102.swim"), false, quick());
    EXPECT_GT(with_vc.load_hit, without.load_hit);
}
