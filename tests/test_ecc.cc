/**
 * @file
 * Tests for SECDED ECC and the directory-in-ECC encoding (Figure 5).
 */

#include <gtest/gtest.h>

#include <array>

#include "mem/ecc.hh"

using namespace memwall;

TEST(SecDed, CheckBitCounts)
{
    EXPECT_EQ(SecDedCode(64).checkBits(), 8u);    // industry standard
    EXPECT_EQ(SecDedCode(128).checkBits(), 9u);   // the paper's trick
    EXPECT_EQ(SecDedCode(32).checkBits(), 7u);
}

TEST(SecDed, CleanRoundTrip64)
{
    SecDedCode code(64);
    std::array<std::uint64_t, 1> data{0xdeadbeefcafebabeull};
    const auto check = code.encode(data);
    const auto res = code.decode(data, check);
    EXPECT_EQ(res.status, EccStatus::Ok);
    EXPECT_EQ(data[0], 0xdeadbeefcafebabeull);
}

TEST(SecDed, CorrectsEverySingleDataBit64)
{
    SecDedCode code(64);
    for (unsigned bit = 0; bit < 64; ++bit) {
        std::array<std::uint64_t, 1> data{0x0123456789abcdefull};
        const auto check = code.encode(data);
        data[0] ^= (1ull << bit);
        const auto res = code.decode(data, check);
        EXPECT_EQ(res.status, EccStatus::CorrectedSingle)
            << "bit " << bit;
        EXPECT_EQ(data[0], 0x0123456789abcdefull) << "bit " << bit;
        EXPECT_EQ(res.corrected_data_bit, static_cast<int>(bit));
    }
}

TEST(SecDed, CorrectsCheckBitErrors)
{
    SecDedCode code(64);
    std::array<std::uint64_t, 1> data{42};
    const auto check = code.encode(data);
    for (unsigned bit = 0; bit < code.checkBits(); ++bit) {
        std::array<std::uint64_t, 1> copy = data;
        const auto res = code.decode(copy, check ^ (1u << bit));
        EXPECT_EQ(res.status, EccStatus::CorrectedSingle);
        EXPECT_EQ(copy[0], 42u);  // data untouched
    }
}

TEST(SecDed, DetectsDoubleBitErrors)
{
    SecDedCode code(64);
    std::array<std::uint64_t, 1> data{0xffffffff00000000ull};
    const auto check = code.encode(data);
    data[0] ^= 0b11;  // two bit flips
    const auto res = code.decode(data, check);
    EXPECT_EQ(res.status, EccStatus::DetectedDouble);
}

class SecDed128Sweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecDed128Sweep, CorrectsSingleBitAtPosition)
{
    const unsigned bit = GetParam();
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{0x1111222233334444ull,
                                      0x5555666677778888ull};
    const auto golden = data;
    const auto check = code.encode(data);
    data[bit / 64] ^= (1ull << (bit % 64));
    const auto res = code.decode(data, check);
    EXPECT_EQ(res.status, EccStatus::CorrectedSingle);
    EXPECT_EQ(data, golden);
}

INSTANTIATE_TEST_SUITE_P(Bits, SecDed128Sweep,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 100,
                                           126, 127));

TEST(SecDed, MixedWordDoubleErrorDetected128)
{
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{1, 2};
    const auto check = code.encode(data);
    data[0] ^= 1ull << 3;
    data[1] ^= 1ull << 9;
    EXPECT_EQ(code.decode(data, check).status,
              EccStatus::DetectedDouble);
}

// ---- DirectoryEccBlock ------------------------------------------------

TEST(DirectoryEcc, OverheadMath)
{
    // Standard 64-bit ECC: 4 words x 8 = 32 check bits per 32-byte
    // block. 128-bit ECC: 2 x 9 = 18 bits, freeing 14 for the
    // directory — exactly the paper's arithmetic.
    EXPECT_EQ(4 * SecDedCode(64).checkBits(), 32u);
    EXPECT_EQ(2 * SecDedCode(128).checkBits(), 18u);
    EXPECT_EQ(32u - 18u, DirectoryEccBlock::directory_bits);
    EXPECT_EQ(DirectoryEccBlock::checkOverheadBits(), 18u);
}

TEST(DirectoryEcc, StoreLoadRoundTrip)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{1, 2, 3, 4};
    block.store(data, 0x1abc);
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::Ok);
    EXPECT_EQ(out, data);
    EXPECT_EQ(block.directory(), 0x1abc);
}

TEST(DirectoryEcc, DirectoryFieldIndependentOfData)
{
    DirectoryEccBlock block;
    block.store({9, 9, 9, 9}, 0);
    block.setDirectory(0x3fff);  // all 14 bits
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::Ok);
    EXPECT_EQ(block.directory(), 0x3fff);
}

TEST(DirectoryEccDeath, DirectoryWiderThan14BitsPanics)
{
    DirectoryEccBlock block;
    EXPECT_DEATH(block.setDirectory(0x4000), "14");
}

TEST(DirectoryEcc, CorrectsInjectedDataError)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{0xa, 0xb, 0xc, 0xd};
    block.store(data, 7);
    block.injectDataError(130);  // word 2, bit 2
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
}

TEST(DirectoryEcc, CorrectsInjectedCheckError)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{1, 2, 3, 4};
    block.store(data, 7);
    block.injectCheckError(5);
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
}

TEST(DirectoryEcc, DetectsDoubleErrorInOneHalf)
{
    DirectoryEccBlock block;
    block.store({5, 6, 7, 8}, 1);
    block.injectDataError(0);
    block.injectDataError(64);  // same 128-bit half as bit 0
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::DetectedDouble);
}

TEST(DirectoryEcc, CorrectsOneErrorPerHalf)
{
    // The reduced granularity still corrects 1 bit per 128-bit word:
    // two single-bit errors in different halves both get fixed.
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{11, 22, 33, 44};
    block.store(data, 1);
    block.injectDataError(10);    // first half
    block.injectDataError(200);   // second half
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
}

// ---- Exhaustive single-bit coverage -----------------------------------

TEST(DirectoryEcc, CorrectsEveryDataBitPosition)
{
    // All 256 data bits of the 32-byte block, one at a time: each
    // flip must decode as a corrected single with the data restored.
    const std::array<std::uint64_t, 4> data{
        0x0123456789abcdefull, 0xfedcba9876543210ull,
        0x5a5a5a5aa5a5a5a5ull, 0x00ff00ff00ff00ffull};
    for (unsigned bit = 0; bit < 256; ++bit) {
        DirectoryEccBlock block;
        block.store(data, 0x2aaa);
        block.injectDataError(bit);
        std::array<std::uint64_t, 4> out{};
        EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle)
            << "data bit " << bit;
        EXPECT_EQ(out, data) << "data bit " << bit;
        EXPECT_EQ(block.directory(), 0x2aaa) << "data bit " << bit;
    }
}

TEST(DirectoryEcc, CorrectsEveryCheckBitPosition)
{
    // All 18 stored check bits (9 per 128-bit half): a flipped check
    // bit must not damage the data and must decode as corrected.
    const std::array<std::uint64_t, 4> data{
        0xdeadbeefcafebabeull, 0x0f0f0f0f0f0f0f0full,
        0x8000000000000001ull, 0x7fffffffffffffffull};
    for (unsigned bit = 0; bit < 18; ++bit) {
        DirectoryEccBlock block;
        block.store(data, 0x1555);
        block.injectCheckError(bit);
        std::array<std::uint64_t, 4> out{};
        EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle)
            << "check bit " << bit;
        EXPECT_EQ(out, data) << "check bit " << bit;
    }
}

TEST(DirectoryEcc, DetectsSampledDoubleBitGrid)
{
    // Double flips inside one 128-bit half must all be flagged
    // uncorrectable. Sweeping all (128 choose 2) pairs for both
    // halves is slow; a coprime-stride grid covers the space.
    const std::array<std::uint64_t, 4> data{
        0x123456789abcdef0ull, 0x0fedcba987654321ull,
        0xaaaaaaaa55555555ull, 0x33333333ccccccccull};
    for (unsigned half = 0; half < 2; ++half) {
        const unsigned base = half * 128;
        for (unsigned i = 0; i < 128; i += 7) {
            for (unsigned j = i + 1; j < 128; j += 13) {
                DirectoryEccBlock block;
                block.store(data, 0);
                block.injectDataError(base + i);
                block.injectDataError(base + j);
                std::array<std::uint64_t, 4> out{};
                EXPECT_EQ(block.load(out),
                          EccStatus::DetectedDouble)
                    << "half " << half << " bits " << i << "," << j;
            }
        }
    }
}

TEST(DirectoryEcc, DetectsDataPlusCheckDoubles)
{
    // A data flip paired with a check-bit flip in the same half is a
    // double too (the decoder must not miscorrect).
    const std::array<std::uint64_t, 4> data{1, 2, 3, 4};
    for (unsigned data_bit = 0; data_bit < 128; data_bit += 11) {
        for (unsigned check_bit = 0; check_bit < 9; ++check_bit) {
            DirectoryEccBlock block;
            block.store(data, 0);
            block.injectDataError(data_bit);     // first half
            block.injectCheckError(check_bit);   // first half's code
            std::array<std::uint64_t, 4> out{};
            EXPECT_EQ(block.load(out), EccStatus::DetectedDouble)
                << "data " << data_bit << " check " << check_bit;
        }
    }
}

// ---- Scrubbing (in-place repair) --------------------------------------

TEST(DirectoryEcc, ScrubRepairsStoredSingleBitError)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{10, 20, 30, 40};
    block.store(data, 3);
    block.injectDataError(100);
    EXPECT_EQ(block.scrub(), EccStatus::CorrectedSingle);
    // The stored copy is now clean: further decodes see no error.
    EXPECT_EQ(block.scrub(), EccStatus::Ok);
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::Ok);
    EXPECT_EQ(out, data);
}

TEST(DirectoryEcc, ScrubRepairsCheckBitErrorByReencoding)
{
    DirectoryEccBlock block;
    block.store({5, 6, 7, 8}, 0);
    block.injectCheckError(17);
    EXPECT_EQ(block.scrub(), EccStatus::CorrectedSingle);
    EXPECT_EQ(block.scrub(), EccStatus::Ok);
}

TEST(DirectoryEcc, ScrubPreventsSingleFromPairingIntoDouble)
{
    // The reason scrubbing exists: correct the latent single before
    // a second strike in the same half makes the block unrecoverable.
    const std::array<std::uint64_t, 4> data{0xe, 0xf, 0x10, 0x11};
    DirectoryEccBlock scrubbed, unscrubbed;
    scrubbed.store(data, 0);
    unscrubbed.store(data, 0);
    scrubbed.injectDataError(40);
    unscrubbed.injectDataError(40);
    EXPECT_EQ(scrubbed.scrub(), EccStatus::CorrectedSingle);
    // Second strike, same half, both blocks.
    scrubbed.injectDataError(90);
    unscrubbed.injectDataError(90);
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(scrubbed.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
    EXPECT_EQ(unscrubbed.load(out), EccStatus::DetectedDouble);
}

TEST(DirectoryEcc, ScrubLeavesDetectedDoubleUntouched)
{
    DirectoryEccBlock block;
    block.store({1, 1, 1, 1}, 5);
    block.injectDataError(0);
    block.injectDataError(1);
    EXPECT_EQ(block.scrub(), EccStatus::DetectedDouble);
    // Still flagged on the next pass: scrub must not "repair" what
    // it cannot correct (that is the row-sparing path's job).
    EXPECT_EQ(block.scrub(), EccStatus::DetectedDouble);
    EXPECT_EQ(block.directory(), 5u);
}
