/**
 * @file
 * Tests for SECDED ECC and the directory-in-ECC encoding (Figure 5).
 */

#include <gtest/gtest.h>

#include <array>

#include "mem/ecc.hh"

using namespace memwall;

TEST(SecDed, CheckBitCounts)
{
    EXPECT_EQ(SecDedCode(64).checkBits(), 8u);    // industry standard
    EXPECT_EQ(SecDedCode(128).checkBits(), 9u);   // the paper's trick
    EXPECT_EQ(SecDedCode(32).checkBits(), 7u);
}

TEST(SecDed, CleanRoundTrip64)
{
    SecDedCode code(64);
    std::array<std::uint64_t, 1> data{0xdeadbeefcafebabeull};
    const auto check = code.encode(data);
    const auto res = code.decode(data, check);
    EXPECT_EQ(res.status, EccStatus::Ok);
    EXPECT_EQ(data[0], 0xdeadbeefcafebabeull);
}

TEST(SecDed, CorrectsEverySingleDataBit64)
{
    SecDedCode code(64);
    for (unsigned bit = 0; bit < 64; ++bit) {
        std::array<std::uint64_t, 1> data{0x0123456789abcdefull};
        const auto check = code.encode(data);
        data[0] ^= (1ull << bit);
        const auto res = code.decode(data, check);
        EXPECT_EQ(res.status, EccStatus::CorrectedSingle)
            << "bit " << bit;
        EXPECT_EQ(data[0], 0x0123456789abcdefull) << "bit " << bit;
        EXPECT_EQ(res.corrected_data_bit, static_cast<int>(bit));
    }
}

TEST(SecDed, CorrectsCheckBitErrors)
{
    SecDedCode code(64);
    std::array<std::uint64_t, 1> data{42};
    const auto check = code.encode(data);
    for (unsigned bit = 0; bit < code.checkBits(); ++bit) {
        std::array<std::uint64_t, 1> copy = data;
        const auto res = code.decode(copy, check ^ (1u << bit));
        EXPECT_EQ(res.status, EccStatus::CorrectedSingle);
        EXPECT_EQ(copy[0], 42u);  // data untouched
    }
}

TEST(SecDed, DetectsDoubleBitErrors)
{
    SecDedCode code(64);
    std::array<std::uint64_t, 1> data{0xffffffff00000000ull};
    const auto check = code.encode(data);
    data[0] ^= 0b11;  // two bit flips
    const auto res = code.decode(data, check);
    EXPECT_EQ(res.status, EccStatus::DetectedDouble);
}

class SecDed128Sweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecDed128Sweep, CorrectsSingleBitAtPosition)
{
    const unsigned bit = GetParam();
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{0x1111222233334444ull,
                                      0x5555666677778888ull};
    const auto golden = data;
    const auto check = code.encode(data);
    data[bit / 64] ^= (1ull << (bit % 64));
    const auto res = code.decode(data, check);
    EXPECT_EQ(res.status, EccStatus::CorrectedSingle);
    EXPECT_EQ(data, golden);
}

INSTANTIATE_TEST_SUITE_P(Bits, SecDed128Sweep,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 100,
                                           126, 127));

TEST(SecDed, MixedWordDoubleErrorDetected128)
{
    SecDedCode code(128);
    std::array<std::uint64_t, 2> data{1, 2};
    const auto check = code.encode(data);
    data[0] ^= 1ull << 3;
    data[1] ^= 1ull << 9;
    EXPECT_EQ(code.decode(data, check).status,
              EccStatus::DetectedDouble);
}

// ---- DirectoryEccBlock ------------------------------------------------

TEST(DirectoryEcc, OverheadMath)
{
    // Standard 64-bit ECC: 4 words x 8 = 32 check bits per 32-byte
    // block. 128-bit ECC: 2 x 9 = 18 bits, freeing 14 for the
    // directory — exactly the paper's arithmetic.
    EXPECT_EQ(4 * SecDedCode(64).checkBits(), 32u);
    EXPECT_EQ(2 * SecDedCode(128).checkBits(), 18u);
    EXPECT_EQ(32u - 18u, DirectoryEccBlock::directory_bits);
    EXPECT_EQ(DirectoryEccBlock::checkOverheadBits(), 18u);
}

TEST(DirectoryEcc, StoreLoadRoundTrip)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{1, 2, 3, 4};
    block.store(data, 0x1abc);
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::Ok);
    EXPECT_EQ(out, data);
    EXPECT_EQ(block.directory(), 0x1abc);
}

TEST(DirectoryEcc, DirectoryFieldIndependentOfData)
{
    DirectoryEccBlock block;
    block.store({9, 9, 9, 9}, 0);
    block.setDirectory(0x3fff);  // all 14 bits
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::Ok);
    EXPECT_EQ(block.directory(), 0x3fff);
}

TEST(DirectoryEccDeath, DirectoryWiderThan14BitsPanics)
{
    DirectoryEccBlock block;
    EXPECT_DEATH(block.setDirectory(0x4000), "14");
}

TEST(DirectoryEcc, CorrectsInjectedDataError)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{0xa, 0xb, 0xc, 0xd};
    block.store(data, 7);
    block.injectDataError(130);  // word 2, bit 2
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
}

TEST(DirectoryEcc, CorrectsInjectedCheckError)
{
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{1, 2, 3, 4};
    block.store(data, 7);
    block.injectCheckError(5);
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
}

TEST(DirectoryEcc, DetectsDoubleErrorInOneHalf)
{
    DirectoryEccBlock block;
    block.store({5, 6, 7, 8}, 1);
    block.injectDataError(0);
    block.injectDataError(64);  // same 128-bit half as bit 0
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::DetectedDouble);
}

TEST(DirectoryEcc, CorrectsOneErrorPerHalf)
{
    // The reduced granularity still corrects 1 bit per 128-bit word:
    // two single-bit errors in different halves both get fixed.
    DirectoryEccBlock block;
    const std::array<std::uint64_t, 4> data{11, 22, 33, 44};
    block.store(data, 1);
    block.injectDataError(10);    // first half
    block.injectDataError(200);   // second half
    std::array<std::uint64_t, 4> out{};
    EXPECT_EQ(block.load(out), EccStatus::CorrectedSingle);
    EXPECT_EQ(out, data);
}
