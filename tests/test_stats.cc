/**
 * @file
 * Tests for counters, sample statistics, histograms and the
 * load/store miss accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

using namespace memwall;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStat, EmptyIsSafe)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    // No samples: a variance does not exist. It used to read 0.0,
    // which let a zero-unit sampled run report a zero-width
    // confidence interval; NaN poisons any arithmetic built on it.
    EXPECT_FALSE(s.hasVariance());
    EXPECT_TRUE(std::isnan(s.variance()));
    EXPECT_TRUE(std::isnan(s.stddev()));
}

TEST(SampleStat, SingleSampleHasNoVariance)
{
    SampleStat s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    // One observation says nothing about spread: the n-1 denominator
    // is zero. Regression for the 1-unit sampled run that claimed a
    // zero-width interval.
    EXPECT_FALSE(s.hasVariance());
    EXPECT_TRUE(std::isnan(s.variance()));
    EXPECT_TRUE(std::isnan(s.stddev()));
}

TEST(SampleStat, TwoSamplesGainVariance)
{
    SampleStat s;
    s.add(1.0);
    EXPECT_FALSE(s.hasVariance());
    s.add(3.0);
    EXPECT_TRUE(s.hasVariance());
    EXPECT_DOUBLE_EQ(s.variance(), 2.0);
}

TEST(SampleStat, MeanAndVariance)
{
    SampleStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStat, MinMaxTotal)
{
    SampleStat s;
    s.add(-3.0);
    s.add(10.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.total(), 9.0);
}

TEST(SampleStat, WelfordStableForLargeOffsets)
{
    SampleStat s;
    // Classic catastrophic-cancellation case for naive variance.
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + (i % 2));
    EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.total(), 0.0);
    EXPECT_FALSE(s.hasVariance());
}

namespace {

/** Two-pass textbook variance for cross-checking Welford. */
double
naiveVariance(const std::vector<double> &xs)
{
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    return ss / static_cast<double>(xs.size() - 1);
}

} // namespace

TEST(SampleStat, WelfordMatchesTwoPassOnAdversarialSequences)
{
    // Sequences chosen to break one-pass sum-of-squares: huge common
    // offsets, alternating magnitudes, near-cancellation, and a
    // monotone ramp whose mean drifts the whole run.
    const std::vector<std::vector<double>> cases = {
        {1e12, 1e12 + 1, 1e12 + 2, 1e12 + 3},
        {1e8, -1e8, 1e8, -1e8, 1e8, -1e8, 42.0},
        {3.14159, 3.14159, 3.14159, 3.1416, 3.14158},
        {1e-9, 2e-9, 3e-9, 4e-9, 5e-9},
        {1e15, 1.0, -1e15, 2.0, 1e15, 3.0},
    };
    for (const auto &xs : cases) {
        SampleStat s;
        for (double x : xs)
            s.add(x);
        const double expect = naiveVariance(xs);
        // Welford should agree with the stable two-pass formula to
        // high relative precision (absolute floor for variance ~0).
        const double tol = 1e-9 * std::max(1.0, expect);
        EXPECT_NEAR(s.variance(), expect, tol)
            << "sequence starting at " << xs.front();
    }
}

TEST(SampleStat, RampMeanStaysExact)
{
    // 0..9999 around a 1e9 offset: naive single-pass variance loses
    // every significant digit here; Welford keeps them all.
    SampleStat s;
    const double n = 10000.0;
    for (int i = 0; i < 10000; ++i)
        s.add(1e9 + i);
    EXPECT_NEAR(s.mean(), 1e9 + (n - 1) / 2.0, 1e-3);
    // Sample variance of 0..n-1 is n(n+1)/12. Welford's rounding at
    // this offset is O(10); the naive sum-of-squares formula is off
    // by O(1e6) here, so the tolerance separates them cleanly.
    EXPECT_NEAR(s.variance(), n * (n + 1.0) / 12.0, 500.0);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);
    h.add(0.5);
    h.add(9.999);
    h.add(-1.0);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLow(3), 3.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(3), 4.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.bucket(1), 10u);
}

TEST(Histogram, QuantileUniform)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, QuantileBoundaryTable)
{
    // Regression table for the quantile boundary rewrite. The old
    // implementation truncated the rank to an integer and used a
    // strict '>' walk, so p = 1.0 fell off the end (returning hi_
    // regardless of the data) and odd-count medians shifted down by
    // one sample.
    Histogram h(0.0, 10.0, 10);
    h.add(2.5);  // bucket 2
    h.add(4.5);  // bucket 4
    h.add(6.5);  // bucket 6

    // p = 0: infimum of the mass = low edge of the first occupied bin.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
    // Odd-count median: the 1.5th sample lands mid-bucket 4.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.5);
    // p = 1: high edge of the last occupied bin, not hi_.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
}

TEST(Histogram, QuantileAllUnderflow)
{
    Histogram h(10.0, 20.0, 5);
    h.add(-5.0);
    h.add(0.0);
    // Mass entirely below the range clamps every quantile to lo.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileAllOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(11.0);
    h.add(99.0);
    // Mass entirely above the range clamps every quantile to hi.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileSingleBucket)
{
    Histogram h(0.0, 8.0, 1);
    h.add(3.0, 4);
    // All mass in one bin: quantiles interpolate across its width.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(Histogram, QuantileEmptyReturnsLow)
{
    Histogram h(1.0, 2.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(AccessStats, RatesSplitByType)
{
    AccessStats s;
    s.load_hits.inc(60);
    s.load_misses.inc(20);
    s.store_hits.inc(15);
    s.store_misses.inc(5);
    EXPECT_EQ(s.accesses(), 100u);
    EXPECT_EQ(s.misses(), 25u);
    EXPECT_DOUBLE_EQ(s.missRate(), 0.25);
    EXPECT_DOUBLE_EQ(s.loadMissRate(), 0.20);
    EXPECT_DOUBLE_EQ(s.storeMissRate(), 0.05);
    // The figure-8 stacked bars: load + store fractions = total.
    EXPECT_DOUBLE_EQ(s.loadMissRate() + s.storeMissRate(),
                     s.missRate());
}

TEST(AccessStats, IdleIsZero)
{
    AccessStats s;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.loadMissRate(), 0.0);
}

TEST(AccessStats, ResetClears)
{
    AccessStats s;
    s.load_hits.inc(3);
    s.store_misses.inc(2);
    s.reset();
    EXPECT_EQ(s.accesses(), 0u);
}

TEST(PercentString, Formats)
{
    EXPECT_EQ(percentString(0.1234, 2), "12.34%");
    EXPECT_EQ(percentString(0.5, 0), "50%");
    EXPECT_EQ(percentString(1.0, 1), "100.0%");
}
