/**
 * @file
 * Tests for counters, sample statistics, histograms and the
 * load/store miss accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

using namespace memwall;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStat, EmptyIsSafe)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStat, MeanAndVariance)
{
    SampleStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStat, MinMaxTotal)
{
    SampleStat s;
    s.add(-3.0);
    s.add(10.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.total(), 9.0);
}

TEST(SampleStat, WelfordStableForLargeOffsets)
{
    SampleStat s;
    // Classic catastrophic-cancellation case for naive variance.
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + (i % 2));
    EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.total(), 0.0);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);
    h.add(0.5);
    h.add(9.999);
    h.add(-1.0);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLow(3), 3.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(3), 4.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.bucket(1), 10u);
}

TEST(Histogram, QuantileUniform)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(AccessStats, RatesSplitByType)
{
    AccessStats s;
    s.load_hits.inc(60);
    s.load_misses.inc(20);
    s.store_hits.inc(15);
    s.store_misses.inc(5);
    EXPECT_EQ(s.accesses(), 100u);
    EXPECT_EQ(s.misses(), 25u);
    EXPECT_DOUBLE_EQ(s.missRate(), 0.25);
    EXPECT_DOUBLE_EQ(s.loadMissRate(), 0.20);
    EXPECT_DOUBLE_EQ(s.storeMissRate(), 0.05);
    // The figure-8 stacked bars: load + store fractions = total.
    EXPECT_DOUBLE_EQ(s.loadMissRate() + s.storeMissRate(),
                     s.missRate());
}

TEST(AccessStats, IdleIsZero)
{
    AccessStats s;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.loadMissRate(), 0.0);
}

TEST(AccessStats, ResetClears)
{
    AccessStats s;
    s.load_hits.inc(3);
    s.store_misses.inc(2);
    s.reset();
    EXPECT_EQ(s.accesses(), 0u);
}

TEST(PercentString, Formats)
{
    EXPECT_EQ(percentString(0.1234, 2), "12.34%");
    EXPECT_EQ(percentString(0.5, 0), "50%");
    EXPECT_EQ(percentString(1.0, 1), "100.0%");
}
