/**
 * @file
 * Tests for the Table 3/4 estimation pipeline (cache sim + GSPN).
 */

#include <gtest/gtest.h>

#include "workloads/spec_eval.hh"

using namespace memwall;

namespace {

SpecEvalParams
quick()
{
    SpecEvalParams p;
    p.missrate.measured_refs = 250'000;
    p.missrate.warmup_refs = 80'000;
    p.gspn_instructions = 20'000;
    return p;
}

} // namespace

TEST(SpecEval, EstimateHasPaperStructure)
{
    const SpecEstimate est =
        estimateIntegrated(findWorkload("126.gcc"), true, quick());
    EXPECT_EQ(est.name, "126.gcc");
    EXPECT_DOUBLE_EQ(est.cpi.base, 1.01);  // Table 3 cpu component
    EXPECT_GE(est.cpi.memory, 0.0);
    EXPECT_LT(est.cpi.memory, 1.0);
    EXPECT_GT(est.spec_ratio, 3.0);
    EXPECT_LT(est.spec_ratio, 15.0);
}

TEST(SpecEval, VictimCacheReducesMemoryCpiForConflictCodes)
{
    const auto &swim = findWorkload("102.swim");
    const SpecEstimate without =
        estimateIntegrated(swim, false, quick());
    const SpecEstimate with = estimateIntegrated(swim, true, quick());
    EXPECT_LT(with.cpi.memory, 0.5 * without.cpi.memory);
    // Lower CPI means higher SPEC ratio.
    EXPECT_GT(with.spec_ratio, without.spec_ratio);
}

TEST(SpecEval, MemoryCpiNearPaperForRepresentatives)
{
    // The Table 3 "shape" targets: swim is the worst case, mgrid is
    // nearly free.
    const SpecEstimate swim =
        estimateIntegrated(findWorkload("102.swim"), false, quick());
    EXPECT_GT(swim.cpi.memory, 0.5);
    const SpecEstimate mgrid = estimateIntegrated(
        findWorkload("107.mgrid"), false, quick());
    EXPECT_LT(mgrid.cpi.memory, 0.1);
}

TEST(SpecEval, SlowerDramRaisesCpi)
{
    SpecEvalParams fast = quick();
    fast.bank_access = 2.0;  // 10 ns
    SpecEvalParams slow = quick();
    slow.bank_access = 14.0;  // 70 ns
    const auto &go = findWorkload("099.go");
    const double cpi_fast =
        estimateIntegrated(go, true, fast).cpi.total();
    const double cpi_slow =
        estimateIntegrated(go, true, slow).cpi.total();
    EXPECT_GT(cpi_slow, cpi_fast);
}

TEST(SpecEval, ReferenceSystemSensitiveToMemoryLatency)
{
    const auto &gcc = findWorkload("126.gcc");
    const double near =
        estimateReference(gcc, 6.0, 10.0, quick()).cpi.total();
    const double far =
        estimateReference(gcc, 6.0, 80.0, quick()).cpi.total();
    EXPECT_GT(far, near + 0.1);
}

TEST(SpecEval, IntegratedBeatsTypicalConventional)
{
    // Figure 11/12 punchline: at the 30 ns design point the
    // integrated device's CPI is well below the conventional
    // system's in its typical operating region (L2 6 cycles, memory
    // 150 ns = 30 cycles).
    const auto &gcc = findWorkload("126.gcc");
    const double integrated =
        estimateIntegrated(gcc, true, quick()).cpi.total();
    const double conventional =
        estimateReference(gcc, 6.0, 30.0, quick()).cpi.total();
    EXPECT_LT(integrated, conventional);
}

TEST(SpecEval, SuiteRunsAllTableRows)
{
    SpecEvalParams p = quick();
    p.missrate.measured_refs = 60'000;
    p.missrate.warmup_refs = 20'000;
    p.gspn_instructions = 5'000;
    const auto rows = estimateSuite(true, p);
    EXPECT_EQ(rows.size(), 18u);
    for (const auto &row : rows) {
        EXPECT_GE(row.cpi.total(), 1.0) << row.name;
        EXPECT_GT(row.spec_ratio, 0.0) << row.name;
    }
}

TEST(SpecEval, BankUtilisationIsLowAtDesignPoint)
{
    // Section 5.6: "in gcc each of the 16 banks are busy only 1.2%
    // of the time".
    const SpecEstimate est =
        estimateIntegrated(findWorkload("126.gcc"), true, quick());
    EXPECT_LT(est.bank_utilisation, 0.06);
}

TEST(SpecEval, FewerBanksRaiseUtilisationNotCpi)
{
    SpecEvalParams two = quick();
    two.banks = 2;
    SpecEvalParams sixteen = quick();
    sixteen.banks = 16;
    const auto &gcc = findWorkload("126.gcc");
    const SpecEstimate est2 = estimateIntegrated(gcc, true, two);
    const SpecEstimate est16 =
        estimateIntegrated(gcc, true, sixteen);
    EXPECT_GT(est2.bank_utilisation, est16.bank_utilisation);
    // "the performance differences were below the error limits".
    EXPECT_NEAR(est2.cpi.total(), est16.cpi.total(),
                0.15 * est16.cpi.total());
}
