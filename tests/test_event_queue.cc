/**
 * @file
 * Tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace memwall;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); },
               EventPriority::Default);
    q.schedule(5, [&] { order.push_back(2); },
               EventPriority::Default);
    q.schedule(5, [&] { order.push_back(0); }, EventPriority::High);
    q.schedule(5, [&] { order.push_back(3); }, EventPriority::Low);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    int fired = 0;
    const auto ticket = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(q.deschedule(ticket));
    EXPECT_FALSE(q.deschedule(ticket));  // already cancelled
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, AdvanceToMovesClockPastQuiet)
{
    EventQueue q;
    q.advanceTo(42);
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, AdvanceToRunsDueEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(50, [&] { ++fired; });
    q.advanceTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i + 1, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 5u);
}
