/**
 * @file
 * Tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using namespace memwall;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); },
               EventPriority::Default);
    q.schedule(5, [&] { order.push_back(2); },
               EventPriority::Default);
    q.schedule(5, [&] { order.push_back(0); }, EventPriority::High);
    q.schedule(5, [&] { order.push_back(3); }, EventPriority::Low);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    int fired = 0;
    const auto ticket = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(q.deschedule(ticket));
    EXPECT_FALSE(q.deschedule(ticket));  // already cancelled
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, AdvanceToMovesClockPastQuiet)
{
    EventQueue q;
    q.advanceTo(42);
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, AdvanceToRunsDueEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(50, [&] { ++fired; });
    q.advanceTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i + 1, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 5u);
}

// ---- Periodic series regression tests ---------------------------------
//
// schedulePeriodic's ticket identifies the whole series (stable
// across re-arms), and cancelling it from inside the series' own
// callback must neither re-arm the series nor destroy the executing
// function mid-call.

TEST(EventQueuePeriodic, TicketStaysValidAcrossRearms)
{
    EventQueue q;
    int fired = 0;
    const auto ticket = q.schedulePeriodic(10, [&fired] {
        ++fired;
        return true;
    });
    q.advanceTo(25);  // fires at 10 and 20
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(q.deschedule(ticket));
    q.advanceTo(1'000);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueuePeriodic, SelfCancelFromCallbackStopsSeries)
{
    EventQueue q;
    int fired = 0;
    std::uint64_t ticket = 0;
    ticket = q.schedulePeriodic(10, [&] {
        ++fired;
        // Cancel the series from inside its own callback, then keep
        // returning true: the cancel must win over the re-arm.
        EXPECT_TRUE(q.deschedule(ticket));
        return true;
    });
    q.advanceTo(1'000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueuePeriodic, SelfCancelInvalidatesTicketExactlyOnce)
{
    EventQueue q;
    std::uint64_t ticket = 0;
    int cancels = 0;
    ticket = q.schedulePeriodic(10, [&] {
        if (q.deschedule(ticket))
            ++cancels;
        // A second deschedule with the same ticket must miss.
        EXPECT_FALSE(q.deschedule(ticket));
        return false;
    });
    q.advanceTo(1'000);
    EXPECT_EQ(cancels, 1);
    EXPECT_FALSE(q.deschedule(ticket));
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueuePeriodic, SelfCancelDoesNotDestroyRunningCallback)
{
    EventQueue q;
    // The callback touches its own captured state AFTER the
    // deschedule call; if cancelling freed the executing function
    // this would read freed memory (caught by ASan builds).
    auto guard = std::make_shared<int>(1234);
    std::uint64_t ticket = 0;
    int observed = 0;
    ticket = q.schedulePeriodic(7, [&q, &ticket, &observed, guard] {
        q.deschedule(ticket);
        observed = *guard;  // capture must still be alive
        return true;
    });
    q.advanceTo(100);
    EXPECT_EQ(observed, 1234);
}

TEST(EventQueuePeriodic, SlotReuseAfterSeriesEndsIsClean)
{
    EventQueue q;
    int fired = 0;
    const auto ticket =
        q.schedulePeriodic(5, [&fired] { return ++fired < 2; });
    q.advanceTo(100);
    EXPECT_EQ(fired, 2);
    // The series ended; its slot may be reused by a fresh one-shot.
    int oneshot = 0;
    q.scheduleIn(5, [&oneshot] { ++oneshot; });
    // The stale series ticket must not cancel the new event.
    EXPECT_FALSE(q.deschedule(ticket));
    q.advanceTo(200);
    EXPECT_EQ(oneshot, 1);
}

TEST(EventQueuePeriodic, CancelPendingSeriesReleasesState)
{
    EventQueue q;
    auto guard = std::make_shared<int>(1);
    std::weak_ptr<int> watch = guard;
    const auto ticket =
        q.schedulePeriodic(10, [guard] { return true; });
    guard.reset();
    EXPECT_FALSE(watch.expired());  // held by the pending series
    EXPECT_TRUE(q.deschedule(ticket));
    EXPECT_TRUE(watch.expired());  // released at cancel, not at fire
    q.advanceTo(100);
    EXPECT_EQ(q.pending(), 0u);
}
