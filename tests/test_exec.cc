/**
 * @file
 * Tests for the execution fast path: every program must behave
 * bit-for-bit like the functional interpreter — registers, pc,
 * stats, stop reasons, fault addresses and reference streams — while
 * actually exercising the fast traces, the side exits, the fallback
 * rules and the read-only-code guard.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/lowering.hh"
#include "exec/fast_executor.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"

using namespace memwall;

namespace {

/** The same program on both engines, compared field by field. */
struct DualMachine
{
    AssembledProgram prog;
    BackingStore imem;
    BackingStore fmem;
    Interpreter icpu{imem};
    FastExecutor fcpu;

    explicit DualMachine(const std::string &src)
        : prog(assembleOrDie(src)), fcpu(fmem, prog)
    {
        prog.loadInto(imem);
        prog.loadInto(fmem);
        icpu.setPc(prog.entry);
        fcpu.setPc(prog.entry);
        fcpu.setFastPath(true);  // tests must not depend on the env
    }

    /** Run both engines for @p budget and assert full agreement. */
    void
    expectLockstep(std::uint64_t budget)
    {
        std::vector<MemRef> irefs, frefs;
        const RefSink isink = [&](const MemRef &r) {
            irefs.push_back(r);
        };
        const StopReason si = icpu.run(budget, &isink);
        const StopReason sf = fcpu.runInto(
            budget, [&](const MemRef &r) { frefs.push_back(r); });

        EXPECT_EQ(si, sf);
        EXPECT_EQ(icpu.lastStop(), fcpu.lastStop());
        EXPECT_EQ(icpu.state().pc, fcpu.state().pc);
        for (unsigned i = 0; i < 32; ++i)
            EXPECT_EQ(icpu.state().reg(i), fcpu.state().reg(i))
                << "r" << i;
        EXPECT_EQ(icpu.stats().instructions,
                  fcpu.stats().instructions);
        EXPECT_EQ(icpu.stats().loads, fcpu.stats().loads);
        EXPECT_EQ(icpu.stats().stores, fcpu.stats().stores);
        EXPECT_EQ(icpu.stats().branches, fcpu.stats().branches);
        EXPECT_EQ(icpu.stats().taken_branches,
                  fcpu.stats().taken_branches);
        ASSERT_EQ(irefs.size(), frefs.size());
        for (std::size_t i = 0; i < irefs.size(); ++i)
            EXPECT_TRUE(irefs[i] == frefs[i]) << "ref " << i;
    }
};

/** Programmatic program: raw words all marked as instructions. */
AssembledProgram
rawProgram(Addr base, const std::vector<std::uint32_t> &words)
{
    AssembledProgram prog;
    prog.entry = base;
    for (std::size_t i = 0; i < words.size(); ++i) {
        const Addr a = base + 4 * i;
        prog.words[a] = words[i];
        prog.source_map.instr_lines[a] =
            static_cast<unsigned>(i + 1);
    }
    return prog;
}

} // namespace

TEST(FastExec, ArithmeticEquivalence)
{
    DualMachine m(R"(
        addi r1, r0, 6
        addi r2, r0, 7
        mul  r3, r1, r2
        sub  r4, r3, r1
        halt
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.state().reg(3), 42u);
    // The whole program ran on the fast path.
    EXPECT_EQ(m.fcpu.fastStats().fast_instructions, 5u);
    EXPECT_EQ(m.fcpu.fastStats().fallback_steps, 0u);
}

TEST(FastExec, LoopEquivalence)
{
    DualMachine m(R"(
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    m.expectLockstep(1000);
    EXPECT_EQ(m.fcpu.state().reg(2), 55u);
    EXPECT_GT(m.fcpu.fastStats().traces, 1u);
    EXPECT_EQ(m.fcpu.fastStats().fallback_steps, 0u);
}

TEST(FastExec, MemoryWidthsEquivalence)
{
    DualMachine m(R"(
        li  r10, 0x10000
        li  r1, 0x89abcdef
        sw  r1, 0(r10)
        lw  r2, 0(r10)
        lh  r3, 0(r10)
        lhu r4, 0(r10)
        lb  r5, 0(r10)
        lbu r6, 0(r10)
        sb  r5, 8(r10)
        sh  r3, 12(r10)
        halt
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.state().reg(3), 0xffffcdefu);
    EXPECT_EQ(m.fcpu.state().reg(5), 0xffffffefu);
    // Loads of never-written pages read zero without materialising.
    EXPECT_EQ(m.imem.allocatedPages(), m.fmem.allocatedPages());
}

TEST(FastExec, CallAndReturnEquivalence)
{
    DualMachine m(R"(
        start:
            addi r1, r0, 5
            jal  ra, double
            mv   r4, r1
            halt
        double:
            add  r1, r1, r1
            ret
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.state().reg(4), 10u);
    // Calls and returns stay on the fast path: the CFG resolves
    // `jalr r0, ra` as a return, not an unknown indirect.
    EXPECT_EQ(m.fcpu.fastStats().fallback_steps, 0u);
}

TEST(FastExec, DivisionOverflowEquivalence)
{
    DualMachine m(R"(
        li   r1, 0x80000000
        addi r2, r0, -1
        div  r3, r1, r2
        rem  r4, r1, r2
        halt
    )");
    m.expectLockstep(100);
    // INT_MIN / -1 wraps; INT_MIN % -1 is zero (no UB on the host).
    EXPECT_EQ(m.fcpu.state().reg(3), 0x80000000u);
    EXPECT_EQ(m.fcpu.state().reg(4), 0u);
}

TEST(FastExec, DivideByZeroFaultMidTrace)
{
    // The trapping div sits mid-trace between retiring adds: the
    // side exit must stop at its pc without retiring it — exactly
    // like the interpreter, even with rd == r0.
    DualMachine m(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        div  r0, r1, r0
        addi r4, r0, 4
        halt
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::DivideByZero);
    EXPECT_EQ(m.fcpu.stats().instructions, 2u);
    EXPECT_EQ(m.fcpu.state().reg(4), 0u);
    EXPECT_EQ(m.fcpu.state().pc, m.prog.entry + 8);
}

TEST(FastExec, InstrLimitMidTrace)
{
    // Budget 3 lands in the middle of a 6-instruction straight-line
    // trace: the cut must retire exactly 3 and leave the pc on the
    // 4th instruction, like the interpreter.
    DualMachine m(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        addi r4, r0, 4
        addi r5, r0, 5
        halt
    )");
    m.expectLockstep(3);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::InstrLimit);
    EXPECT_EQ(m.fcpu.stats().instructions, 3u);
    EXPECT_EQ(m.fcpu.state().pc, m.prog.entry + 12);
    EXPECT_EQ(m.fcpu.state().reg(3), 3u);
    EXPECT_EQ(m.fcpu.state().reg(4), 0u);
    // Continuation after a mid-trace cut is seamless.
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.state().reg(5), 5u);
}

TEST(FastExec, SingleStepLoopMatchesRun)
{
    const char *src = R"(
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )";
    DualMachine whole(src);
    whole.expectLockstep(1000);

    // run(1) in a loop — every trace cut to one op — must land in
    // the identical final state.
    DualMachine stepped(src);
    while (stepped.fcpu.run(1) == StopReason::InstrLimit &&
           stepped.fcpu.stats().instructions < 1000) {
    }
    EXPECT_EQ(stepped.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(stepped.fcpu.state().pc, whole.fcpu.state().pc);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(stepped.fcpu.state().reg(i),
                  whole.fcpu.state().reg(i));
    EXPECT_EQ(stepped.fcpu.stats().instructions,
              whole.fcpu.stats().instructions);
    EXPECT_EQ(stepped.fcpu.stats().taken_branches,
              whole.fcpu.stats().taken_branches);
}

TEST(FastExec, RunZeroPreservesLastStop)
{
    DualMachine m("halt\n");
    m.expectLockstep(10);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    // A zero budget reports InstrLimit but must not clobber the
    // recorded stop reason — on either engine.
    EXPECT_EQ(m.icpu.run(0), StopReason::InstrLimit);
    EXPECT_EQ(m.fcpu.run(0), StopReason::InstrLimit);
    EXPECT_EQ(m.icpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
}

TEST(FastExec, AlignmentFaultMidTrace)
{
    // The faulting lw sits mid-trace between retiring adds: the side
    // exit must stop at its pc without retiring it, with the fetch
    // ref emitted but no load ref — exactly like the interpreter.
    DualMachine m(R"(
        li   r10, 0x10001
        addi r1, r0, 1
        addi r2, r0, 2
        lw   r3, 0(r10)
        addi r4, r0, 4
        halt
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::AlignmentFault);
    EXPECT_EQ(m.fcpu.faultAddr(), 0x10001u);
    EXPECT_EQ(m.fcpu.stats().loads, 0u);
    EXPECT_EQ(m.fcpu.state().reg(4), 0u);
    EXPECT_EQ(m.fcpu.state().pc, m.prog.entry + 16);  // li is 2 words
}

TEST(FastExec, MisalignedStoreFaultEquivalence)
{
    DualMachine m(R"(
        li  r10, 0x10003
        sh  r0, 0(r10)
        halt
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::AlignmentFault);
    EXPECT_EQ(m.fcpu.stats().stores, 0u);
}

TEST(FastExec, TrapOffPageStraddleEquivalence)
{
    // With the alignment trap off, a word access straddling a 4 KiB
    // page boundary must take the slow path and wrap bytes exactly
    // like BackingStore's scalar reads.
    DualMachine m(R"(
        li  r10, 0x10ffe
        li  r1, 0xa1b2c3d4
        sw  r1, 0(r10)
        lw  r2, 0(r10)
        lh  r3, 0(r10)
        halt
    )");
    m.icpu.setAlignmentTrap(false);
    m.fcpu.setAlignmentTrap(false);
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.state().reg(2), 0xa1b2c3d4u);
}

TEST(FastExec, UnknownIndirectFallsBack)
{
    // The jalr target comes out of memory, so the CFG cannot resolve
    // it: that block is ineligible and interpreter-stepped, but the
    // program still runs to the right answer.
    DualMachine m(R"(
        start:
            la   r1, slot
            la   r2, target
            sw   r2, 0(r1)
            lw   r3, 0(r1)
            jalr r0, r3
            halt
        target:
            addi r4, r0, 77
            halt
        slot:
            .space 4
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.state().reg(4), 77u);
    EXPECT_GT(m.fcpu.fastStats().fallback_steps, 0u);
    EXPECT_GT(m.fcpu.plan().unknownSuccFallbackOps(), 0u);
}

TEST(FastExec, JumpOutsideDecodedRange)
{
    // A computed jump past the decoded code lands in zero-filled
    // memory; both engines execute whatever decodes there until the
    // budget runs out — the fast path via per-instruction fallback.
    DualMachine m(R"(
        li   r1, 0x80000
        jalr r0, r1
        halt
    )");
    m.expectLockstep(64);
    EXPECT_EQ(m.fcpu.plan().indexAt(0x80000), ExecPlan::npos);
    EXPECT_GT(m.fcpu.fastStats().fallback_steps, 0u);
}

TEST(FastExec, AdjacentDataWritesDoNotFatal)
{
    // Data words immediately adjacent to code: stores to them must
    // not trip the read-only-code guard (the check is per actual
    // instruction word, not a coarse range) and must not perturb
    // execution of the neighbouring code.
    DualMachine m(R"(
        start:
            la   r1, counter
            addi r2, r0, 3
        loop:
            lw   r3, 0(r1)
            addi r3, r3, 5
            sw   r3, 0(r1)
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
        counter:
            .word 100
    )");
    m.expectLockstep(1000);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.state().reg(3), 115u);
    EXPECT_EQ(m.fmem.readU32(m.prog.symbol("counter")), 115u);
    EXPECT_EQ(m.fcpu.fastStats().fallback_steps, 0u);
}

TEST(FastExecDeathTest, StoreIntoCodeIsFatal)
{
    // Guest code is read-only: a store that would land on a decoded
    // instruction word aborts the simulation before any corruption,
    // because the pre-decoded plan would otherwise go stale.
    const auto prog = assembleOrDie(R"(
        start:
            sw  r0, 0(r1)
            halt
    )");
    BackingStore mem;
    prog.loadInto(mem);
    FastExecutor cpu(mem, prog);
    cpu.setFastPath(true);
    cpu.setPc(prog.entry);
    cpu.state().setReg(1, static_cast<std::uint32_t>(prog.entry));
    EXPECT_EXIT(cpu.run(10), testing::ExitedWithCode(1),
                "store into guest code");
}

TEST(FastExecDeathTest, StoreIntoCodeOnFallbackPathIsFatal)
{
    // The same guard protects interpreter-stepped (ineligible)
    // instructions: here the store shares a block with an
    // unresolvable jalr, so it executes on the fallback path.
    const auto prog = assembleOrDie(R"(
        start:
            la   r1, slot
            lw   r2, 0(r1)
            sw   r0, 0(r3)
            jalr r0, r2
            halt
        slot:
            .space 4
    )");
    BackingStore mem;
    prog.loadInto(mem);
    FastExecutor cpu(mem, prog);
    cpu.setFastPath(true);
    cpu.setPc(prog.entry);
    cpu.state().setReg(3, static_cast<std::uint32_t>(prog.entry));
    EXPECT_EXIT(cpu.run(10), testing::ExitedWithCode(1),
                "store into guest code");
}

TEST(FastExec, BadWordSideExit)
{
    // A word marked as an instruction that fails to decode stops
    // with BadInstruction after its fetch ref, without retiring.
    const Addr base = 0x1000;
    auto prog = rawProgram(
        base, {Instruction::i(Opcode::Addi, 1, 0, 9).encode(),
               0xf4000000u,  // invalid opcode
               Instruction::halt().encode()});

    BackingStore imem, fmem;
    prog.loadInto(imem);
    prog.loadInto(fmem);
    Interpreter icpu(imem);
    FastExecutor fcpu(fmem, prog);
    fcpu.setFastPath(true);
    icpu.setPc(base);
    fcpu.setPc(base);

    std::vector<MemRef> irefs, frefs;
    const RefSink isink = [&](const MemRef &r) {
        irefs.push_back(r);
    };
    EXPECT_EQ(icpu.run(10, &isink), StopReason::BadInstruction);
    EXPECT_EQ(fcpu.runInto(10,
                           [&](const MemRef &r) {
                               frefs.push_back(r);
                           }),
              StopReason::BadInstruction);
    EXPECT_EQ(icpu.state().pc, fcpu.state().pc);
    EXPECT_EQ(fcpu.state().pc, base + 4);
    EXPECT_EQ(icpu.stats().instructions, fcpu.stats().instructions);
    EXPECT_EQ(fcpu.stats().instructions, 1u);
    ASSERT_EQ(irefs.size(), frefs.size());
    for (std::size_t i = 0; i < irefs.size(); ++i)
        EXPECT_TRUE(irefs[i] == frefs[i]);
}

TEST(FastExec, FastPathOffMatchesInterpreter)
{
    DualMachine m(R"(
        li   r10, 0x20000
        addi r1, r0, 25
    loop:
        sw   r1, 0(r10)
        lw   r2, 0(r10)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    m.fcpu.setFastPath(false);
    m.expectLockstep(10000);
    EXPECT_EQ(m.fcpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.fcpu.fastStats().fast_instructions, 0u);
    EXPECT_EQ(m.fcpu.fastStats().traces, 0u);
}

TEST(FastExec, EnvVarDisablesFastPath)
{
    const auto prog = assembleOrDie("halt\n");
    BackingStore mem;
    setenv("MEMWALL_FASTPATH", "0", 1);
    FastExecutor off(mem, prog);
    EXPECT_FALSE(off.fastPath());
    setenv("MEMWALL_FASTPATH", "1", 1);
    FastExecutor on(mem, prog);
    EXPECT_TRUE(on.fastPath());
    unsetenv("MEMWALL_FASTPATH");
    FastExecutor dflt(mem, prog);
    EXPECT_TRUE(dflt.fastPath());
}

TEST(ExecPlan, TraceBreaksAtControlAndCalls)
{
    const auto prog = assembleOrDie(R"(
        start:
            addi r1, r0, 1
            addi r2, r0, 2
            jal  ra, callee
            addi r3, r0, 3
            halt
        callee:
            addi r4, r0, 4
            ret
    )");
    const ExecPlan plan = ExecPlan::build(prog);
    ASSERT_TRUE(plan.enabled());
    ASSERT_EQ(plan.size(), 7u);
    // The CFG keeps a call inside its block (fall-through), but the
    // dynamic trace must break at it: execution redirects to the
    // callee.
    EXPECT_EQ(plan.traceEnd(0), 2u);
    EXPECT_EQ(plan.traceEnd(1), 2u);
    EXPECT_EQ(plan.traceEnd(2), 2u);
    EXPECT_EQ(plan.traceEnd(3), 4u);  // addi; halt
    EXPECT_EQ(plan.traceEnd(5), 6u);  // callee: addi; ret
    for (std::size_t i = 0; i < plan.size(); ++i)
        EXPECT_TRUE(plan.eligible(i)) << i;
}

TEST(ExecPlan, ImmediateFolding)
{
    const auto prog = assembleOrDie(R"(
        lui  r1, 0x1234
        addi r2, r0, -5
        ori  r3, r0, -1
        andi r4, r1, -256
        slli r5, r1, 4
        add  r0, r1, r2
        halt
    )");
    const ExecPlan plan = ExecPlan::build(prog);
    ASSERT_TRUE(plan.enabled());
    const MicroOp *ops = plan.ops();
    EXPECT_EQ(ops[0].kind, MicroKind::LoadConst);
    EXPECT_EQ(ops[0].imm, 0x12340000);
    EXPECT_EQ(ops[1].kind, MicroKind::LoadConst);
    EXPECT_EQ(ops[1].imm, -5);
    // ori with rs1 == r0 folds to the ZERO-extended constant.
    EXPECT_EQ(ops[2].kind, MicroKind::LoadConst);
    EXPECT_EQ(ops[2].imm, 0xffff);
    EXPECT_EQ(ops[3].kind, MicroKind::Andi);
    EXPECT_EQ(ops[3].imm, 0xff00);
    EXPECT_EQ(ops[4].kind, MicroKind::Slli);
    EXPECT_EQ(ops[4].imm, 4);
    // An ALU op writing r0 folds to a retiring Nop.
    EXPECT_EQ(ops[5].kind, MicroKind::Nop);
    EXPECT_EQ(ops[6].kind, MicroKind::Halt);
}

TEST(ExecPlan, AddressTableAndCodeQueries)
{
    const auto prog = assembleOrDie(R"(
        start:
            addi r1, r0, 1
            halt
        data:
            .word 0xdeadbeef
    )");
    const ExecPlan plan = ExecPlan::build(prog);
    ASSERT_TRUE(plan.enabled());
    const Addr entry = prog.entry;
    EXPECT_EQ(plan.indexAt(entry), 0u);
    EXPECT_EQ(plan.indexAt(entry + 4), 1u);
    EXPECT_EQ(plan.indexAt(entry + 2), ExecPlan::npos);
    EXPECT_EQ(plan.indexAt(entry - 4), ExecPlan::npos);
    EXPECT_TRUE(plan.isCode(entry));
    EXPECT_TRUE(plan.isCode(entry + 5));  // bytes within the halt
    // The trailing .word is data, not code.
    EXPECT_FALSE(plan.isCode(prog.symbol("data")));
}

TEST(FastExec, R0NeverWritten)
{
    DualMachine m(R"(
        addi r0, r0, 99
        lui  r0, 0xffff
        li   r10, 0x30000
        lw   r0, 0(r10)
        addi r1, r0, 1
        halt
    )");
    m.expectLockstep(100);
    EXPECT_EQ(m.fcpu.state().reg(0), 0u);
    EXPECT_EQ(m.fcpu.state().reg(1), 1u);
    // The discarded load still counts and still emits its ref.
    EXPECT_EQ(m.fcpu.stats().loads, 1u);
}
