/**
 * @file
 * Tests for the MW32 functional interpreter: real programs compute
 * real answers and emit the right reference streams.
 */

#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.hh"
#include "isa/interpreter.hh"

using namespace memwall;

namespace {

/** Assemble, load and return an interpreter positioned at entry. */
struct TestMachine
{
    BackingStore mem;
    Interpreter cpu{mem};

    explicit TestMachine(const std::string &src)
    {
        const auto prog = assembleOrDie(src);
        prog.loadInto(mem);
        cpu.setPc(prog.entry);
    }
};

} // namespace

TEST(Interpreter, ArithmeticBasics)
{
    TestMachine m(R"(
        addi r1, r0, 6
        addi r2, r0, 7
        mul  r3, r1, r2
        sub  r4, r3, r1
        halt
    )");
    EXPECT_EQ(m.cpu.run(100), StopReason::Halted);
    EXPECT_EQ(m.cpu.state().reg(3), 42u);
    EXPECT_EQ(m.cpu.state().reg(4), 36u);
}

TEST(Interpreter, R0IsHardwiredZero)
{
    TestMachine m(R"(
        addi r0, r0, 99
        addi r1, r0, 1
        halt
    )");
    m.cpu.run(100);
    EXPECT_EQ(m.cpu.state().reg(0), 0u);
    EXPECT_EQ(m.cpu.state().reg(1), 1u);
}

TEST(Interpreter, LoopComputesSum)
{
    // Sum 1..10 = 55.
    TestMachine m(R"(
        addi r1, r0, 10    ; counter
        addi r2, r0, 0     ; acc
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    EXPECT_EQ(m.cpu.run(1000), StopReason::Halted);
    EXPECT_EQ(m.cpu.state().reg(2), 55u);
    EXPECT_EQ(m.cpu.stats().taken_branches, 9u);
    EXPECT_EQ(m.cpu.stats().branches, 10u);
}

TEST(Interpreter, MemoryRoundTripAllWidths)
{
    TestMachine m(R"(
        li  r10, 0x10000
        li  r1, 0x89abcdef
        sw  r1, 0(r10)
        lw  r2, 0(r10)
        lh  r3, 0(r10)      ; sign-extended 0xcdef
        lhu r4, 0(r10)
        lb  r5, 0(r10)      ; sign-extended 0xef
        lbu r6, 0(r10)
        halt
    )");
    m.cpu.run(100);
    EXPECT_EQ(m.cpu.state().reg(2), 0x89abcdefu);
    EXPECT_EQ(m.cpu.state().reg(3), 0xffffcdefu);
    EXPECT_EQ(m.cpu.state().reg(4), 0x0000cdefu);
    EXPECT_EQ(m.cpu.state().reg(5), 0xffffffefu);
    EXPECT_EQ(m.cpu.state().reg(6), 0x000000efu);
}

TEST(Interpreter, ByteAndHalfStores)
{
    TestMachine m(R"(
        li  r10, 0x20000
        li  r1, 0x12345678
        sw  r1, 0(r10)
        addi r2, r0, 0
        sb  r2, 0(r10)
        lw  r3, 0(r10)
        sh  r2, 2(r10)
        lw  r4, 0(r10)
        halt
    )");
    m.cpu.run(100);
    EXPECT_EQ(m.cpu.state().reg(3), 0x12345600u);
    EXPECT_EQ(m.cpu.state().reg(4), 0x00005600u);
}

TEST(Interpreter, CallAndReturn)
{
    TestMachine m(R"(
        start:
            addi r1, r0, 5
            jal  ra, double
            mv   r4, r1
            halt
        double:
            add  r1, r1, r1
            ret
    )");
    EXPECT_EQ(m.cpu.run(100), StopReason::Halted);
    EXPECT_EQ(m.cpu.state().reg(4), 10u);
}

TEST(Interpreter, ShiftAndCompare)
{
    TestMachine m(R"(
        addi r1, r0, -8
        srai r2, r1, 1      ; -4
        srli r3, r1, 28     ; 0xf
        slti r4, r1, 0      ; 1
        sltu r5, r0, r1     ; 1 (unsigned -8 is huge)
        halt
    )");
    m.cpu.run(100);
    EXPECT_EQ(static_cast<std::int32_t>(m.cpu.state().reg(2)), -4);
    EXPECT_EQ(m.cpu.state().reg(3), 0xfu);
    EXPECT_EQ(m.cpu.state().reg(4), 1u);
    EXPECT_EQ(m.cpu.state().reg(5), 1u);
}

TEST(Interpreter, DivisionSemantics)
{
    TestMachine m(R"(
        addi r1, r0, 7
        addi r2, r0, 2
        div  r3, r1, r2
        rem  r4, r1, r2
        halt
    )");
    m.cpu.run(100);
    EXPECT_EQ(m.cpu.state().reg(3), 3u);
    EXPECT_EQ(m.cpu.state().reg(4), 1u);
}

TEST(Interpreter, DivideByZeroTraps)
{
    TestMachine m(R"(
        addi r1, r0, 7
        div  r5, r1, r0    ; zero divisor -> trap
        halt
    )");
    const Addr entry = m.cpu.state().pc;
    EXPECT_EQ(m.cpu.run(100), StopReason::DivideByZero);
    // The faulting div doesn't retire, writes nothing, and leaves
    // the pc on itself.
    EXPECT_EQ(m.cpu.stats().instructions, 1u);
    EXPECT_EQ(m.cpu.state().reg(5), 0u);
    EXPECT_EQ(m.cpu.state().pc, entry + 4);
}

TEST(Interpreter, RemainderByZeroTraps)
{
    TestMachine m(R"(
        addi r1, r0, 7
        rem  r0, r1, r0    ; traps even though rd is r0
        halt
    )");
    EXPECT_EQ(m.cpu.run(100), StopReason::DivideByZero);
    EXPECT_EQ(m.cpu.stats().instructions, 1u);
}

TEST(Interpreter, InstructionLimitStops)
{
    TestMachine m(R"(
        loop: b loop
    )");
    EXPECT_EQ(m.cpu.run(50), StopReason::InstrLimit);
    EXPECT_EQ(m.cpu.stats().instructions, 50u);
}

TEST(Interpreter, BadInstructionStops)
{
    TestMachine m(".word 0xf4000000\n");  // invalid opcode 0x3d
    EXPECT_EQ(m.cpu.run(10), StopReason::BadInstruction);
}

TEST(Interpreter, EmitsReferenceStream)
{
    TestMachine m(R"(
        li  r10, 0x30000
        lw  r1, 0(r10)
        sw  r1, 4(r10)
        halt
    )");
    std::vector<MemRef> refs;
    const RefSink sink = [&](const MemRef &r) { refs.push_back(r); };
    m.cpu.run(100, &sink);

    // 5 instructions (li = 2) -> 5 fetches + 1 load + 1 store.
    unsigned fetches = 0, loads = 0, stores = 0;
    for (const auto &r : refs) {
        switch (r.type) {
          case RefType::IFetch: ++fetches; break;
          case RefType::Load: ++loads; break;
          case RefType::Store: ++stores; break;
        }
    }
    EXPECT_EQ(fetches, 5u);
    EXPECT_EQ(loads, 1u);
    EXPECT_EQ(stores, 1u);
    // The load's effective address and size are right.
    for (const auto &r : refs)
        if (r.type == RefType::Load) {
            EXPECT_EQ(r.addr, 0x30000u);
            EXPECT_EQ(r.size, 4u);
        }
}

TEST(Interpreter, StatsCountLoadsAndStores)
{
    TestMachine m(R"(
        li r10, 0x40000
        sw r0, 0(r10)
        lw r1, 0(r10)
        lw r2, 0(r10)
        halt
    )");
    m.cpu.run(100);
    EXPECT_EQ(m.cpu.stats().loads, 2u);
    EXPECT_EQ(m.cpu.stats().stores, 1u);
}

TEST(Interpreter, MisalignedWordAccessTrapsByDefault)
{
    TestMachine m(R"(
        li  r10, 0x10001
        lw  r1, 0(r10)
        halt
    )");
    EXPECT_TRUE(m.cpu.alignmentTrap());
    EXPECT_EQ(m.cpu.run(100), StopReason::AlignmentFault);
    EXPECT_EQ(m.cpu.faultAddr(), 0x10001u);
    // The faulting instruction does not retire.
    EXPECT_EQ(m.cpu.stats().instructions, 2u);
    EXPECT_EQ(m.cpu.stats().loads, 0u);
}

TEST(Interpreter, MisalignedHalfwordStoreTraps)
{
    TestMachine m(R"(
        li  r10, 0x10003
        sh  r0, 0(r10)
        halt
    )");
    EXPECT_EQ(m.cpu.run(100), StopReason::AlignmentFault);
    EXPECT_EQ(m.cpu.faultAddr(), 0x10003u);
    EXPECT_EQ(m.cpu.stats().stores, 0u);
}

TEST(Interpreter, ByteAccessNeverTraps)
{
    TestMachine m(R"(
        li  r10, 0x10001
        addi r1, r0, 0x5a
        sb  r1, 0(r10)
        lbu r2, 0(r10)
        halt
    )");
    EXPECT_EQ(m.cpu.run(100), StopReason::Halted);
    EXPECT_EQ(m.cpu.state().reg(2), 0x5au);
}

TEST(Interpreter, AlignmentTrapCanBeDisabled)
{
    TestMachine m(R"(
        li  r10, 0x10001
        sw  r0, 0(r10)
        lw  r1, 0(r10)
        halt
    )");
    m.cpu.setAlignmentTrap(false);
    EXPECT_EQ(m.cpu.run(100), StopReason::Halted);
    EXPECT_EQ(m.cpu.state().reg(1), 0u);
    EXPECT_EQ(m.cpu.stats().loads, 1u);
    EXPECT_EQ(m.cpu.stats().stores, 1u);
}

TEST(Interpreter, RunMatchesCappedStepLoop)
{
    const char *src = R"(
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )";
    for (const std::uint64_t budget : {1u, 3u, 17u, 31u, 1000u}) {
        TestMachine run_m(src);
        const StopReason sr = run_m.cpu.run(budget);

        TestMachine step_m(src);
        std::uint64_t attempted = 0;
        bool alive = true;
        while (attempted < budget && alive) {
            alive = step_m.cpu.step();
            ++attempted;
        }
        EXPECT_EQ(run_m.cpu.state().pc, step_m.cpu.state().pc)
            << "budget " << budget;
        for (unsigned i = 0; i < 32; ++i)
            EXPECT_EQ(run_m.cpu.state().reg(i),
                      step_m.cpu.state().reg(i));
        EXPECT_EQ(run_m.cpu.stats().instructions,
                  step_m.cpu.stats().instructions);
        EXPECT_EQ(run_m.cpu.stats().taken_branches,
                  step_m.cpu.stats().taken_branches);
        if (alive) {
            // The budget ended the run: InstrLimit.
            EXPECT_EQ(sr, StopReason::InstrLimit);
        } else {
            // The program ended the run: identical stop reasons.
            EXPECT_EQ(sr, step_m.cpu.lastStop());
            EXPECT_EQ(run_m.cpu.lastStop(), step_m.cpu.lastStop());
        }
    }
}

TEST(Interpreter, RunZeroDoesNotClobberLastStop)
{
    TestMachine m("halt\n");
    EXPECT_EQ(m.cpu.run(10), StopReason::Halted);
    // A zero budget behaves like a zero-iteration step() loop: it
    // reports InstrLimit but must not overwrite the recorded stop.
    EXPECT_EQ(m.cpu.run(0), StopReason::InstrLimit);
    EXPECT_EQ(m.cpu.lastStop(), StopReason::Halted);
    EXPECT_EQ(m.cpu.stats().instructions, 1u);
}

TEST(Interpreter, RunContinuesAcrossBudgets)
{
    // Two budgeted runs reach the same place as one big run.
    const char *src = R"(
        addi r1, r0, 20
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )";
    TestMachine split(src);
    EXPECT_EQ(split.cpu.run(7), StopReason::InstrLimit);
    EXPECT_EQ(split.cpu.lastStop(), StopReason::InstrLimit);
    EXPECT_EQ(split.cpu.run(10000), StopReason::Halted);

    TestMachine whole(src);
    whole.cpu.run(10000);
    EXPECT_EQ(split.cpu.state().pc, whole.cpu.state().pc);
    EXPECT_EQ(split.cpu.stats().instructions,
              whole.cpu.stats().instructions);
    EXPECT_EQ(split.cpu.lastStop(), whole.cpu.lastStop());
}

TEST(Interpreter, MemcpyProgram)
{
    // Copy 16 words and verify the data actually moved.
    TestMachine m(R"(
        li   r10, 0x50000    ; src
        li   r11, 0x51000    ; dst
        addi r12, r0, 16
        ; fill source with i*3
        mv   r13, r10
        addi r14, r0, 0
    fill:
        mul  r15, r14, r12
        sw   r15, 0(r13)
        addi r13, r13, 4
        addi r14, r14, 1
        bne  r14, r12, fill
        ; copy
        mv   r13, r10
        mv   r16, r11
        addi r14, r0, 0
    copy:
        lw   r15, 0(r13)
        sw   r15, 0(r16)
        addi r13, r13, 4
        addi r16, r16, 4
        addi r14, r14, 1
        bne  r14, r12, copy
        halt
    )");
    EXPECT_EQ(m.cpu.run(10000), StopReason::Halted);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(m.mem.readU32(0x51000 + 4 * i), i * 16u);
}
