/**
 * @file
 * Tests for the integrated device (the public PimDevice API).
 */

#include <gtest/gtest.h>

#include "core/pim_device.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "trace/synthetic.hh"

using namespace memwall;

TEST(PimDevice, DefaultConfigIsThePaperDesignPoint)
{
    PimDevice dev;
    EXPECT_EQ(dev.config().dram.banks, 16u);
    EXPECT_EQ(dev.config().dram.access_cycles, 6u);
    EXPECT_EQ(dev.config().caches.dataCapacity(), 16 * KiB);
    EXPECT_EQ(dev.config().caches.instrCapacity(), 8 * KiB);
    EXPECT_TRUE(dev.config().caches.victim_enabled);
    EXPECT_DOUBLE_EQ(dev.config().clock.freq_mhz, 200.0);
}

TEST(PimDeviceDeath, RejectsInconsistentGeometry)
{
    PimDeviceConfig cfg;
    cfg.caches.banks = 8;  // != dram.banks
    EXPECT_EXIT(PimDevice dev(cfg), ::testing::ExitedWithCode(1),
                "banks");
}

TEST(PimDevice, FetchHitCostsOneCycle)
{
    PimDevice dev;
    dev.fetchLatency(0x1000, 0);          // cold fill
    EXPECT_EQ(dev.fetchLatency(0x1000, 20), 1u);
    // The whole 512-byte column came along.
    EXPECT_EQ(dev.fetchLatency(0x11fc, 21), 1u);
}

TEST(PimDevice, FetchMissPaysArrayAccess)
{
    PimDevice dev;
    const Cycles lat = dev.fetchLatency(0x1000, 0);
    EXPECT_EQ(lat, 7u);  // 6-cycle array access + 1 consume
}

TEST(PimDevice, DataMissPaysArrayAccessAndQueuing)
{
    PimDevice dev;
    const Cycles first = dev.dataLatency(0x2000, false, 0);
    EXPECT_EQ(first, 7u);
    // Immediately hitting the same bank while it precharges queues.
    const Cycles second = dev.dataLatency(0x4000, false, 1);
    EXPECT_GT(second, 7u);
}

TEST(PimDevice, VictimHitAfterEviction)
{
    PimDevice dev;
    dev.dataLatency(0x0, false, 0);
    dev.dataLatency(0x1e8, false, 100);    // touch sub-block 0x1e0
    dev.dataLatency(0x2000, false, 200);   // fill way 2
    dev.dataLatency(0x4000, false, 300);   // evict 0x0 -> VC
    EXPECT_EQ(dev.dataLatency(0x1e0, false, 400), 1u);
}

TEST(PimDevice, StatsExposeCounters)
{
    PimDevice dev;
    dev.fetchLatency(0x0, 0);
    dev.dataLatency(0x100000, true, 10);
    const PimDeviceStats stats = dev.stats();
    EXPECT_EQ(stats.icache.misses(), 1u);
    EXPECT_EQ(stats.dcache.store_misses.value(), 1u);
    EXPECT_EQ(stats.dram_accesses, 2u);
}

TEST(PimDevice, ResetClearsState)
{
    PimDevice dev;
    dev.fetchLatency(0x0, 0);
    dev.reset();
    EXPECT_EQ(dev.stats().dram_accesses, 0u);
    EXPECT_EQ(dev.fetchLatency(0x0, 100), 7u);  // cold again
}

TEST(PimDevice, RunWorkloadGivesSaneCpi)
{
    PimDevice dev;
    SyntheticSpec spec;
    spec.name = "tiny";
    spec.routines = {CodeRoutine{0x1000, 1024, 1.0, 50.0, -1}};
    DataStream s;
    s.base = 0x100000;
    s.size = 8 * KiB;
    s.stride = 8;
    spec.streams = {s};
    spec.refs_per_instr = 0.3;
    SyntheticWorkload workload(spec);

    const double cpi = dev.runWorkload(workload, 50'000);
    EXPECT_GE(cpi, 1.0);
    EXPECT_LT(cpi, 1.5);  // cache-friendly: near-unit CPI
}

TEST(PimDevice, MemoryHostileWorkloadCostsMore)
{
    SyntheticSpec friendly;
    friendly.name = "friendly";
    friendly.routines = {CodeRoutine{0x1000, 512, 1.0, 50.0, -1}};
    DataStream hot;
    hot.base = 0x100000;
    hot.size = 4 * KiB;
    friendly.streams = {hot};
    friendly.refs_per_instr = 0.3;

    SyntheticSpec hostile = friendly;
    hostile.name = "hostile";
    DataStream cold;
    cold.kind = StreamKind::Random;
    cold.base = 0x200000;
    cold.size = 8 * MiB;
    hostile.streams = {cold};

    PimDevice dev1, dev2;
    SyntheticWorkload w1(friendly), w2(hostile);
    const double cpi_friendly = dev1.runWorkload(w1, 40'000);
    const double cpi_hostile = dev2.runWorkload(w2, 40'000);
    EXPECT_GT(cpi_hostile, cpi_friendly + 0.2);
}

TEST(PimDevice, ExecutionDrivenEndToEnd)
{
    // Assemble a real program, execute it on the interpreter, feed
    // the reference stream into the device's pipeline: the full
    // execution-driven path of the repo in one test.
    const auto prog = assembleOrDie(R"(
        .org 0x1000
        start:
            li   r10, 0x100000
            addi r1, r0, 256
        loop:
            lw   r2, 0(r10)
            addi r2, r2, 1
            sw   r2, 0(r10)
            addi r10, r10, 4
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
    )");
    BackingStore mem;
    prog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(prog.entry);

    PimDevice dev;
    PipelineSim pipeline(dev, PipelineConfig{});
    const RefSink sink = pipeline.sink();
    EXPECT_EQ(cpu.run(100'000, &sink), StopReason::Halted);
    pipeline.drain();

    EXPECT_GT(pipeline.instructions(), 1000u);
    EXPECT_GE(pipeline.cpi(), 1.0);
    EXPECT_LT(pipeline.cpi(), 2.0);
    // The program really ran: memory was incremented.
    EXPECT_EQ(mem.readU32(0x100000), 1u);
    EXPECT_EQ(mem.readU32(0x100000 + 255 * 4), 1u);
}

TEST(PimDevice, SpeculativeWritebackRemovesDirtyEvictionCost)
{
    // Thrash one set with stores so evictions are dirty.
    auto run = [](bool speculative) {
        PimDeviceConfig cfg;
        cfg.speculative_writeback = speculative;
        PimDevice dev(cfg);
        Tick now = 0;
        Cycles total = 0;
        for (int round = 0; round < 50; ++round) {
            for (Addr base : {0x0ull, 0x2000ull, 0x4000ull}) {
                const Cycles lat =
                    dev.dataLatency(base + (round % 16) * 32, true,
                                    now);
                total += lat;
                now += lat + 20;
            }
        }
        return total;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(PimDevice, CleanEvictionsCostTheSameEitherWay)
{
    auto run = [](bool speculative) {
        PimDeviceConfig cfg;
        cfg.speculative_writeback = speculative;
        PimDevice dev(cfg);
        Tick now = 0;
        Cycles total = 0;
        for (int round = 0; round < 50; ++round) {
            for (Addr base : {0x0ull, 0x2000ull, 0x4000ull}) {
                const Cycles lat = dev.dataLatency(
                    base + (round % 16) * 32, false, now);
                total += lat;
                now += lat + 20;
            }
        }
        return total;
    };
    EXPECT_EQ(run(true), run(false));
}
