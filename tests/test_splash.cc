/**
 * @file
 * Tests for the SPLASH kernels on the execution-driven MP framework:
 * correctness across architectures, determinism, and the Section 6
 * qualitative results at miniature scale.
 */

#include <gtest/gtest.h>

#include "workloads/splash/splash.hh"

using namespace memwall;

namespace {

NumaConfig
machine(NodeArch arch, unsigned nodes, bool victim = true)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = arch;
    c.victim_cache = victim;
    return c;
}

SplashParams
params(NodeArch arch, unsigned nprocs, double scale,
       bool victim = true)
{
    SplashParams p;
    p.nprocs = nprocs;
    p.machine = machine(arch, nprocs, victim);
    p.scale = scale;
    return p;
}

constexpr double tiny = 0.02;

} // namespace

class SplashKernels : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SplashKernels, RunsAndProducesWork)
{
    const SplashResult res = runSplash(
        GetParam(), params(NodeArch::Integrated, 2, tiny));
    EXPECT_GT(res.makespan, 0u);
    EXPECT_GT(res.accesses, 1000u);
}

TEST_P(SplashKernels, ChecksumIdenticalAcrossArchitectures)
{
    const SplashResult a = runSplash(
        GetParam(), params(NodeArch::ReferenceCcNuma, 2, tiny));
    const SplashResult b = runSplash(
        GetParam(), params(NodeArch::Integrated, 2, tiny));
    const SplashResult c = runSplash(
        GetParam(), params(NodeArch::Integrated, 2, tiny, false));
    EXPECT_NEAR(a.checksum, b.checksum,
                1e-9 * (1.0 + std::abs(a.checksum)));
    EXPECT_NEAR(a.checksum, c.checksum,
                1e-9 * (1.0 + std::abs(a.checksum)));
}

TEST_P(SplashKernels, DeterministicAcrossRuns)
{
    const SplashParams p = params(NodeArch::Integrated, 4, tiny);
    const SplashResult a = runSplash(GetParam(), p);
    const SplashResult b = runSplash(GetParam(), p);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.remote_loads, b.remote_loads);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST_P(SplashKernels, AccessCountIndependentOfArchitecture)
{
    // Execution-driven: the three machines execute the same data
    // references, only timing differs.
    const SplashResult a = runSplash(
        GetParam(), params(NodeArch::ReferenceCcNuma, 2, tiny));
    const SplashResult b = runSplash(
        GetParam(), params(NodeArch::Integrated, 2, tiny));
    EXPECT_EQ(a.accesses, b.accesses);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SplashKernels,
                         ::testing::Values("lu", "mp3d", "ocean",
                                           "water", "pthor"));

TEST(Splash, UnknownKernelIsFatal)
{
    EXPECT_EXIT(runSplash("quicksort",
                          params(NodeArch::Integrated, 1, tiny)),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(Splash, MoreCpusShareTheWork)
{
    // The scalable kernels speed up 1 -> 4 cpus on the reference
    // machine at a workable scale (communication-to-computation
    // ratio shrinks with problem size, so tiny grids do not scale).
    for (const char *kernel : {"lu", "ocean", "pthor"}) {
        const SplashResult one = runSplash(
            kernel, params(NodeArch::ReferenceCcNuma, 1, 0.2));
        const SplashResult four = runSplash(
            kernel, params(NodeArch::ReferenceCcNuma, 4, 0.2));
        EXPECT_LT(four.makespan, one.makespan) << kernel;
    }
}

TEST(Splash, IntegratedWinsSingleProcessor)
{
    // The long-line prefetch effect: at 1 CPU everything is local
    // and the integrated machine's column buffers beat the 16 KB
    // FLC + 6-cycle SLC.
    for (const char *kernel : {"lu", "mp3d", "ocean"}) {
        const SplashResult ref = runSplash(
            kernel, params(NodeArch::ReferenceCcNuma, 1, 0.05));
        const SplashResult pim = runSplash(
            kernel, params(NodeArch::Integrated, 1, 0.05));
        EXPECT_LT(pim.makespan, ref.makespan) << kernel;
    }
}

TEST(Splash, VictimCacheHelpsSharedMemoryRuns)
{
    // Section 6.2: adding the victim cache reduces execution time of
    // the integrated design (WATER is the flagship case).
    for (const char *kernel : {"water", "lu"}) {
        const SplashResult plain = runSplash(
            kernel, params(NodeArch::Integrated, 4, 0.05, false));
        const SplashResult vc = runSplash(
            kernel, params(NodeArch::Integrated, 4, 0.05, true));
        EXPECT_LT(vc.makespan, plain.makespan) << kernel;
    }
}

TEST(Splash, ReferenceBeatsPlainIntegratedOnWater)
{
    // Section 6.2: "WATER is the only benchmark for which the
    // reference CC-NUMA design shows better results than the
    // integrated architecture unaided by a victim cache" (ocean
    // shows it too at scale).
    const SplashResult ref = runSplash(
        "water", params(NodeArch::ReferenceCcNuma, 4, 0.1));
    const SplashResult plain = runSplash(
        "water", params(NodeArch::Integrated, 4, 0.1, false));
    EXPECT_LT(ref.makespan, plain.makespan);
}

TEST(Splash, CoherenceTrafficExists)
{
    const SplashResult res = runSplash(
        "mp3d", params(NodeArch::Integrated, 4, tiny));
    EXPECT_GT(res.remote_loads, 0u);
    EXPECT_GT(res.invalidations, 0u);
}
