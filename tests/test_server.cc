/**
 * @file
 * Tests of the experiment service: the strict JSON parser, the wire
 * framing (including oversized-frame re-sync and stale-socket
 * reclaim), request validation/canonicalization, the crash-safe
 * result cache, and the live server's dedup / deadline / retry /
 * quarantine / overload semantics against an in-process MwServer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>

#include "checkpoint/checkpoint.hh"
#include "server/json.hh"
#include "server/protocol.hh"
#include "server/result_cache.hh"
#include "server/server.hh"
#include "server/wire.hh"
#include "workloads/json_text.hh"
#include "workloads/missrate.hh"
#include "workloads/missrate_figures.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;
using namespace memwall::server;

namespace {

/** Self-cleaning scratch directory. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/mw-server-test-XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path_ = p != nullptr ? p : "";
    }

    ~TempDir()
    {
        if (!path_.empty()) {
            const std::string cmd = "rm -rf '" + path_ + "'";
            [[maybe_unused]] int rc = std::system(cmd.c_str());
        }
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, v, err)) << err << " in: " << text;
    return v;
}

std::string
parseErr(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(text, v, err)) << "accepted: " << text;
    return err;
}

// --------------------------------------------------------------------
// JSON parser

TEST(ServerJson, ParsesScalarsAndStructure)
{
    const JsonValue v = parseOk(
        R"({"a": 1, "b": -2.5e3, "c": "x\ny", "d": [true, false, null]})");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.0);
    EXPECT_DOUBLE_EQ(v.find("b")->number, -2500.0);
    EXPECT_EQ(v.find("c")->text, "x\ny");
    ASSERT_TRUE(v.find("d")->isArray());
    ASSERT_EQ(v.find("d")->items.size(), 3u);
    EXPECT_TRUE(v.find("d")->items[0].boolean);
    EXPECT_FALSE(v.find("d")->items[1].boolean);
    EXPECT_TRUE(v.find("d")->items[2].isNull());
}

TEST(ServerJson, ValueSpansCoverTheExactBytes)
{
    const std::string text = R"({"result": {"x":[1, 2]} , "z":3})";
    const JsonValue v = parseOk(text);
    const JsonValue *r = v.find("result");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(text.substr(r->begin, r->end - r->begin),
              R"({"x":[1, 2]})");
}

TEST(ServerJson, StrictnessRejections)
{
    EXPECT_NE(parseErr("{} junk").find("trailing"),
              std::string::npos);
    EXPECT_NE(parseErr(R"({"a":1,"a":2})").find("duplicate"),
              std::string::npos);
    EXPECT_NE(parseErr("\"raw\ncontrol\"").find("control"),
              std::string::npos);
    EXPECT_NE(parseErr(R"("\q")").find("escape"),
              std::string::npos);
    EXPECT_NE(parseErr(R"("\ud800x")").find("surrogate"),
              std::string::npos);
    EXPECT_NE(parseErr("01").find("trailing"), std::string::npos);
    EXPECT_NE(parseErr("[1,]").find("invalid"), std::string::npos);
    EXPECT_NE(parseErr("{\"a\":}").find("invalid"),
              std::string::npos);
    EXPECT_NE(parseErr("").find("end of input"), std::string::npos);
    EXPECT_NE(parseErr("nul").find("literal"), std::string::npos);
}

TEST(ServerJson, DepthCapStopsNestingBombs)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_NE(parseErr(deep).find("nesting"), std::string::npos);
}

TEST(ServerJson, SurrogatePairDecodesToUtf8)
{
    const JsonValue v = parseOk(R"("😀")");
    EXPECT_EQ(v.text, "\xF0\x9F\x98\x80"); // U+1F600
}

TEST(ServerJson, AsU64ExactIntegersOnly)
{
    std::uint64_t out = 0;
    EXPECT_TRUE(parseOk("42").asU64(out));
    EXPECT_EQ(out, 42u);
    EXPECT_TRUE(parseOk("18446744073709551615").asU64(out));
    EXPECT_EQ(out, 18446744073709551615ull);
    EXPECT_FALSE(parseOk("18446744073709551616").asU64(out));
    EXPECT_FALSE(parseOk("-1").asU64(out));
    EXPECT_FALSE(parseOk("1.5").asU64(out));
    EXPECT_FALSE(parseOk("1e3").asU64(out));
}

TEST(ServerJson, EscapeRoundTrip)
{
    const std::string nasty = "a\"b\\c\n\t\x01z";
    const JsonValue v = parseOk("\"" + jsonEscape(nasty) + "\"");
    EXPECT_EQ(v.text, nasty);
}

// --------------------------------------------------------------------
// Wire framing

class WirePair : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    }

    void TearDown() override
    {
        ::close(fds_[0]);
        ::close(fds_[1]);
    }

    int fds_[2];
};

TEST_F(WirePair, RoundTripsPayloadsIncludingEmpty)
{
    const std::vector<std::string> payloads = {
        "", "hello", std::string(100000, 'x')};
    for (const std::string &payload : payloads) {
        std::string why;
        ASSERT_TRUE(writeFrame(fds_[0], payload, &why)) << why;
        std::string got;
        ASSERT_EQ(readFrame(fds_[1], got, &why), FrameStatus::Ok)
            << why;
        EXPECT_EQ(got, payload);
    }
}

TEST_F(WirePair, CleanEofBeforeHeader)
{
    ::close(fds_[0]);
    fds_[0] = ::socket(AF_UNIX, SOCK_STREAM, 0); // keep TearDown sane
    std::string got, why;
    EXPECT_EQ(readFrame(fds_[1], got, &why), FrameStatus::Eof);
}

TEST_F(WirePair, MalformedHeaderIsBadFrame)
{
    ASSERT_EQ(::write(fds_[0], "5x\nhello", 8), 8);
    std::string got, why;
    EXPECT_EQ(readFrame(fds_[1], got, &why), FrameStatus::BadFrame);
    EXPECT_NE(why.find("non-digit"), std::string::npos);
}

TEST_F(WirePair, OversizedFrameIsDrainedAndStreamStaysInSync)
{
    // An over-cap frame followed by a normal one: the reader must
    // report Oversized, swallow the big payload, and then read the
    // next frame intact.
    const std::string big(max_frame_bytes + 1, 'b');
    std::string why;
    std::thread writer([&] {
        ASSERT_TRUE(writeFrame(fds_[0], big, nullptr));
        ASSERT_TRUE(writeFrame(fds_[0], "after", nullptr));
    });
    std::string got;
    EXPECT_EQ(readFrame(fds_[1], got, &why), FrameStatus::Oversized);
    EXPECT_NE(why.find("exceeds"), std::string::npos);
    ASSERT_EQ(readFrame(fds_[1], got, &why), FrameStatus::Ok) << why;
    EXPECT_EQ(got, "after");
    writer.join();
}

TEST_F(WirePair, WriteToClosedPeerFailsInsteadOfSigpipe)
{
    // A peer that closed its end (crashed client, impatient deadline
    // client) must surface as a writeFrame error, not a SIGPIPE that
    // kills the process — this test dies if MSG_NOSIGNAL is lost.
    ::close(fds_[1]);
    fds_[1] = ::socket(AF_UNIX, SOCK_STREAM, 0); // keep TearDown sane
    std::string why;
    EXPECT_FALSE(writeFrame(fds_[0], "into the void", &why));
    EXPECT_FALSE(why.empty());
}

TEST(WireListen, ReclaimsStaleSocketAndRejectsLiveOne)
{
    TempDir dir;
    const std::string path = dir.path() + "/srv.sock";
    std::string why;
    int fd = listenUnix(path, 4, &why);
    ASSERT_GE(fd, 0) << why;

    // A second live listener on the same path must be refused.
    EXPECT_LT(listenUnix(path, 4, &why), 0);
    EXPECT_NE(why.find("already listening"), std::string::npos);

    // Closing WITHOUT unlink leaves a stale socket file — the
    // SIGKILL case. A new listener must reclaim it.
    ::close(fd);
    fd = listenUnix(path, 4, &why);
    EXPECT_GE(fd, 0) << why;
    ::close(fd);
    ::unlink(path.c_str());
}

// --------------------------------------------------------------------
// Protocol

TEST(ServerProtocol, ParsesRunDefaultsAndEchoesId)
{
    Request req;
    ErrorCode code;
    std::string detail;
    ASSERT_TRUE(parseRequest(
        R"({"id":"r1","experiment":"fig8","quick":true})", req, code,
        detail))
        << detail;
    EXPECT_EQ(req.cmd, Request::Cmd::Run);
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.run.experiment, Experiment::Fig8);
    EXPECT_TRUE(req.run.quick);
    EXPECT_EQ(req.run.seed, 42u);
    EXPECT_EQ(req.run.nodes, 0u);
    EXPECT_FALSE(req.run.has_sample);
    EXPECT_EQ(req.run.deadline_ms, 0u);
    EXPECT_FALSE(req.run.has_fault);
}

TEST(ServerProtocol, RejectsUnknownFieldsByName)
{
    Request req;
    ErrorCode code;
    std::string detail;
    EXPECT_FALSE(parseRequest(
        R"({"id":"x","experiment":"fig7","qick":true})", req, code,
        detail));
    EXPECT_EQ(code, ErrorCode::BadRequest);
    EXPECT_NE(detail.find("qick"), std::string::npos);
    EXPECT_EQ(req.id, "x") << "id must survive for correlation";
}

TEST(ServerProtocol, RejectsBadValuesWithNamedCodes)
{
    Request req;
    ErrorCode code;
    std::string detail;
    EXPECT_FALSE(
        parseRequest(R"({"experiment":"fig9"})", req, code, detail));
    EXPECT_EQ(code, ErrorCode::UnknownExperiment);

    EXPECT_FALSE(parseRequest(
        R"({"experiment":"fig7","refs":-1})", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadParam);

    EXPECT_FALSE(parseRequest("[1,2]", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadRequest);

    EXPECT_FALSE(parseRequest("{nope", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadJson);

    EXPECT_FALSE(parseRequest(R"({"cmd":"run"})", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadRequest);
    EXPECT_NE(detail.find("experiment"), std::string::npos);
}

TEST(ServerProtocol, DeadlineIsCappedAtParseTime)
{
    Request req;
    ErrorCode code;
    std::string detail;
    // At the cap: accepted.
    ASSERT_TRUE(parseRequest(R"({"experiment":"fig7","deadline_ms":)" +
                                 std::to_string(max_deadline_ms) + "}",
                             req, code, detail))
        << detail;
    EXPECT_EQ(req.run.deadline_ms, max_deadline_ms);

    // Past the cap (and far past, where ms(2^63) would wrap the
    // chrono arithmetic into the past): rejected by name.
    for (const std::uint64_t bad :
         {max_deadline_ms + 1, std::uint64_t(1) << 63,
          ~std::uint64_t(0)}) {
        EXPECT_FALSE(parseRequest(
            R"({"experiment":"fig7","deadline_ms":)" +
                std::to_string(bad) + "}",
            req, code, detail))
            << bad;
        EXPECT_EQ(code, ErrorCode::BadParam);
        EXPECT_NE(detail.find("deadline_ms"), std::string::npos);
    }
}

TEST(ServerBackoff, SaturatesInsteadOfOverflowing)
{
    EXPECT_EQ(saturatingBackoffMs(10, 0), 10u);
    EXPECT_EQ(saturatingBackoffMs(10, 2), 40u);
    EXPECT_EQ(saturatingBackoffMs(0, 70), 0u);
    // A shift of >= 64 would be undefined; the helper saturates.
    EXPECT_EQ(saturatingBackoffMs(10, 64), 60'000u);
    EXPECT_EQ(saturatingBackoffMs(10, 255), 60'000u);
    // A huge base is clamped, not shifted into wraparound.
    EXPECT_EQ(saturatingBackoffMs(~std::uint64_t(0), 1), 60'000u);
    // The cap itself.
    EXPECT_EQ(saturatingBackoffMs(1'000, 12), 60'000u);
}

TEST(ServerProtocol, CanonicalKeyCollapsesEquivalentRequests)
{
    RunRequest quick;
    quick.quick = true;
    RunRequest explicit_refs;
    explicit_refs.refs = 400'000; // what quick resolves to
    EXPECT_EQ(canonicalRunKey(quick),
              canonicalRunKey(explicit_refs));
    EXPECT_EQ(runKeyHash(quick), runKeyHash(explicit_refs));

    RunRequest other_seed = quick;
    other_seed.seed = 7;
    EXPECT_NE(canonicalRunKey(quick), canonicalRunKey(other_seed));

    RunRequest fig8 = quick;
    fig8.experiment = Experiment::Fig8;
    EXPECT_NE(canonicalRunKey(quick), canonicalRunKey(fig8));

    EXPECT_NE(canonicalRunKey(quick).find(gitDescribe()),
              std::string::npos)
        << "the build id must be part of the key";
}

TEST(ServerProtocol, ParsesTheFullCatalogByName)
{
    const char *names[] = {"fig7",  "fig8",  "table1", "table3",
                           "table4", "fig13", "fig14",  "fig15",
                           "fig16",  "fig17"};
    for (const char *name : names) {
        Request req;
        ErrorCode code;
        std::string detail;
        ASSERT_TRUE(parseRequest(
            std::string(R"({"experiment":")") + name + "\"}", req,
            code, detail))
            << name << ": " << detail;
        EXPECT_STREQ(experimentName(req.run.experiment), name);
    }
    // The unknown-experiment detail names the whole catalog, so a
    // user typo'ing "tabel3" can see what exists.
    Request req;
    ErrorCode code;
    std::string detail;
    EXPECT_FALSE(parseRequest(R"({"experiment":"tabel3"})", req,
                              code, detail));
    EXPECT_EQ(code, ErrorCode::UnknownExperiment);
    EXPECT_NE(detail.find("table3"), std::string::npos) << detail;
    EXPECT_NE(detail.find("fig17"), std::string::npos) << detail;
}

TEST(ServerProtocol, RejectsInapplicableCatalogFields)
{
    Request req;
    ErrorCode code;
    std::string detail;

    // Sampling plans only apply to the miss-rate and SPLASH
    // experiments; the tables are deterministic full runs.
    EXPECT_FALSE(parseRequest(
        R"({"experiment":"table1","sample":"U=500,W=1000,k=4"})",
        req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadParam);
    EXPECT_NE(detail.find("sample"), std::string::npos) << detail;

    // "nodes" restricts a SPLASH sweep; the others have no axis.
    EXPECT_FALSE(parseRequest(
        R"({"experiment":"fig7","nodes":4})", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadParam);
    EXPECT_NE(detail.find("nodes"), std::string::npos) << detail;

    // The machine axis tops out at 16 processors.
    EXPECT_FALSE(parseRequest(
        R"({"experiment":"fig13","nodes":17})", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadParam);

    // SPLASH runs have no reference-count knob ("refs" would be
    // silently ignored — reject it instead).
    EXPECT_FALSE(parseRequest(
        R"({"experiment":"fig13","refs":2000})", req, code, detail));
    EXPECT_EQ(code, ErrorCode::BadParam);
    EXPECT_NE(detail.find("refs"), std::string::npos) << detail;

    // A malformed plan string is rejected with the parser's reason.
    EXPECT_FALSE(parseRequest(
        R"({"experiment":"fig7","sample":"bogus"})", req, code,
        detail));
    EXPECT_EQ(code, ErrorCode::BadParam);
    EXPECT_NE(detail.find("sample"), std::string::npos) << detail;

    // And the valid combinations parse.
    ASSERT_TRUE(parseRequest(
        R"({"experiment":"fig13","nodes":4,"quick":true})", req,
        code, detail))
        << detail;
    EXPECT_EQ(req.run.nodes, 4u);
    ASSERT_TRUE(parseRequest(
        R"({"experiment":"fig7","sample":"U=500,W=1000,k=4"})", req,
        code, detail))
        << detail;
    EXPECT_TRUE(req.run.has_sample);
}

TEST(ServerProtocol, CanonicalKeysSeparateCatalogEntries)
{
    // Every catalog entry at its defaults must canonicalize to a
    // distinct key — a collision would serve one experiment's bytes
    // for another from the cache.
    std::vector<std::string> keys;
    for (const char *name :
         {"fig7", "fig8", "table1", "table3", "table4", "fig13",
          "fig14", "fig15", "fig16", "fig17"}) {
        RunRequest run;
        ASSERT_TRUE(parseExperimentName(name, run.experiment));
        run.quick = true;
        keys.push_back(canonicalRunKey(run));
    }
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]);

    // A sampled run keys differently from the exhaustive run, and
    // different plans key differently from each other.
    RunRequest sampled;
    sampled.quick = true;
    sampled.has_sample = true;
    std::string why;
    ASSERT_TRUE(tryParseSamplingPlan("U=500,W=1000,k=4",
                                     sampled.sample, &why))
        << why;
    EXPECT_NE(canonicalRunKey(sampled), keys[0]);
    RunRequest sampled2 = sampled;
    ASSERT_TRUE(tryParseSamplingPlan("U=500,W=1000,k=8",
                                     sampled2.sample, &why))
        << why;
    EXPECT_NE(canonicalRunKey(sampled), canonicalRunKey(sampled2));

    // A node-restricted SPLASH sweep keys differently from the full
    // axis.
    RunRequest lu;
    ASSERT_TRUE(parseExperimentName("fig13", lu.experiment));
    lu.quick = true;
    RunRequest lu4 = lu;
    lu4.nodes = 4;
    EXPECT_NE(canonicalRunKey(lu), canonicalRunKey(lu4));
}

TEST(ServerProtocol, SanitizedBuildIdNeverAliasesBuilds)
{
    // git absent / not a repo / describe failed: the source digest
    // carries the identity. Distinct trees => distinct ids.
    EXPECT_EQ(sanitizeBuildId("", "0123456789abcdef"),
              "src-0123456789abcdef");
    EXPECT_NE(sanitizeBuildId("", "aaaaaaaaaaaaaaaa"),
              sanitizeBuildId("", "bbbbbbbbbbbbbbbb"));

    // A dirty worktree names its commit but not its edits; the
    // digest disambiguates two dirty trees at the same commit.
    EXPECT_EQ(sanitizeBuildId("v2.0-4-gdeadbee-dirty", "feedc0de"),
              "v2.0-4-gdeadbee-dirty+feedc0de");
    EXPECT_NE(
        sanitizeBuildId("v2.0-4-gdeadbee-dirty", "aaaaaaaaaaaaaaaa"),
        sanitizeBuildId("v2.0-4-gdeadbee-dirty", "bbbbbbbbbbbbbbbb"));

    // A clean describe names the commit exactly: used verbatim.
    EXPECT_EQ(sanitizeBuildId("v2.0-4-gdeadbee", "feedc0de"),
              "v2.0-4-gdeadbee");

    // The baked-in id went through the same rules: never empty, and
    // never the old constant fallback that aliased every gitless
    // build to "unversioned".
    const std::string baked = gitDescribe();
    EXPECT_FALSE(baked.empty());
    EXPECT_NE(baked, "unversioned");
}

TEST(ServerProtocol, ResponsesAreWellFormedJson)
{
    const JsonValue ok =
        parseOk(okResponse("a\"b", true, "{\"x\":1}\n"));
    EXPECT_EQ(ok.find("id")->text, "a\"b");
    EXPECT_EQ(ok.find("status")->text, "ok");
    EXPECT_TRUE(ok.find("cached")->boolean);
    EXPECT_DOUBLE_EQ(ok.find("result")->find("x")->number, 1.0);

    const JsonValue err = parseOk(errorResponse(
        "r", ErrorCode::Overloaded, "queue \"full\"", 250));
    EXPECT_EQ(err.find("status")->text, "error");
    EXPECT_EQ(err.find("error")->find("code")->text, "overloaded");
    EXPECT_DOUBLE_EQ(
        err.find("error")->find("retry_after_ms")->number, 250.0);

    const JsonValue no_retry =
        parseOk(errorResponse("r", ErrorCode::BadJson, "x"));
    EXPECT_EQ(no_retry.find("error")->find("retry_after_ms"),
              nullptr);
}

// --------------------------------------------------------------------
// Renderer JSON hygiene

TEST(RendererJson, NonFiniteValuesRenderAsNull)
{
    EXPECT_EQ(jsontext::num(std::nan("")), "null");
    EXPECT_EQ(jsontext::num(INFINITY), "null");
    EXPECT_EQ(jsontext::num(-INFINITY), "null");
    EXPECT_EQ(jsontext::num(0.5), "0.5");
}

TEST(RendererJson, SingleUnitSampledFigureIsStillStrictJson)
{
    // A one-unit sample has no variance: every confidence half-width
    // is NaN. The rendered document must say `null` there — a bare
    // `nan` token would make the server cache bytes its own strict
    // parser (and every downstream consumer) rejects.
    SamplingPlan plan;
    std::string why;
    ASSERT_TRUE(tryParseSamplingPlan("mode=strat,n=1,U=500,W=1000",
                                     plan, &why))
        << why;
    MissRateParams params;
    params.measured_refs = 2000;
    params.warmup_refs = 1000;
    const SampledWorkloadMissRates one =
        measureMissRatesSampled(specSuite()[0], params, plan);
    ASSERT_EQ(one.units, 1u);
    ASSERT_FALSE(one.icaches[0].ci.valid);
    EXPECT_TRUE(std::isinf(one.icaches[0].ci.half_width));

    for (const MissRateFigure fig :
         {MissRateFigure::ICache, MissRateFigure::DCache}) {
        const std::string doc = missRateFigureSampledJson(fig, {one});
        EXPECT_EQ(doc.find("nan"), std::string::npos);
        EXPECT_EQ(doc.find("inf"), std::string::npos);
        EXPECT_NE(doc.find("null"), std::string::npos);
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(doc, v, err)) << err << "\n" << doc;
    }
}

// --------------------------------------------------------------------
// Result cache

TEST(ResultCacheTest, InsertLookupAndCrashRecovery)
{
    TempDir dir;
    std::string why;
    {
        ResultCache cache;
        ASSERT_TRUE(cache.open(dir.path() + "/cache", 0, &why))
            << why;
        EXPECT_EQ(cache.lookup("k1"), nullptr);
        ASSERT_TRUE(cache.insert("k1", "result-one\n", &why)) << why;
        ASSERT_TRUE(cache.insert("k2", "result-two\n", &why)) << why;
        ASSERT_NE(cache.lookup("k1"), nullptr);
        EXPECT_EQ(*cache.lookup("k1"), "result-one\n");
        // No close(): simulates dying with the journal mid-life.
        // (The journal is fsync'd per append, so everything is on
        // disk already.)
    }
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir.path() + "/cache", 0, &why)) << why;
    EXPECT_EQ(cache.recovered(), 2u);
    ASSERT_NE(cache.lookup("k2"), nullptr);
    EXPECT_EQ(*cache.lookup("k2"), "result-two\n");
}

TEST(ResultCacheTest, TornJournalTailIsDroppedNotFatal)
{
    TempDir dir;
    std::string why;
    {
        ResultCache cache;
        ASSERT_TRUE(cache.open(dir.path(), 0, &why)) << why;
        ASSERT_TRUE(cache.insert("k1", "one", &why)) << why;
    }
    // Append garbage: a crash mid-append leaves exactly this shape.
    {
        std::FILE *f =
            std::fopen((dir.path() + "/results.mwsj").c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputs("torn-record-garbage", f);
        std::fclose(f);
    }
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir.path(), 0, &why)) << why;
    EXPECT_GT(cache.tornBytes(), 0u);
    EXPECT_EQ(cache.recovered(), 1u);
    ASSERT_NE(cache.lookup("k1"), nullptr);
}

TEST(ResultCacheTest, MirrorEntriesAreValidCheckpoints)
{
    TempDir dir;
    std::string why;
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir.path(), 0, &why)) << why;
    ASSERT_TRUE(cache.insert("key", "payload", &why)) << why;

    // Exactly one .mwcp mirror entry, loadable with full validation.
    std::string mwcp;
    const std::string cmd =
        "ls " + dir.path() + "/*.mwcp > " + dir.path() + "/ls.txt";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::FILE *f = std::fopen((dir.path() + "/ls.txt").c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[512];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    mwcp.assign(buf);
    if (!mwcp.empty() && mwcp.back() == '\n')
        mwcp.pop_back();

    ckpt::CheckpointReader reader;
    EXPECT_EQ(reader.loadFile(mwcp, std::nullopt),
              ckpt::LoadError::None)
        << reader.errorDetail();
}

TEST(ResultCacheTest, CompactionEvictsOldestWhenOverCap)
{
    TempDir dir;
    std::string why;
    ResultCache cache;
    // Cap small enough that ~3 of the 600-byte entries fit.
    ASSERT_TRUE(cache.open(dir.path(), 2048, &why)) << why;
    const std::string blob(600, 'r');
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(
            cache.insert("key" + std::to_string(i), blob, &why))
            << why;
    EXPECT_GT(cache.compactions(), 0u);
    EXPECT_LT(cache.size(), 6u);
    // The newest entry always survives.
    ASSERT_NE(cache.lookup("key5"), nullptr);
    // The oldest is the first to go.
    EXPECT_EQ(cache.lookup("key0"), nullptr);

    // Survivors (and only survivors) come back after reopening.
    const std::size_t live = cache.size();
    cache.close();
    ResultCache reopened;
    ASSERT_TRUE(reopened.open(dir.path(), 2048, &why)) << why;
    EXPECT_EQ(reopened.recovered(), live);
    EXPECT_NE(reopened.lookup("key5"), nullptr);
}

TEST(ResultCacheTest, DuplicateInsertKeepsLatestAcrossReopen)
{
    TempDir dir;
    std::string why;
    {
        ResultCache cache;
        ASSERT_TRUE(cache.open(dir.path(), 0, &why)) << why;
        ASSERT_TRUE(cache.insert("k", "old", &why));
        ASSERT_TRUE(cache.insert("k", "new", &why));
        EXPECT_EQ(*cache.lookup("k"), "new");
    }
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir.path(), 0, &why)) << why;
    ASSERT_NE(cache.lookup("k"), nullptr);
    EXPECT_EQ(*cache.lookup("k"), "new");
}

// --------------------------------------------------------------------
// Live server

/** Start an MwServer on a scratch socket and run it on a thread. */
class LiveServer
{
  public:
    explicit LiveServer(ServerOptions opt) : opt_(std::move(opt))
    {
        opt_.socket_path = dir_.path() + "/srv.sock";
        opt_.cache_dir = dir_.path() + "/cache";
        server_ = std::make_unique<MwServer>(opt_);
        std::string why;
        ok_ = server_->start(&why);
        EXPECT_TRUE(ok_) << why;
        if (ok_)
            thread_ = std::thread([this] { server_->run(); });
    }

    ~LiveServer()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    /** One request/response over a fresh connection. */
    std::string rpc(const std::string &request)
    {
        std::string why;
        const int fd = connectUnix(opt_.socket_path, &why);
        EXPECT_GE(fd, 0) << why;
        if (fd < 0)
            return "";
        EXPECT_TRUE(writeFrame(fd, request, &why)) << why;
        std::string response;
        EXPECT_EQ(readFrame(fd, response, &why), FrameStatus::Ok)
            << why;
        ::close(fd);
        return response;
    }

    MwServer &server() { return *server_; }
    const std::string &socketPath() const { return opt_.socket_path; }

  private:
    TempDir dir_;
    ServerOptions opt_;
    std::unique_ptr<MwServer> server_;
    std::thread thread_;
    bool ok_ = false;
};

/** Small-but-real run request: full suite, tiny windows. */
std::string
runRequest(const std::string &id, const std::string &extra = "")
{
    return R"({"cmd":"run","id":")" + id +
           R"(","experiment":"fig7","refs":2000)" + extra + "}";
}

std::string
errorCodeOf(const std::string &response)
{
    JsonValue v;
    std::string err;
    if (!parseJson(response, v, err))
        return "unparseable: " + response;
    const JsonValue *e = v.find("error");
    if (e == nullptr || e->find("code") == nullptr)
        return "no-error-code: " + response;
    return e->find("code")->text;
}

TEST(MwServerTest, ComputesCachesAndDedupesExactlyOnce)
{
    ServerOptions opt;
    opt.jobs = 4;
    LiveServer srv(opt);

    // Concurrent identical requests: every one gets the same result,
    // the figure is computed exactly once.
    constexpr int clients = 6;
    std::vector<std::string> responses(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i)
        threads.emplace_back([&, i] {
            responses[i] =
                srv.rpc(runRequest("c" + std::to_string(i)));
        });
    for (auto &t : threads)
        t.join();

    std::string result_bytes;
    for (int i = 0; i < clients; ++i) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(responses[i], v, err)) << err;
        ASSERT_EQ(v.find("status")->text, "ok") << responses[i];
        const JsonValue *r = v.find("result");
        const std::string bytes = responses[i].substr(
            r->begin, r->end - r->begin);
        if (result_bytes.empty())
            result_bytes = bytes;
        EXPECT_EQ(bytes, result_bytes)
            << "all clients must see identical result bytes";
    }

    const ServerCounters after = srv.server().counters();
    EXPECT_EQ(after.computed, 1u) << "dedup must compute once";
    EXPECT_EQ(after.dedup_joined + after.cache_hits,
              static_cast<std::uint64_t>(clients - 1));

    // A later identical request is a cache hit.
    const JsonValue hit = parseOk(srv.rpc(runRequest("late")));
    EXPECT_EQ(hit.find("status")->text, "ok");
    EXPECT_TRUE(hit.find("cached")->boolean);
    EXPECT_EQ(srv.server().counters().computed, 1u);
}

TEST(MwServerTest, NamedErrorsForBadInput)
{
    ServerOptions opt;
    opt.jobs = 2;
    LiveServer srv(opt);

    EXPECT_EQ(errorCodeOf(srv.rpc("{nope")), "bad_json");
    EXPECT_EQ(errorCodeOf(srv.rpc(R"({"cmd":"dance"})")),
              "bad_request");
    EXPECT_EQ(errorCodeOf(srv.rpc(R"({"experiment":"fig9"})")),
              "unknown_experiment");
    EXPECT_EQ(errorCodeOf(srv.rpc(
                  R"({"experiment":"fig7","fault":{"hang_ms":1}})")),
              "fault_injection_disabled");

    // Oversized frame: named error, connection stays usable.
    std::string why;
    const int fd = connectUnix(srv.socketPath(), &why);
    ASSERT_GE(fd, 0) << why;
    ASSERT_TRUE(
        writeFrame(fd, std::string(max_frame_bytes + 1, 'x'), &why))
        << why;
    std::string response;
    ASSERT_EQ(readFrame(fd, response, &why), FrameStatus::Ok) << why;
    EXPECT_EQ(errorCodeOf(response), "oversized");
    ASSERT_TRUE(writeFrame(fd, R"({"cmd":"ping"})", &why)) << why;
    ASSERT_EQ(readFrame(fd, response, &why), FrameStatus::Ok) << why;
    EXPECT_NE(response.find("pong"), std::string::npos);
    ::close(fd);
}

TEST(MwServerTest, RetriesTransientFaultsThenSucceeds)
{
    ServerOptions opt;
    opt.jobs = 4;
    opt.allow_test_faults = true;
    opt.max_retries = 2;
    opt.backoff_base_ms = 1;
    LiveServer srv(opt);

    // Two injected failures, three attempts available: succeeds.
    const JsonValue v = parseOk(srv.rpc(
        runRequest("r", R"(,"fault":{"fail_points":2})")));
    EXPECT_EQ(v.find("status")->text, "ok");
    const ServerCounters c = srv.server().counters();
    EXPECT_GE(c.retries, 2u);
    EXPECT_EQ(c.worker_failures, 0u);
}

TEST(MwServerTest, PersistentFaultsFailWithWorkerFailed)
{
    ServerOptions opt;
    opt.jobs = 4;
    opt.allow_test_faults = true;
    opt.max_retries = 1;
    opt.backoff_base_ms = 1;
    LiveServer srv(opt);

    // More injected failures than total attempts: the run fails.
    EXPECT_EQ(errorCodeOf(srv.rpc(runRequest(
                  "r", R"(,"fault":{"fail_points":1000})"))),
              "worker_failed");
    EXPECT_GT(srv.server().counters().worker_failures, 0u);

    // Fault-injected runs must never be cached: the same request
    // (same fault spec) computes again rather than hitting a cache.
    const std::string again = srv.rpc(
        runRequest("r2", R"(,"fault":{"fail_points":1000})"));
    EXPECT_EQ(errorCodeOf(again), "worker_failed");
}

TEST(MwServerTest, DeadlineExpiresButResultIsStillCached)
{
    ServerOptions opt;
    opt.jobs = 4;
    opt.allow_test_faults = true;
    LiveServer srv(opt);

    // Points hang 200 ms each; a 40 ms deadline must miss.
    const std::string slow = runRequest(
        "slow", R"(,"deadline_ms":40,"fault":{"hang_ms":200})");
    EXPECT_EQ(errorCodeOf(srv.rpc(slow)), "deadline_exceeded");
    EXPECT_EQ(srv.server().counters().deadline_misses, 1u);

    // The computation was not torn down: it completes and (being a
    // run without cacheable semantics — fault runs are not cached)
    // at least finishes without wedging the server.
    const JsonValue pong = parseOk(srv.rpc(R"({"cmd":"ping"})"));
    EXPECT_EQ(pong.find("status")->text, "ok");
}

TEST(MwServerTest, WatchdogQuarantinesWedgedComputation)
{
    ServerOptions opt;
    opt.jobs = 8;
    opt.allow_test_faults = true;
    opt.wedge_grace_ms = 50;
    opt.watchdog_interval_ms = 5;
    LiveServer srv(opt);

    // A run whose points hang 400 ms wedges past the 50 ms grace:
    // the watchdog quarantines it and the request fails fast
    // instead of hanging forever.
    const std::string wedged =
        runRequest("w", R"(,"fault":{"hang_ms":400})");
    EXPECT_EQ(errorCodeOf(srv.rpc(wedged)), "quarantined");
    EXPECT_GE(srv.server().counters().quarantines, 1u);

    // While quarantined, duplicates are fenced off immediately.
    EXPECT_EQ(errorCodeOf(srv.rpc(wedged)), "quarantined");

    // When the computation finally completes, the key is lifted.
    for (int i = 0; i < 200; ++i) {
        if (srv.server().counters().unquarantines >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GE(srv.server().counters().unquarantines, 1u);
}

TEST(MwServerTest, AdmissionControlShedsExcessInflight)
{
    ServerOptions opt;
    opt.jobs = 2;
    opt.allow_test_faults = true;
    opt.max_inflight = 1;
    LiveServer srv(opt);

    // Fill the single inflight slot with a hanging run, then ask
    // for a *different* run: it must be shed with retry_after.
    std::thread hog([&] {
        srv.rpc(runRequest("hog", R"(,"fault":{"hang_ms":150})"));
    });
    // Give the hog time to occupy the slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::string response = srv.rpc(
        R"({"cmd":"run","id":"shed","experiment":"fig8","refs":2000})");
    EXPECT_EQ(errorCodeOf(response), "overloaded");
    const JsonValue v = parseOk(response);
    EXPECT_NE(v.find("error")->find("retry_after_ms"), nullptr);
    EXPECT_GE(srv.server().counters().shed, 1u);
    hog.join();
}

TEST(MwServerTest, BatchingComputesSharedUnitsOnce)
{
    // fig7 and fig8 at the same window decompose into the SAME
    // per-workload units (one measureMissRates() pass yields both
    // figures). Landing in one batch, the shared units must be
    // computed once and distributed to both requests.
    ServerOptions opt;
    opt.jobs = 4;
    opt.batch_window_ms = 250;
    LiveServer srv(opt);

    std::string r7, r8;
    std::thread t7([&] {
        r7 = srv.rpc(
            R"({"cmd":"run","id":"b7","experiment":"fig7","refs":2000})");
    });
    std::thread t8([&] {
        r8 = srv.rpc(
            R"({"cmd":"run","id":"b8","experiment":"fig8","refs":2000})");
    });
    t7.join();
    t8.join();

    const JsonValue v7 = parseOk(r7);
    const JsonValue v8 = parseOk(r8);
    ASSERT_EQ(v7.find("status")->text, "ok") << r7;
    ASSERT_EQ(v8.find("status")->text, "ok") << r8;
    // Each request got its own figure's document.
    EXPECT_NE(r7.find("fig7"), std::string::npos);
    EXPECT_NE(r8.find("fig8"), std::string::npos);

    const std::uint64_t suite = specSuite().size();
    const ServerCounters c = srv.server().counters();
    EXPECT_EQ(c.computed, 2u) << "both requests completed";
    EXPECT_EQ(c.batches, 1u)
        << "the window must have coalesced both requests";
    EXPECT_EQ(c.batched_keys, 2u);
    EXPECT_EQ(c.points_computed, suite)
        << "one shared unit per workload";
    EXPECT_EQ(c.points_shared, suite)
        << "the second figure's points all rode along";
}

TEST(MwServerTest, OversizedFrameMidBatchDoesNotPoisonTheBatch)
{
    // A malformed client hitting the server while a batch is open
    // must get its named error while the batched computation carries
    // on untouched.
    ServerOptions opt;
    opt.jobs = 4;
    opt.batch_window_ms = 250;
    LiveServer srv(opt);

    std::string r7;
    std::thread t7([&] {
        r7 = srv.rpc(
            R"({"cmd":"run","id":"q7","experiment":"fig7","refs":2000})");
    });
    // While that run sits in the batch window, storm the server with
    // an oversized frame on a second connection...
    std::string why;
    const int fd = connectUnix(srv.socketPath(), &why);
    ASSERT_GE(fd, 0) << why;
    ASSERT_TRUE(
        writeFrame(fd, std::string(max_frame_bytes + 1, 'x'), &why))
        << why;
    std::string response;
    ASSERT_EQ(readFrame(fd, response, &why), FrameStatus::Ok) << why;
    EXPECT_EQ(errorCodeOf(response), "oversized");
    // ...then join the SAME in-flight key over the drained stream.
    ASSERT_TRUE(writeFrame(
        fd,
        R"({"cmd":"run","id":"q8","experiment":"fig7","refs":2000})",
        &why))
        << why;
    ASSERT_EQ(readFrame(fd, response, &why), FrameStatus::Ok) << why;
    ::close(fd);
    t7.join();

    const JsonValue v7 = parseOk(r7);
    const JsonValue v8 = parseOk(response);
    EXPECT_EQ(v7.find("status")->text, "ok") << r7;
    EXPECT_EQ(v8.find("status")->text, "ok") << response;

    // Identical result bytes, computed exactly once between them.
    const JsonValue *s7 = v7.find("result");
    const JsonValue *s8 = v8.find("result");
    ASSERT_NE(s7, nullptr);
    ASSERT_NE(s8, nullptr);
    EXPECT_EQ(r7.substr(s7->begin, s7->end - s7->begin),
              response.substr(s8->begin, s8->end - s8->begin));
    const ServerCounters c = srv.server().counters();
    EXPECT_EQ(c.computed, 1u);
    EXPECT_EQ(c.dedup_joined + c.cache_hits, 1u);
}

TEST(MwServerTest, ServesTheWholeCatalog)
{
    // Every catalog entry must round-trip through the service: ok
    // status, parseable result, and a distinct cache entry.
    ServerOptions opt;
    opt.jobs = 4;
    LiveServer srv(opt);

    const char *quick_entries[] = {"table1", "table3", "table4"};
    int n = 0;
    for (const char *name : quick_entries) {
        const std::string resp = srv.rpc(
            std::string(R"({"cmd":"run","id":"cat","experiment":")") +
            name + R"(","quick":true})");
        const JsonValue v = parseOk(resp);
        ASSERT_EQ(v.find("status")->text, "ok")
            << name << ": " << resp;
        ++n;
        EXPECT_EQ(srv.server().counters().computed,
                  static_cast<std::uint64_t>(n))
            << name;
    }
    // One SPLASH figure, restricted to a single machine size to stay
    // test-sized, plus its sampled variant keyed separately.
    const std::string lu = srv.rpc(
        R"({"cmd":"run","id":"lu","experiment":"fig13","quick":true,"nodes":1})");
    EXPECT_EQ(parseOk(lu).find("status")->text, "ok") << lu;
    EXPECT_NE(lu.find("fig13"), std::string::npos);
}

TEST(MwServerTest, ShutdownRequestStopsTheServer)
{
    ServerOptions opt;
    opt.jobs = 2;
    LiveServer srv(opt);
    const JsonValue v =
        parseOk(srv.rpc(R"({"cmd":"shutdown","id":"bye"})"));
    EXPECT_EQ(v.find("status")->text, "ok");
    // The LiveServer destructor joins run(); if shutdown did not
    // propagate, this test would hang (and the suite timeout would
    // flag it).
}

TEST(MwServerTest, StatsReportsCountersAndBuild)
{
    ServerOptions opt;
    opt.jobs = 2;
    LiveServer srv(opt);
    parseOk(srv.rpc(runRequest("warm")));
    const JsonValue v = parseOk(srv.rpc(R"({"cmd":"stats"})"));
    const JsonValue *stats = v.find("result");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("build")->text, gitDescribe());
    EXPECT_DOUBLE_EQ(
        stats->find("counters")->find("computed")->number, 1.0);
    EXPECT_DOUBLE_EQ(
        stats->find("cache")->find("entries")->number, 1.0);
}

} // namespace
