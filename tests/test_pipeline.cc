/**
 * @file
 * Tests for the 5-stage pipeline timing model: issue, fetch stalls,
 * load/store handling, the scoreboard window.
 */

#include <gtest/gtest.h>

#include <map>

#include "cpu/pipeline.hh"

using namespace memwall;

namespace {

/** Scripted memory system with per-address latencies. */
class ScriptedMemory : public MemorySystem
{
  public:
    Cycles fetch_latency = 1;
    std::map<Addr, Cycles> data_latency;

    Cycles
    fetchLatency(Addr, Tick) override
    {
        return fetch_latency;
    }
    Cycles
    dataLatency(Addr addr, bool, Tick) override
    {
        auto it = data_latency.find(addr);
        return it == data_latency.end() ? 1 : it->second;
    }
};

} // namespace

TEST(Pipeline, UnitCpiWhenEverythingHits)
{
    ScriptedMemory mem;
    PipelineSim pipe(mem);
    for (int i = 0; i < 100; ++i)
        pipe.consume(MemRef::fetch(0x1000 + 4 * i));
    pipe.drain();
    EXPECT_EQ(pipe.instructions(), 100u);
    EXPECT_DOUBLE_EQ(pipe.cpi(), 1.0);
}

TEST(Pipeline, FetchMissStallsFrontEnd)
{
    ScriptedMemory mem;
    mem.fetch_latency = 7;
    PipelineSim pipe(mem);
    pipe.consume(MemRef::fetch(0x0));
    pipe.drain();
    EXPECT_EQ(pipe.cycles(), 7u);
    EXPECT_EQ(pipe.fetchStallCycles(), 6u);
}

TEST(Pipeline, LoadHitIsFree)
{
    ScriptedMemory mem;
    PipelineSim pipe(mem);
    pipe.consume(MemRef::fetch(0x0));
    pipe.consume(MemRef::load(0x0, 0x1000));
    pipe.consume(MemRef::fetch(0x4));
    pipe.drain();
    EXPECT_DOUBLE_EQ(pipe.cpi(), 1.0);
    EXPECT_EQ(pipe.dataStallCycles(), 0u);
}

TEST(Pipeline, ScoreboardAllowsWindowThenStalls)
{
    ScriptedMemory mem;
    mem.data_latency[0x1000] = 10;
    PipelineConfig cfg;
    cfg.scoreboard_window = 1;
    PipelineSim pipe(mem, cfg);
    pipe.consume(MemRef::fetch(0x0));      // t=1
    pipe.consume(MemRef::load(0x0, 0x1000));  // completes t=11
    pipe.consume(MemRef::fetch(0x4));      // window: issues at t=2
    pipe.consume(MemRef::fetch(0x8));      // must wait for the load
    pipe.drain();
    // Third fetch stalls until t=11, issues by t=12.
    EXPECT_EQ(pipe.cycles(), 12u);
    EXPECT_GT(pipe.dataStallCycles(), 0u);
}

TEST(Pipeline, NoScoreboardStallsImmediately)
{
    ScriptedMemory mem;
    mem.data_latency[0x1000] = 10;
    PipelineConfig cfg;
    cfg.scoreboard_window = 0;
    PipelineSim pipe(mem, cfg);
    pipe.consume(MemRef::fetch(0x0));
    pipe.consume(MemRef::load(0x0, 0x1000));
    pipe.consume(MemRef::fetch(0x4));  // stalls to t=11, issues t=12
    pipe.drain();
    EXPECT_EQ(pipe.cycles(), 12u);
}

TEST(Pipeline, WiderWindowReducesStalls)
{
    auto run = [](unsigned window) {
        ScriptedMemory mem;
        mem.data_latency[0x1000] = 12;
        PipelineConfig cfg;
        cfg.scoreboard_window = window;
        PipelineSim pipe(mem, cfg);
        pipe.consume(MemRef::fetch(0x0));
        pipe.consume(MemRef::load(0x0, 0x1000));
        for (int i = 1; i <= 8; ++i)
            pipe.consume(MemRef::fetch(4ull * i));
        pipe.drain();
        return pipe.cycles();
    };
    EXPECT_LT(run(4), run(1));
    EXPECT_LE(run(8), run(4));
}

TEST(Pipeline, StoreBufferHidesStoreLatency)
{
    ScriptedMemory mem;
    mem.data_latency[0x2000] = 10;
    PipelineSim pipe(mem);
    pipe.consume(MemRef::fetch(0x0));
    pipe.consume(MemRef::store(0x0, 0x2000));
    pipe.consume(MemRef::fetch(0x4));
    pipe.consume(MemRef::fetch(0x8));
    // Issue continues: 3 cycles; the store drains in background.
    EXPECT_EQ(pipe.cycles(), 3u);
    pipe.drain();  // end of program waits for the store
    EXPECT_EQ(pipe.cycles(), 11u);
}

TEST(Pipeline, LsqSerialisesMemoryOps)
{
    ScriptedMemory mem;
    mem.data_latency[0x2000] = 10;
    mem.data_latency[0x3000] = 10;
    PipelineSim pipe(mem);
    pipe.consume(MemRef::fetch(0x0));
    pipe.consume(MemRef::store(0x0, 0x2000));  // LSQ busy to t=11
    pipe.consume(MemRef::fetch(0x4));
    // Second memory op must wait for the LSQ.
    pipe.consume(MemRef::store(0x4, 0x3000));
    pipe.drain();
    EXPECT_GE(pipe.cycles(), 21u);
}

TEST(Pipeline, CpiAccumulatesMixedStalls)
{
    ScriptedMemory mem;
    mem.fetch_latency = 1;
    mem.data_latency[0x9000] = 6;
    PipelineConfig cfg;
    cfg.scoreboard_window = 1;
    PipelineSim pipe(mem, cfg);
    for (int i = 0; i < 50; ++i) {
        pipe.consume(MemRef::fetch(4ull * i));
        if (i % 10 == 0)
            pipe.consume(MemRef::load(4ull * i, 0x9000));
    }
    pipe.drain();
    EXPECT_GT(pipe.cpi(), 1.0);
    EXPECT_LT(pipe.cpi(), 2.0);
}
