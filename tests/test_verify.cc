/**
 * @file
 * Tests for the runtime verification subsystem: flight recorder,
 * shadow coherence checker, transaction watchdogs and the
 * CoherenceVerifier end-to-end (mutation detection, zero-cost
 * detach, stalled-transaction diagnosis).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_queue.hh"
#include "verify/verifier.hh"

using namespace memwall;

// ---- Flight recorder --------------------------------------------------

TEST(FlightRecorder, RecordsAndRetains)
{
    FlightRecorder rec(2, /*per_node=*/4);
    rec.record(0, FlightKind::AccessEnd, 10, 0x100, 1, 2);
    rec.record(1, FlightKind::Nack, 20, 0x200, 3);
    EXPECT_EQ(rec.recorded(), 2u);
    EXPECT_EQ(rec.retained(0), 1u);
    EXPECT_EQ(rec.retained(1), 1u);
    const auto events = rec.events(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].tick, 10u);
    EXPECT_EQ(events[0].addr, 0x100u);
    EXPECT_EQ(events[0].kind, FlightKind::AccessEnd);
}

TEST(FlightRecorder, RingOverwritesOldestFirst)
{
    FlightRecorder rec(1, /*per_node=*/3);
    for (Tick t = 0; t < 10; ++t)
        rec.record(0, FlightKind::Retry, t, 0x40 * t);
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.retained(0), 3u);
    const auto events = rec.events(0);
    ASSERT_EQ(events.size(), 3u);
    // Oldest-first snapshot of the last K events.
    EXPECT_EQ(events[0].tick, 7u);
    EXPECT_EQ(events[1].tick, 8u);
    EXPECT_EQ(events[2].tick, 9u);
}

TEST(FlightRecorder, DumpDecodesKindsAndReason)
{
    FlightRecorder rec(1, 8);
    rec.record(0, FlightKind::Nack, 5, 0x1000, 2);
    rec.record(0, FlightKind::MachineCheck, 9, 0x1000);
    std::ostringstream os;
    rec.dump(os, "unit test");
    const std::string text = os.str();
    EXPECT_NE(text.find("flight recorder dump"), std::string::npos);
    EXPECT_NE(text.find("unit test"), std::string::npos);
    EXPECT_NE(text.find("nack"), std::string::npos);
    EXPECT_NE(text.find("machine-check"), std::string::npos);
}

TEST(FlightRecorder, ClearDropsEventsKeepsCounter)
{
    FlightRecorder rec(1, 4);
    rec.record(0, FlightKind::TxnBegin, 1, 0x40);
    rec.clear();
    EXPECT_EQ(rec.retained(0), 0u);
    EXPECT_EQ(rec.recorded(), 1u);
}

// ---- Shadow checker ---------------------------------------------------

namespace {

DirEntry
sharedEntry(std::initializer_list<unsigned> nodes)
{
    DirEntry e;
    for (unsigned n : nodes)
        e.addSharer(n);
    return e;
}

DirEntry
modifiedEntry(unsigned owner)
{
    DirEntry e;
    e.setModified(owner);
    return e;
}

} // namespace

TEST(ShadowChecker, CleanHistoryHasNoViolations)
{
    ShadowChecker checker(4);
    // Node 0 loads, node 1 loads, node 1 stores (0 invalidated).
    EXPECT_TRUE(checker
                    .onAccessEnd(0, 0x100, false,
                                 ServiceLevel::LocalMemory,
                                 sharedEntry({0}))
                    .empty());
    EXPECT_TRUE(checker
                    .onAccessEnd(1, 0x100, false,
                                 ServiceLevel::Remote,
                                 sharedEntry({0, 1}))
                    .empty());
    checker.onInvalidate(0, 0x100);
    EXPECT_TRUE(checker
                    .onAccessEnd(1, 0x100, true,
                                 ServiceLevel::Invalidation,
                                 modifiedEntry(1))
                    .empty());
    EXPECT_EQ(checker.violations(), 0u);
    EXPECT_EQ(checker.checked(), 3u);
    EXPECT_TRUE(checker.holds(1, 0x100));
    EXPECT_FALSE(checker.holds(0, 0x100));
}

TEST(ShadowChecker, SwmrCatchesStaleSharerUnderModified)
{
    ShadowChecker checker(4);
    checker.onAccessEnd(0, 0x100, false, ServiceLevel::LocalMemory,
                        sharedEntry({0}));
    // Node 1 stores but node 0 was never invalidated (the
    // skip-invalidate mutation): SWMR must fire.
    const auto v = checker.onAccessEnd(1, 0x100, true,
                                       ServiceLevel::Invalidation,
                                       modifiedEntry(1));
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].node, 0u);
    EXPECT_NE(v[0].what.find("SWMR"), std::string::npos);
}

TEST(ShadowChecker, StoreMustEndModifiedOwnedByWriter)
{
    ShadowChecker checker(4);
    // The wrong-owner mutation: node 1's store ends Modified(2).
    const auto v = checker.onAccessEnd(1, 0x100, true,
                                       ServiceLevel::LocalMemory,
                                       modifiedEntry(2));
    ASSERT_FALSE(v.empty());
    bool saw_swmr_store = false;
    for (const ShadowViolation &violation : v)
        saw_swmr_store |=
            violation.what.find(
                "Modified state owned by the writer") !=
            std::string::npos;
    EXPECT_TRUE(saw_swmr_store);
}

TEST(ShadowChecker, MissPathAccessMustBeTracked)
{
    ShadowChecker checker(4);
    // The drop-sharer mutation: node 0's load miss completed but the
    // directory still tracks nobody.
    const auto v = checker.onAccessEnd(0, 0x100, false,
                                       ServiceLevel::LocalMemory,
                                       DirEntry{});
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].what.find("does not track"), std::string::npos);
    // An untracked plain cache hit is legal (spatially prefetched
    // neighbour block): no violation, no holder added.
    EXPECT_TRUE(checker
                    .onAccessEnd(0, 0x140, false,
                                 ServiceLevel::CacheHit, DirEntry{})
                    .empty());
    EXPECT_FALSE(checker.holds(0, 0x140));
}

TEST(ShadowChecker, StaleReadDetectedThroughShadowCopy)
{
    ShadowChecker checker(4);
    checker.onAccessEnd(0, 0x100, false, ServiceLevel::LocalMemory,
                        sharedEntry({0}));
    // Node 1 stores; node 0 is NOT invalidated (mutation) yet the
    // directory claims broadcast-shared afterwards, hiding the SWMR
    // and presence mismatches. The stale copy is still caught the
    // moment node 0 reads it.
    DirEntry after_store;
    for (unsigned n = 0; n < 5; ++n)
        after_store.addSharer(n);  // 4th sharer forces broadcast
    ASSERT_EQ(after_store.state(), DirState::SharedBcast);
    checker.onAccessEnd(1, 0x100, true, ServiceLevel::Invalidation,
                        after_store);
    const auto v = checker.onAccessEnd(0, 0x100, false,
                                       ServiceLevel::CacheHit,
                                       after_store);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].what.find("stale data read"), std::string::npos);
}

TEST(ShadowChecker, DataCheckCanBeDisabled)
{
    ShadowChecker checker(4, /*check_data=*/false);
    checker.onAccessEnd(0, 0x100, false, ServiceLevel::LocalMemory,
                        sharedEntry({0}));
    DirEntry bcast;
    for (unsigned n = 0; n < 5; ++n)
        bcast.addSharer(n);
    checker.onAccessEnd(1, 0x100, true, ServiceLevel::Invalidation,
                        bcast);
    EXPECT_TRUE(checker
                    .onAccessEnd(0, 0x100, false,
                                 ServiceLevel::CacheHit, bcast)
                    .empty());
}

// ---- Transaction watchdog ---------------------------------------------

TEST(Watchdog, RetryEscalationWarnsThenDumpsThenFatals)
{
    FlightRecorder rec(4, 16);
    WatchdogConfig cfg;
    cfg.warn_retries = 2;
    cfg.dump_retries = 4;
    cfg.fatal_retries = 6;
    TransactionWatchdog dog(cfg, &rec);
    std::ostringstream dumps;
    dog.setDumpStream(dumps);
    std::string fatal_msg;
    dog.setFatalHandler(
        [&fatal_msg](const std::string &why) { fatal_msg = why; });

    for (unsigned tries = 1; tries <= 6; ++tries)
        dog.onRetry(0, 0x100, tries);
    EXPECT_EQ(dog.warnings(), 1u);
    EXPECT_EQ(dog.dumps(), 1u);
    EXPECT_EQ(dog.fatals(), 1u);
    EXPECT_NE(dumps.str().find("flight recorder dump"),
              std::string::npos);
    EXPECT_NE(fatal_msg.find("livelock"), std::string::npos);
}

TEST(Watchdog, CompletionResetsLivelockStage)
{
    WatchdogConfig cfg;
    cfg.warn_retries = 2;
    TransactionWatchdog dog(cfg);
    dog.onRetry(0, 0x100, 2);
    EXPECT_EQ(dog.warnings(), 1u);
    dog.onComplete(0, 0x100, 50);
    // A fresh transaction on the same block warns again.
    dog.onRetry(0, 0x100, 2);
    EXPECT_EQ(dog.warnings(), 2u);
}

TEST(Watchdog, PathologicalLatencyWarns)
{
    WatchdogConfig cfg;
    cfg.warn_latency = 1'000;
    TransactionWatchdog dog(cfg);
    dog.onComplete(0, 0x100, 2'000);
    EXPECT_EQ(dog.warnings(), 1u);
}

TEST(Watchdog, StalledTransactionTripsScan)
{
    FlightRecorder rec(2, 16);
    WatchdogConfig cfg;
    cfg.stall_warn = 100;
    cfg.stall_dump = 200;
    cfg.stall_fatal = 1'000'000;
    TransactionWatchdog dog(cfg, &rec);
    std::ostringstream dumps;
    dog.setDumpStream(dumps);

    const auto id = dog.beginTransaction(1, 0x2000, 0);
    EXPECT_EQ(dog.openTransactions(), 1u);
    dog.scan(50);
    EXPECT_EQ(dog.warnings(), 0u);
    dog.scan(150);
    EXPECT_EQ(dog.warnings(), 1u);
    dog.scan(250);
    EXPECT_EQ(dog.dumps(), 1u);
    // The post-mortem names the stalled transaction and decodes the
    // recorded txn-begin event.
    EXPECT_NE(dumps.str().find("stalled?"), std::string::npos);
    EXPECT_NE(dumps.str().find("txn-begin"), std::string::npos);
    dog.endTransaction(id, 260);
    EXPECT_EQ(dog.openTransactions(), 0u);
    // Each stage fires at most once per transaction.
    EXPECT_EQ(dog.warnings(), 1u);
    EXPECT_EQ(dog.dumps(), 1u);
}

TEST(Watchdog, ArmedScanFiresFromEventQueue)
{
    FlightRecorder rec(1, 8);
    WatchdogConfig cfg;
    cfg.scan_interval = 10;
    cfg.stall_warn = 25;
    cfg.stall_dump = 1'000'000;
    cfg.stall_fatal = 1'000'000;
    TransactionWatchdog dog(cfg, &rec);
    std::ostringstream dumps;
    dog.setDumpStream(dumps);

    EventQueue queue;
    dog.armOn(queue);
    dog.beginTransaction(0, 0x40, queue.now());
    queue.advanceTo(100);
    EXPECT_EQ(dog.warnings(), 1u);
}

// ---- Event queue periodic series --------------------------------------

TEST(EventQueuePeriodic, RearmsUntilCallbackStops)
{
    EventQueue queue;
    int fired = 0;
    queue.schedulePeriodic(10, [&fired] { return ++fired < 3; });
    queue.advanceTo(1'000);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueuePeriodic, FirstFiringTicketCancelsSeries)
{
    EventQueue queue;
    int fired = 0;
    const auto ticket =
        queue.schedulePeriodic(10, [&fired] { return ++fired < 5; });
    EXPECT_TRUE(queue.deschedule(ticket));
    queue.advanceTo(1'000);
    EXPECT_EQ(fired, 0);
}

// ---- CoherenceVerifier end-to-end -------------------------------------

namespace {

NumaConfig
torture(NodeArch arch, unsigned nodes = 4)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = arch;
    c.victim_cache = arch == NodeArch::Integrated;
    return c;
}

/** Shared-heap mix with stores: exercises every protocol path. */
void
drive(NumaMachine &machine, unsigned rounds = 200)
{
    Tick now = 0;
    const unsigned nodes = machine.config().nodes;
    for (unsigned i = 0; i < rounds; ++i) {
        const unsigned cpu = i % nodes;
        // 13 is coprime to the node count, so every node visits
        // every block: plenty of sharing, invalidation and
        // migratory traffic.
        const Addr addr = 0x100000 + i % 13 * 32;
        now += machine.access(cpu, addr, i % 3 == 0, now);
    }
}

} // namespace

TEST(CoherenceVerifier, CleanRunOnEveryArch)
{
    for (NodeArch arch :
         {NodeArch::ReferenceCcNuma, NodeArch::Integrated,
          NodeArch::SimpleComa}) {
        NumaMachine machine(torture(arch));
        CoherenceVerifier verifier(machine);
        drive(machine);
        EXPECT_EQ(verifier.violations(), 0u);
        EXPECT_GT(verifier.checked(), 0u);
        EXPECT_GT(verifier.recorder().recorded(), 0u);
    }
}

TEST(CoherenceVerifier, AttachesAndDetaches)
{
    NumaMachine machine(torture(NodeArch::ReferenceCcNuma));
    EXPECT_EQ(machine.observer(), nullptr);
    {
        CoherenceVerifier verifier(machine);
        EXPECT_EQ(machine.observer(), &verifier);
    }
    EXPECT_EQ(machine.observer(), nullptr);
    // Detached machine runs the zero-cost fast path.
    drive(machine, 50);
}

TEST(CoherenceVerifierDeath, SecondObserverRejected)
{
    NumaMachine machine(torture(NodeArch::ReferenceCcNuma));
    CoherenceVerifier first(machine);
    EXPECT_DEATH(CoherenceVerifier second(machine),
                 "already has an observer");
}

TEST(CoherenceVerifier, EveryMutationDetectedWithDump)
{
    for (ProtocolMutation mutation :
         {ProtocolMutation::SkipInvalidate,
          ProtocolMutation::DropSharer,
          ProtocolMutation::WrongOwner,
          ProtocolMutation::MissedDowngrade}) {
        NumaConfig config = torture(NodeArch::ReferenceCcNuma);
        config.mutation = mutation;
        NumaMachine machine(config);
        VerifyConfig vc;
        vc.policy = ViolationPolicy::Count;
        CoherenceVerifier verifier(machine, vc);
        std::ostringstream report;
        verifier.setReportStream(report);
        drive(machine);
        EXPECT_GT(machine.mutatedTransitions(), 0u)
            << protocolMutationName(mutation);
        EXPECT_GT(verifier.violations(), 0u)
            << protocolMutationName(mutation);
        // Every detection comes with a decoded flight-recorder
        // post-mortem.
        EXPECT_NE(report.str().find("flight recorder dump"),
                  std::string::npos)
            << protocolMutationName(mutation);
        EXPECT_NE(report.str().find("access-end"), std::string::npos)
            << protocolMutationName(mutation);
    }
}

TEST(CoherenceVerifierDeath, FatalPolicyAborts)
{
    NumaConfig config = torture(NodeArch::ReferenceCcNuma);
    config.mutation = ProtocolMutation::SkipInvalidate;
    NumaMachine machine(config);
    VerifyConfig vc;
    vc.policy = ViolationPolicy::Fatal;
    EXPECT_EXIT(
        {
            CoherenceVerifier verifier(machine, vc);
            std::ostringstream sink;
            verifier.setReportStream(sink);
            drive(machine);
        },
        testing::ExitedWithCode(1), "coherence violation");
}

TEST(CoherenceVerifier, NacksAndRetriesReachRecorderAndWatchdog)
{
    NumaConfig config = torture(NodeArch::ReferenceCcNuma);
    config.protocol_fault.nack_rate = 0.5;
    config.protocol_fault.seed = 7;
    NumaMachine machine(config);
    VerifyConfig vc;
    vc.watchdog.warn_retries = 1;
    CoherenceVerifier verifier(machine, vc);
    std::ostringstream sink;
    verifier.setReportStream(sink);
    drive(machine);
    EXPECT_EQ(verifier.violations(), 0u);
    EXPECT_GT(machine.protocolNacks(), 0u);
    bool saw_retry = false;
    for (unsigned node = 0; node < machine.config().nodes; ++node)
        for (const FlightEvent &ev : verifier.recorder().events(node))
            saw_retry |= ev.kind == FlightKind::Retry;
    EXPECT_TRUE(saw_retry);
    EXPECT_GT(verifier.watchdog().warnings(), 0u);
}

TEST(CoherenceVerifier, LinkEventsRecordedUnderFabricFaults)
{
    NumaConfig config = torture(NodeArch::ReferenceCcNuma);
    config.model_fabric_contention = true;
    config.fabric.fault.drop_rate = 0.2;
    config.fabric.fault.seed = 11;
    NumaMachine machine(config);
    CoherenceVerifier verifier(machine);
    std::ostringstream sink;
    verifier.setReportStream(sink);
    drive(machine);
    EXPECT_EQ(verifier.violations(), 0u);
    bool saw_retransmit = false;
    for (unsigned node = 0; node < machine.config().nodes; ++node)
        for (const FlightEvent &ev : verifier.recorder().events(node))
            saw_retransmit |= ev.kind == FlightKind::LinkRetransmit;
    EXPECT_TRUE(saw_retransmit);
}
