/**
 * @file
 * Tests for the foundational helpers in common/types.hh.
 */

#include <gtest/gtest.h>

#include "common/types.hh"

using namespace memwall;

TEST(Types, PowerOfTwoPredicate)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(512));
    EXPECT_FALSE(isPowerOfTwo(513));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(512), 9u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(Types, CeilPowerOfTwo)
{
    EXPECT_EQ(ceilPowerOfTwo(1), 1u);
    EXPECT_EQ(ceilPowerOfTwo(2), 2u);
    EXPECT_EQ(ceilPowerOfTwo(3), 4u);
    EXPECT_EQ(ceilPowerOfTwo(512), 512u);
    EXPECT_EQ(ceilPowerOfTwo(513), 1024u);
    EXPECT_EQ(ceilPowerOfTwo(3 * MiB), 4 * MiB);
}

TEST(Types, ByteUnits)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024);
    EXPECT_EQ(GiB, 1024ull * 1024 * 1024);
    // The device: 256 Mbit = 32 MiB.
    EXPECT_EQ(256ull * 1024 * 1024 / 8, 32 * MiB);
}

TEST(Types, ClockConversions)
{
    ClockParams clock;  // 200 MHz
    EXPECT_DOUBLE_EQ(clock.cycleNs(), 5.0);
    // The paper's 30 ns array access = 6 cycles.
    EXPECT_EQ(clock.nsToCycles(30.0), 6u);
    // Rounding is up: 31 ns needs 7 whole cycles.
    EXPECT_EQ(clock.nsToCycles(31.0), 7u);
    EXPECT_EQ(clock.nsToCycles(0.0), 0u);
    EXPECT_DOUBLE_EQ(clock.cyclesToNs(6), 30.0);

    ClockParams slow;
    slow.freq_mhz = 85.0;  // the SS-5
    EXPECT_NEAR(slow.cycleNs(), 11.76, 0.01);
}

TEST(Types, Sentinels)
{
    EXPECT_GT(invalid_addr, Addr{0xffffffffffff});
    EXPECT_EQ(max_tick, ~Tick{0});
}
