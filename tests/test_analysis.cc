/**
 * @file
 * Tests for the static-analysis subsystem: CFG construction,
 * dominators, natural loops, dataflow, and the characterizer, on
 * handcrafted control-flow shapes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/absint.hh"
#include "analysis/cfg.hh"
#include "analysis/charact.hh"
#include "analysis/dataflow.hh"
#include "analysis/program.hh"
#include "analysis/vrange.hh"
#include "isa/assembler.hh"

using namespace memwall;

namespace {

struct Analyzed
{
    Program prog;
    Cfg cfg;
    Dataflow df;

    explicit Analyzed(const std::string &src)
        : prog(Program::build(assembleOrDie(src))),
          cfg(Cfg::build(prog)),
          df(Dataflow::build(prog, cfg))
    {
    }

    /** Block id containing the instruction at @p addr. */
    unsigned
    blockAt(Addr addr) const
    {
        const std::size_t i = prog.indexOf(addr);
        EXPECT_NE(i, Program::npos) << std::hex << addr;
        return cfg.blockOf(i);
    }

    bool
    hasEdge(unsigned from, unsigned to) const
    {
        const auto &s = cfg.block(from).succs;
        return std::find(s.begin(), s.end(), to) != s.end();
    }
};

} // namespace

TEST(Cfg, DiamondShape)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r1, r0, 5\n"
        "    blt  r1, r0, neg\n"
        "    addi r2, r0, 1\n"
        "    b    join\n"
        "neg:\n"
        "    addi r2, r0, 2\n"
        "join:\n"
        "    halt\n");

    ASSERT_EQ(a.cfg.size(), 4u);
    const unsigned top = a.blockAt(0x1000);
    const unsigned left = a.blockAt(0x1008);
    const unsigned right = a.blockAt(0x1010);
    const unsigned join = a.blockAt(0x1014);

    EXPECT_TRUE(a.hasEdge(top, left));
    EXPECT_TRUE(a.hasEdge(top, right));
    EXPECT_TRUE(a.hasEdge(left, join));
    EXPECT_TRUE(a.hasEdge(right, join));
    EXPECT_TRUE(a.cfg.block(join).is_exit);

    // The join's immediate dominator is the fork, not either arm.
    EXPECT_EQ(a.cfg.idom()[join], top);
    EXPECT_TRUE(a.cfg.dominates(top, join));
    EXPECT_FALSE(a.cfg.dominates(left, join));
    EXPECT_FALSE(a.cfg.dominates(right, join));
    EXPECT_TRUE(a.cfg.loops().empty());
    EXPECT_FALSE(a.cfg.irreducible());
}

TEST(Cfg, NestedLoopsWithDepthsAndTrips)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r3, r0, 3\n"
        "    addi r1, r0, 0\n"
        "outer:\n"
        "    addi r2, r0, 0\n"
        "inner:\n"
        "    addi r2, r2, 1\n"
        "    bne  r2, r3, inner\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r3, outer\n"
        "    halt\n");

    ASSERT_EQ(a.cfg.loops().size(), 2u);
    int outer = -1, inner = -1;
    for (std::size_t i = 0; i < a.cfg.loops().size(); ++i) {
        if (a.cfg.loops()[i].depth == 1)
            outer = static_cast<int>(i);
        else if (a.cfg.loops()[i].depth == 2)
            inner = static_cast<int>(i);
    }
    ASSERT_NE(outer, -1);
    ASSERT_NE(inner, -1);
    EXPECT_EQ(a.cfg.loops()[inner].parent, outer);
    EXPECT_EQ(a.cfg.loops()[outer].parent, -1);
    // The outer loop contains the inner loop's blocks.
    for (unsigned b : a.cfg.loops()[inner].blocks)
        EXPECT_TRUE(a.cfg.loops()[outer].contains(b));

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.loops.size(), 2u);
    for (const LoopChar &lc : chr.loops)
        EXPECT_EQ(lc.trip, 3u) << "depth " << lc.depth;
    EXPECT_TRUE(chr.counts_exact);
    // 2 + 3*(1 + 3*2 + 2) + 1 = 30 instructions predicted.
    EXPECT_DOUBLE_EQ(chr.counts.total(), 30.0);
}

TEST(Cfg, IrreducibleGraphFallsBackConservatively)
{
    // The entry jumps into the middle of a cycle, so the retreating
    // edge's target does not dominate its source: no natural loop
    // may be claimed.
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    blt  r1, r0, l2\n"
        "l1:\n"
        "    addi r2, r2, 1\n"
        "l2:\n"
        "    addi r3, r3, 1\n"
        "    bne  r3, r4, l1\n"
        "    halt\n");

    EXPECT_TRUE(a.cfg.irreducible());
    EXPECT_TRUE(a.cfg.loops().empty());
}

TEST(Cfg, SelfLoop)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r2, r0, 4\n"
        "    addi r1, r0, 0\n"
        "self:\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r2, self\n"
        "    halt\n");

    ASSERT_EQ(a.cfg.loops().size(), 1u);
    const Loop &l = a.cfg.loops()[0];
    EXPECT_EQ(l.blocks.size(), 1u);
    EXPECT_EQ(l.blocks[0], l.header);
    ASSERT_EQ(l.exit_blocks.size(), 1u);
    EXPECT_EQ(l.exit_blocks[0], l.header);

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.loops.size(), 1u);
    EXPECT_EQ(chr.loops[0].trip, 4u);
}

TEST(Cfg, UnreachableTail)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    b    end\n"
        "dead:\n"
        "    addi r1, r0, 1\n"
        "end:\n"
        "    halt\n");

    const unsigned dead = a.blockAt(0x1004);
    const unsigned end = a.blockAt(0x1008);
    EXPECT_FALSE(a.cfg.reachable()[dead]);
    EXPECT_TRUE(a.cfg.reachable()[end]);
    // Unreachable blocks self-dominate by convention.
    EXPECT_EQ(a.cfg.idom()[dead], dead);
}

TEST(Cfg, JumpTableTargetsRecovered)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r1, table\n"
        "    lw   r2, 0(r1)\n"
        "    jalr r0, r2, 0\n"
        "case0:\n"
        "    halt\n"
        "case1:\n"
        "    halt\n"
        "table:\n"
        "    .word case0\n"
        "    .word case1\n");

    const unsigned jumper = a.blockAt(0x1000);
    const unsigned c0 = a.blockAt(a.prog.assembled().symbol("case0"));
    const unsigned c1 = a.blockAt(a.prog.assembled().symbol("case1"));
    EXPECT_FALSE(a.cfg.block(jumper).has_unknown_succ);
    EXPECT_TRUE(a.hasEdge(jumper, c0));
    EXPECT_TRUE(a.hasEdge(jumper, c1));
    EXPECT_TRUE(a.cfg.reachable()[c0]);
    EXPECT_TRUE(a.cfg.reachable()[c1]);
}

TEST(Cfg, UnknownIndirectFallsBackToAddressTaken)
{
    // The jump register comes from memory whose address is not a
    // table constant: conservatively target every address-taken
    // block.
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    lw   r2, 0(r5)\n"
        "    jalr r0, r2, 0\n"
        "other:\n"
        "    halt\n"
        "ptr:\n"
        "    .word other\n");

    const unsigned jumper = a.blockAt(0x1000);
    const unsigned other = a.blockAt(a.prog.assembled().symbol(
        "other"));
    EXPECT_TRUE(a.cfg.block(jumper).has_unknown_succ);
    EXPECT_TRUE(a.hasEdge(jumper, other));
}

TEST(Cfg, CallSitesAndCalleeSummaries)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    jal  ra, f\n"
        "    halt\n"
        "f:\n"
        "    addi r1, r0, 1\n"
        "    ret\n");

    ASSERT_EQ(a.cfg.calls().size(), 1u);
    const CallSite &cs = a.cfg.calls()[0];
    EXPECT_TRUE(cs.known);
    EXPECT_EQ(cs.target, a.prog.assembled().symbol("f"));
    // The callee body is reachable through the call edge even
    // though calls are not CFG edges.
    EXPECT_TRUE(a.cfg.reachable()[a.blockAt(cs.target)]);
    EXPECT_TRUE(a.df.calleeWrites(cs.target) & (1u << 1));
    EXPECT_TRUE(a.df.calleeClobbers(cs.target) & (1u << 1));
}

TEST(Dataflow, LivenessAndDeadStore)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r1, r0, 5\n"
        "    addi r1, r0, 6\n"
        "    add  r2, r1, r1\n"
        "    halt\n");

    const std::size_t first = a.prog.indexOf(0x1000);
    const std::size_t second = a.prog.indexOf(0x1004);
    // The first write to r1 is dead, the second is live.
    EXPECT_FALSE(a.df.liveOut(first) & (1u << 1));
    EXPECT_TRUE(a.df.liveOut(second) & (1u << 1));
    // r2 stays live into the exit (results live at halt).
    const std::size_t third = a.prog.indexOf(0x1008);
    EXPECT_TRUE(a.df.liveOut(third) & (1u << 2));
}

TEST(Dataflow, ConstantPropagationThroughLiIdiom)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r1, 0x12345678\n"
        "    addi r2, r1, 8\n"
        "    halt\n");

    const std::size_t use = a.prog.indexOf(0x1008);
    const auto v = a.df.constBefore(use, 1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0x12345678u);
}

TEST(Dataflow, MayDefSeededAcrossCalls)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    jal  ra, f\n"
        "    add  r2, r1, r1\n"
        "    halt\n"
        "f:\n"
        "    addi r1, r0, 9\n"
        "    ret\n");

    // r1 is defined only inside the callee; the call's may-def set
    // must cover it so the caller's read is not flagged undefined.
    const std::size_t use = a.prog.indexOf(0x1004);
    EXPECT_TRUE(a.df.mayDefIn(use) & (1u << 1));
}

TEST(Charact, StrideAndFootprintOfDerivedInduction)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r10, 0x20000\n"
        "    addi r5, r0, 8\n"
        "    addi r1, r0, 0\n"
        "loop:\n"
        "    slli r2, r1, 2\n"
        "    add  r3, r10, r2\n"
        "    sw   r1, 0(r3)\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r5, loop\n"
        "    halt\n");

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.memops.size(), 1u);
    const MemOpChar &m = chr.memops[0];
    EXPECT_EQ(m.kind, MemOpChar::Kind::Strided);
    EXPECT_EQ(m.stride, 4);
    EXPECT_FALSE(m.conditional);
    ASSERT_TRUE(m.region_known);
    EXPECT_EQ(m.region_begin, 0x20000u);
    EXPECT_EQ(m.region_end, 0x20020u);
    EXPECT_TRUE(chr.footprint_known);
    EXPECT_EQ(chr.footprint_bytes, 32u);
}

TEST(Charact, DataDependentAccessDegradesToUnknown)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r10, 0x20000\n"
        "    addi r5, r0, 8\n"
        "    addi r1, r0, 0\n"
        "loop:\n"
        "    lw   r2, 0(r10)\n"
        "    add  r3, r10, r2\n"
        "    lw   r4, 0(r3)\n"
        "    addi r10, r10, 4\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r5, loop\n"
        "    halt\n");

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.memops.size(), 2u);
    EXPECT_EQ(chr.memops[0].kind, MemOpChar::Kind::Strided);
    EXPECT_EQ(chr.memops[1].kind, MemOpChar::Kind::Unknown);
    EXPECT_FALSE(chr.footprint_known);
}

TEST(Dataflow, R0FoldsToZeroThroughCalls)
{
    // r0 is architecture-constant: a call's may-def set must never
    // cover it, and constants derived from r0 after the call must
    // still fold.
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    jal  ra, f\n"
        "    addi r1, r0, 7\n"
        "    add  r2, r1, r1\n"
        "    halt\n"
        "f:\n"
        "    addi r1, r0, 9\n"
        "    ret\n");

    const std::size_t after_call = a.prog.indexOf(0x1004);
    // r0 is always-defined by convention, before and after calls.
    EXPECT_TRUE(a.df.mayDefIn(after_call) & 1u);
    EXPECT_TRUE(a.df.mayDefIn(a.prog.indexOf(0x1000)) & 1u);
    const auto z = a.df.constBefore(after_call, 0);
    ASSERT_TRUE(z.has_value());
    EXPECT_EQ(*z, 0u);
    const auto v = a.df.constBefore(a.prog.indexOf(0x1008), 1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7u);
}

TEST(Dataflow, SaveRestoreRecognizedAcrossNestedCalls)
{
    // f spills r5 around a nested call to g, which spills it again
    // in its own frame. Both callee summaries must report r5 as
    // written but NOT clobbered (the frame restores it).
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    jal  ra, f\n"
        "    halt\n"
        "f:\n"
        "    addi sp, sp, -8\n"
        "    sw   r5, 0(sp)\n"
        "    sw   ra, 4(sp)\n"
        "    addi r5, r0, 1\n"
        "    jal  ra, g\n"
        "    lw   r5, 0(sp)\n"
        "    lw   ra, 4(sp)\n"
        "    addi sp, sp, 8\n"
        "    ret\n"
        "g:\n"
        "    addi sp, sp, -4\n"
        "    sw   r5, 0(sp)\n"
        "    addi r5, r0, 2\n"
        "    lw   r5, 0(sp)\n"
        "    addi sp, sp, 4\n"
        "    ret\n");

    const Addr f = a.prog.assembled().symbol("f");
    const Addr g = a.prog.assembled().symbol("g");
    EXPECT_TRUE(a.df.calleeWrites(f) & (1u << 5));
    EXPECT_FALSE(a.df.calleeClobbers(f) & (1u << 5));
    EXPECT_TRUE(a.df.calleeWrites(g) & (1u << 5));
    EXPECT_FALSE(a.df.calleeClobbers(g) & (1u << 5));
}

TEST(Cfg, JumpTableLastInDataSection)
{
    // The table decode walk runs to the very end of the assembled
    // image: nothing follows the table, so the walk must stop at
    // the last word without running off the map.
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r1, table\n"
        "    lw   r2, 0(r1)\n"
        "    jalr r0, r2, 0\n"
        "case0:\n"
        "    halt\n"
        "case1:\n"
        "    halt\n"
        "table:\n"
        "    .word case0\n"
        "    .word case1\n");

    const unsigned jumper = a.blockAt(0x1000);
    EXPECT_FALSE(a.cfg.block(jumper).has_unknown_succ);
    ASSERT_EQ(a.cfg.jumpTables().size(), 1u);
    const JumpTable &jt = a.cfg.jumpTables()[0];
    const Addr table = a.prog.assembled().symbol("table");
    EXPECT_EQ(jt.begin, table);
    EXPECT_EQ(jt.end, table + 8);
    EXPECT_EQ(a.prog.instr(jt.jump_instr).inst.op, Opcode::Jalr);
    EXPECT_EQ(a.prog.instr(jt.load_instr).inst.op, Opcode::Lw);
}

TEST(VRange, IntervalAndBitsStayReduced)
{
    const VRange iv = VRange::interval(0x10, 0x13);
    EXPECT_TRUE((iv.known_mask & 0xfffffffcu) == 0xfffffffcu);
    EXPECT_EQ(iv.known_val & 0xfffffffcu, 0x10u);

    const VRange b = VRange::bits(0x3, 0x0);
    EXPECT_EQ(b.lo, 0u);
    EXPECT_EQ(b.hi, 0xfffffffcu);
    EXPECT_TRUE(b.contains(0x100u));
    EXPECT_FALSE(b.contains(0x101u));
}

TEST(VRange, LatticeOperations)
{
    const VRange a = VRange::interval(4, 8);
    const VRange b = VRange::interval(6, 20);
    const VRange j = VRange::join(a, b);
    EXPECT_EQ(j.lo, 4u);
    EXPECT_EQ(j.hi, 20u);
    const VRange m = VRange::meet(a, b);
    EXPECT_EQ(m.lo, 6u);
    EXPECT_EQ(m.hi, 8u);
    EXPECT_TRUE(VRange::meet(VRange::constant(1),
                             VRange::constant(2)).isEmpty());
    // Widening blows an unstable bound to the domain extreme, but
    // known bits shared by both steps still clamp it: [0,4] and
    // [0,5] agree that bits 31..3 are zero, so the widened top is 7.
    const VRange w =
        VRange::widen(VRange::interval(0, 4), VRange::interval(0, 5));
    EXPECT_EQ(w.lo, 0u);
    EXPECT_EQ(w.hi, 7u);
    // With no surviving bits the bound goes all the way.
    const VRange w2 = VRange::widen(
        VRange::interval(0, 0x7fffffffu),
        VRange::interval(0, 0x80000000u));
    EXPECT_EQ(w2.hi, 0xffffffffu);
}

TEST(VRange, TransfersAreExactOnConstantsAndSoundOnWrap)
{
    const VRange c = VRange::add(VRange::constant(3),
                                 VRange::constant(4));
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.lo, 7u);
    // A potentially wrapping add over-approximates to top rather
    // than producing a wrapped (unsound) interval.
    const VRange w = VRange::add(VRange::interval(0xfffffff0u,
                                                  0xffffffffu),
                                 VRange::interval(0, 0x100));
    EXPECT_TRUE(w.contains(0u));
    EXPECT_TRUE(w.contains(0xfffffff0u));
    // Masking keeps the result inside the mask.
    const VRange m = VRange::and_(VRange::top(),
                                  VRange::constant(0xc));
    EXPECT_TRUE(m.hi <= 0xcu);
    EXPECT_FALSE(m.contains(1u));
}

namespace {

/** Analyzed plus the characterizer and abstract interpreter. */
struct Ranged : Analyzed
{
    StaticCharacterization chr;
    AbsInt ai;

    explicit Ranged(const std::string &src)
        : Analyzed(src),
          chr(characterize(prog, cfg, df)),
          ai(AbsInt::build(prog, cfg, df, chr))
    {
    }

    /** Index of the first instruction satisfying @p pred. */
    template <typename Pred>
    std::size_t
    firstInstr(Pred pred) const
    {
        for (std::size_t i = 0; i < prog.size(); ++i)
            if (pred(prog.instr(i).inst))
                return i;
        return Program::npos;
    }
};

} // namespace

TEST(AbsInt, CountedLoopIndexBounded)
{
    Ranged a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r10, 0x20000\n"
        "    addi r5, r0, 8\n"
        "    addi r1, r0, 0\n"
        "loop:\n"
        "    slli r2, r1, 2\n"
        "    add  r3, r10, r2\n"
        "    sw   r1, 0(r3)\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r5, loop\n"
        "    halt\n");

    ASSERT_FALSE(a.ai.topMode());
    const std::size_t st = a.firstInstr(
        [](const Instruction &in) { return in.op == Opcode::Sw; });
    ASSERT_NE(st, Program::npos);
    const VRange idx = a.ai.before(st, 1);
    EXPECT_EQ(idx.lo, 0u);
    EXPECT_EQ(idx.hi, 7u);
    const VRange ea = a.ai.addressRange(st);
    EXPECT_EQ(ea.lo, 0x20000u);
    EXPECT_EQ(ea.hi, 0x2001cu);
    // Word alignment of the strided address is known bit-wise.
    EXPECT_EQ(ea.known_mask & 0x3u, 0x3u);
    EXPECT_EQ(ea.known_val & 0x3u, 0u);
}

TEST(AbsInt, BranchRefinementNarrowsGuardedValue)
{
    Ranged a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r2, 0x20000\n"
        "    lw   r1, 0(r2)\n"
        "    addi r3, r0, 16\n"
        "    bltu r1, r3, small\n"
        "    halt\n"
        "small:\n"
        "    add  r4, r1, r0\n"
        "    halt\n");

    ASSERT_FALSE(a.ai.topMode());
    const std::size_t use = a.prog.indexOf(
        a.prog.assembled().symbol("small"));
    ASSERT_NE(use, Program::npos);
    const VRange r = a.ai.before(use, 1);
    EXPECT_EQ(r.lo, 0u);
    EXPECT_EQ(r.hi, 15u);
}

TEST(AbsInt, UnknownIndirectDegradesToTopMode)
{
    Ranged a(
        ".org 0x1000\n"
        "start:\n"
        "    lw   r2, 0(r5)\n"
        "    jalr r0, r2, 0\n"
        "other:\n"
        "    halt\n"
        "ptr:\n"
        "    .word other\n");

    EXPECT_TRUE(a.ai.topMode());
    // Top mode still answers queries, conservatively.
    EXPECT_TRUE(a.ai.before(0, 5).isTop());
    EXPECT_TRUE(a.ai.before(0, 0).isConstant());
}
