/**
 * @file
 * Tests for the static-analysis subsystem: CFG construction,
 * dominators, natural loops, dataflow, and the characterizer, on
 * handcrafted control-flow shapes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/cfg.hh"
#include "analysis/charact.hh"
#include "analysis/dataflow.hh"
#include "analysis/program.hh"
#include "isa/assembler.hh"

using namespace memwall;

namespace {

struct Analyzed
{
    Program prog;
    Cfg cfg;
    Dataflow df;

    explicit Analyzed(const std::string &src)
        : prog(Program::build(assembleOrDie(src))),
          cfg(Cfg::build(prog)),
          df(Dataflow::build(prog, cfg))
    {
    }

    /** Block id containing the instruction at @p addr. */
    unsigned
    blockAt(Addr addr) const
    {
        const std::size_t i = prog.indexOf(addr);
        EXPECT_NE(i, Program::npos) << std::hex << addr;
        return cfg.blockOf(i);
    }

    bool
    hasEdge(unsigned from, unsigned to) const
    {
        const auto &s = cfg.block(from).succs;
        return std::find(s.begin(), s.end(), to) != s.end();
    }
};

} // namespace

TEST(Cfg, DiamondShape)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r1, r0, 5\n"
        "    blt  r1, r0, neg\n"
        "    addi r2, r0, 1\n"
        "    b    join\n"
        "neg:\n"
        "    addi r2, r0, 2\n"
        "join:\n"
        "    halt\n");

    ASSERT_EQ(a.cfg.size(), 4u);
    const unsigned top = a.blockAt(0x1000);
    const unsigned left = a.blockAt(0x1008);
    const unsigned right = a.blockAt(0x1010);
    const unsigned join = a.blockAt(0x1014);

    EXPECT_TRUE(a.hasEdge(top, left));
    EXPECT_TRUE(a.hasEdge(top, right));
    EXPECT_TRUE(a.hasEdge(left, join));
    EXPECT_TRUE(a.hasEdge(right, join));
    EXPECT_TRUE(a.cfg.block(join).is_exit);

    // The join's immediate dominator is the fork, not either arm.
    EXPECT_EQ(a.cfg.idom()[join], top);
    EXPECT_TRUE(a.cfg.dominates(top, join));
    EXPECT_FALSE(a.cfg.dominates(left, join));
    EXPECT_FALSE(a.cfg.dominates(right, join));
    EXPECT_TRUE(a.cfg.loops().empty());
    EXPECT_FALSE(a.cfg.irreducible());
}

TEST(Cfg, NestedLoopsWithDepthsAndTrips)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r3, r0, 3\n"
        "    addi r1, r0, 0\n"
        "outer:\n"
        "    addi r2, r0, 0\n"
        "inner:\n"
        "    addi r2, r2, 1\n"
        "    bne  r2, r3, inner\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r3, outer\n"
        "    halt\n");

    ASSERT_EQ(a.cfg.loops().size(), 2u);
    int outer = -1, inner = -1;
    for (std::size_t i = 0; i < a.cfg.loops().size(); ++i) {
        if (a.cfg.loops()[i].depth == 1)
            outer = static_cast<int>(i);
        else if (a.cfg.loops()[i].depth == 2)
            inner = static_cast<int>(i);
    }
    ASSERT_NE(outer, -1);
    ASSERT_NE(inner, -1);
    EXPECT_EQ(a.cfg.loops()[inner].parent, outer);
    EXPECT_EQ(a.cfg.loops()[outer].parent, -1);
    // The outer loop contains the inner loop's blocks.
    for (unsigned b : a.cfg.loops()[inner].blocks)
        EXPECT_TRUE(a.cfg.loops()[outer].contains(b));

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.loops.size(), 2u);
    for (const LoopChar &lc : chr.loops)
        EXPECT_EQ(lc.trip, 3u) << "depth " << lc.depth;
    EXPECT_TRUE(chr.counts_exact);
    // 2 + 3*(1 + 3*2 + 2) + 1 = 30 instructions predicted.
    EXPECT_DOUBLE_EQ(chr.counts.total(), 30.0);
}

TEST(Cfg, IrreducibleGraphFallsBackConservatively)
{
    // The entry jumps into the middle of a cycle, so the retreating
    // edge's target does not dominate its source: no natural loop
    // may be claimed.
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    blt  r1, r0, l2\n"
        "l1:\n"
        "    addi r2, r2, 1\n"
        "l2:\n"
        "    addi r3, r3, 1\n"
        "    bne  r3, r4, l1\n"
        "    halt\n");

    EXPECT_TRUE(a.cfg.irreducible());
    EXPECT_TRUE(a.cfg.loops().empty());
}

TEST(Cfg, SelfLoop)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r2, r0, 4\n"
        "    addi r1, r0, 0\n"
        "self:\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r2, self\n"
        "    halt\n");

    ASSERT_EQ(a.cfg.loops().size(), 1u);
    const Loop &l = a.cfg.loops()[0];
    EXPECT_EQ(l.blocks.size(), 1u);
    EXPECT_EQ(l.blocks[0], l.header);
    ASSERT_EQ(l.exit_blocks.size(), 1u);
    EXPECT_EQ(l.exit_blocks[0], l.header);

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.loops.size(), 1u);
    EXPECT_EQ(chr.loops[0].trip, 4u);
}

TEST(Cfg, UnreachableTail)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    b    end\n"
        "dead:\n"
        "    addi r1, r0, 1\n"
        "end:\n"
        "    halt\n");

    const unsigned dead = a.blockAt(0x1004);
    const unsigned end = a.blockAt(0x1008);
    EXPECT_FALSE(a.cfg.reachable()[dead]);
    EXPECT_TRUE(a.cfg.reachable()[end]);
    // Unreachable blocks self-dominate by convention.
    EXPECT_EQ(a.cfg.idom()[dead], dead);
}

TEST(Cfg, JumpTableTargetsRecovered)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r1, table\n"
        "    lw   r2, 0(r1)\n"
        "    jalr r0, r2, 0\n"
        "case0:\n"
        "    halt\n"
        "case1:\n"
        "    halt\n"
        "table:\n"
        "    .word case0\n"
        "    .word case1\n");

    const unsigned jumper = a.blockAt(0x1000);
    const unsigned c0 = a.blockAt(a.prog.assembled().symbol("case0"));
    const unsigned c1 = a.blockAt(a.prog.assembled().symbol("case1"));
    EXPECT_FALSE(a.cfg.block(jumper).has_unknown_succ);
    EXPECT_TRUE(a.hasEdge(jumper, c0));
    EXPECT_TRUE(a.hasEdge(jumper, c1));
    EXPECT_TRUE(a.cfg.reachable()[c0]);
    EXPECT_TRUE(a.cfg.reachable()[c1]);
}

TEST(Cfg, UnknownIndirectFallsBackToAddressTaken)
{
    // The jump register comes from memory whose address is not a
    // table constant: conservatively target every address-taken
    // block.
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    lw   r2, 0(r5)\n"
        "    jalr r0, r2, 0\n"
        "other:\n"
        "    halt\n"
        "ptr:\n"
        "    .word other\n");

    const unsigned jumper = a.blockAt(0x1000);
    const unsigned other = a.blockAt(a.prog.assembled().symbol(
        "other"));
    EXPECT_TRUE(a.cfg.block(jumper).has_unknown_succ);
    EXPECT_TRUE(a.hasEdge(jumper, other));
}

TEST(Cfg, CallSitesAndCalleeSummaries)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    jal  ra, f\n"
        "    halt\n"
        "f:\n"
        "    addi r1, r0, 1\n"
        "    ret\n");

    ASSERT_EQ(a.cfg.calls().size(), 1u);
    const CallSite &cs = a.cfg.calls()[0];
    EXPECT_TRUE(cs.known);
    EXPECT_EQ(cs.target, a.prog.assembled().symbol("f"));
    // The callee body is reachable through the call edge even
    // though calls are not CFG edges.
    EXPECT_TRUE(a.cfg.reachable()[a.blockAt(cs.target)]);
    EXPECT_TRUE(a.df.calleeWrites(cs.target) & (1u << 1));
    EXPECT_TRUE(a.df.calleeClobbers(cs.target) & (1u << 1));
}

TEST(Dataflow, LivenessAndDeadStore)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    addi r1, r0, 5\n"
        "    addi r1, r0, 6\n"
        "    add  r2, r1, r1\n"
        "    halt\n");

    const std::size_t first = a.prog.indexOf(0x1000);
    const std::size_t second = a.prog.indexOf(0x1004);
    // The first write to r1 is dead, the second is live.
    EXPECT_FALSE(a.df.liveOut(first) & (1u << 1));
    EXPECT_TRUE(a.df.liveOut(second) & (1u << 1));
    // r2 stays live into the exit (results live at halt).
    const std::size_t third = a.prog.indexOf(0x1008);
    EXPECT_TRUE(a.df.liveOut(third) & (1u << 2));
}

TEST(Dataflow, ConstantPropagationThroughLiIdiom)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r1, 0x12345678\n"
        "    addi r2, r1, 8\n"
        "    halt\n");

    const std::size_t use = a.prog.indexOf(0x1008);
    const auto v = a.df.constBefore(use, 1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0x12345678u);
}

TEST(Dataflow, MayDefSeededAcrossCalls)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    jal  ra, f\n"
        "    add  r2, r1, r1\n"
        "    halt\n"
        "f:\n"
        "    addi r1, r0, 9\n"
        "    ret\n");

    // r1 is defined only inside the callee; the call's may-def set
    // must cover it so the caller's read is not flagged undefined.
    const std::size_t use = a.prog.indexOf(0x1004);
    EXPECT_TRUE(a.df.mayDefIn(use) & (1u << 1));
}

TEST(Charact, StrideAndFootprintOfDerivedInduction)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r10, 0x20000\n"
        "    addi r5, r0, 8\n"
        "    addi r1, r0, 0\n"
        "loop:\n"
        "    slli r2, r1, 2\n"
        "    add  r3, r10, r2\n"
        "    sw   r1, 0(r3)\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r5, loop\n"
        "    halt\n");

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.memops.size(), 1u);
    const MemOpChar &m = chr.memops[0];
    EXPECT_EQ(m.kind, MemOpChar::Kind::Strided);
    EXPECT_EQ(m.stride, 4);
    EXPECT_FALSE(m.conditional);
    ASSERT_TRUE(m.region_known);
    EXPECT_EQ(m.region_begin, 0x20000u);
    EXPECT_EQ(m.region_end, 0x20020u);
    EXPECT_TRUE(chr.footprint_known);
    EXPECT_EQ(chr.footprint_bytes, 32u);
}

TEST(Charact, DataDependentAccessDegradesToUnknown)
{
    Analyzed a(
        ".org 0x1000\n"
        "start:\n"
        "    li   r10, 0x20000\n"
        "    addi r5, r0, 8\n"
        "    addi r1, r0, 0\n"
        "loop:\n"
        "    lw   r2, 0(r10)\n"
        "    add  r3, r10, r2\n"
        "    lw   r4, 0(r3)\n"
        "    addi r10, r10, 4\n"
        "    addi r1, r1, 1\n"
        "    bne  r1, r5, loop\n"
        "    halt\n");

    const auto chr = characterize(a.prog, a.cfg, a.df);
    ASSERT_EQ(chr.memops.size(), 2u);
    EXPECT_EQ(chr.memops[0].kind, MemOpChar::Kind::Strided);
    EXPECT_EQ(chr.memops[1].kind, MemOpChar::Kind::Unknown);
    EXPECT_FALSE(chr.footprint_known);
}
