/**
 * @file
 * Tests for the generic set-associative cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace memwall;

namespace {

CacheConfig
cfg(std::uint64_t capacity, std::uint32_t line, std::uint32_t assoc)
{
    CacheConfig c;
    c.capacity = capacity;
    c.line_size = line;
    c.assoc = assoc;
    c.name = "test";
    return c;
}

} // namespace

TEST(CacheConfig, SetsComputed)
{
    EXPECT_EQ(cfg(16 * KiB, 32, 1).sets(), 512u);
    EXPECT_EQ(cfg(16 * KiB, 32, 2).sets(), 256u);
    EXPECT_EQ(cfg(8 * KiB, 512, 1).sets(), 16u);
    EXPECT_EQ(cfg(16 * KiB, 512, 2).sets(), 16u);
}

TEST(CacheConfigDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(cfg(16 * KiB, 33, 1).validate(),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(cfg(10000, 32, 1).validate(),
                ::testing::ExitedWithCode(1), "multiple");
    EXPECT_EXIT(cfg(16 * KiB, 32, 3).validate(),
                ::testing::ExitedWithCode(1), "divide");
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(cfg(1 * KiB, 32, 1));
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x11f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x120, false).hit);  // next line
}

TEST(Cache, DirectMappedConflict)
{
    // 1 KiB direct-mapped, 32 B lines -> 32 sets; addresses 1 KiB
    // apart collide.
    Cache c(cfg(1 * KiB, 32, 1));
    EXPECT_FALSE(c.access(0x0, false).hit);
    EXPECT_FALSE(c.access(0x400, false).hit);
    EXPECT_FALSE(c.access(0x0, false).hit);  // evicted
}

TEST(Cache, TwoWayHoldsBothConflicters)
{
    Cache c(cfg(2 * KiB, 32, 2));
    EXPECT_FALSE(c.access(0x0, false).hit);
    EXPECT_FALSE(c.access(0x400, false).hit);
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(0x400, false).hit);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(cfg(2 * KiB, 32, 2));
    c.access(0x0, false);     // way 0
    c.access(0x400, false);   // way 1
    c.access(0x0, false);     // refresh 0x0
    c.access(0x800, false);   // evicts 0x400 (LRU)
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x400));
    EXPECT_TRUE(c.probe(0x800));
}

TEST(Cache, EvictionReportsVictim)
{
    Cache c(cfg(1 * KiB, 32, 1));
    c.access(0x40, true);  // dirty line at set 2
    const auto res = c.access(0x440, false);
    ASSERT_TRUE(res.eviction.has_value());
    EXPECT_EQ(res.eviction->line_addr, 0x40u);
    EXPECT_TRUE(res.eviction->dirty);
}

TEST(Cache, CleanEviction)
{
    Cache c(cfg(1 * KiB, 32, 1));
    c.access(0x40, false);
    const auto res = c.access(0x440, false);
    ASSERT_TRUE(res.eviction.has_value());
    EXPECT_FALSE(res.eviction->dirty);
}

TEST(Cache, NoEvictionWhenFillingInvalid)
{
    Cache c(cfg(1 * KiB, 32, 1));
    const auto res = c.access(0x40, false);
    EXPECT_FALSE(res.eviction.has_value());
}

TEST(Cache, SubBlockTrackingForVictimCache)
{
    // 512-byte lines with 32-byte sub-blocks (the column-buffer
    // configuration): the eviction must report the last-touched
    // sub-block (Section 5.4).
    CacheConfig c512 = cfg(8 * KiB, 512, 1);
    c512.sub_block_size = 32;
    Cache c(c512);
    c.access(0x0, false);
    c.access(0x1e5, false);  // sub-block 15 (0x1e0)
    const auto res = c.access(0x2000, false);  // conflicts, set 0
    ASSERT_TRUE(res.eviction.has_value());
    EXPECT_EQ(res.eviction->line_addr, 0x0u);
    EXPECT_EQ(res.eviction->last_sub_block, 0x1e0u);
}

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    CacheConfig fa = cfg(1 * KiB, 32, 0);  // assoc 0 = fully assoc
    Cache c(fa);
    // 32 lines fit regardless of address spacing.
    for (Addr a = 0; a < 32; ++a)
        c.access(a * 0x10000, false);
    for (Addr a = 0; a < 32; ++a)
        EXPECT_TRUE(c.probe(a * 0x10000));
    c.access(32 * 0x10000, false);  // evicts exactly one (LRU = 0)
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(0x10000));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(cfg(1 * KiB, 32, 1));
    c.access(0x40, true);
    const auto ev = c.invalidate(0x40);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.invalidate(0x40).has_value());
}

TEST(Cache, TouchRefreshesWithoutFill)
{
    Cache c(cfg(2 * KiB, 32, 2));
    EXPECT_FALSE(c.touch(0x0, false));  // not resident: no fill
    EXPECT_FALSE(c.probe(0x0));
    c.access(0x0, false);
    c.access(0x400, false);
    EXPECT_TRUE(c.touch(0x0, false));  // refresh LRU
    c.access(0x800, false);            // evicts 0x400
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x400));
}

TEST(Cache, StatsSplitLoadsAndStores)
{
    Cache c(cfg(1 * KiB, 32, 1));
    c.access(0x0, false);  // load miss
    c.access(0x0, false);  // load hit
    c.access(0x0, true);   // store hit
    c.access(0x800, true); // store miss
    EXPECT_EQ(c.stats().load_misses.value(), 1u);
    EXPECT_EQ(c.stats().load_hits.value(), 1u);
    EXPECT_EQ(c.stats().store_hits.value(), 1u);
    EXPECT_EQ(c.stats().store_misses.value(), 1u);
}

TEST(Cache, FlushInvalidatesEverythingKeepsStats)
{
    Cache c(cfg(1 * KiB, 32, 1));
    c.access(0x0, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_EQ(c.stats().load_misses.value(), 1u);
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, RandomReplacementIsDeterministicPerSeed)
{
    Cache a(cfg(2 * KiB, 32, 2)), b(cfg(2 * KiB, 32, 2));
    CacheConfig rc = cfg(2 * KiB, 32, 2);
    rc.repl = ReplPolicy::Random;
    Cache r1(rc, 99), r2(rc, 99);
    for (Addr x = 0; x < 4096; x += 32) {
        EXPECT_EQ(r1.access(x * 7, false).hit,
                  r2.access(x * 7, false).hit);
    }
}

/**
 * Property: for fully-associative LRU caches, a larger cache never
 * misses more than a smaller one on the same trace (LRU inclusion).
 */
class LruInclusion : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LruInclusion, BiggerIsNeverWorse)
{
    const std::uint64_t small_cap = GetParam();
    CacheConfig small_cfg = cfg(small_cap, 32, 0);
    CacheConfig big_cfg = cfg(small_cap * 2, 32, 0);
    Cache small(small_cfg), big(big_cfg);
    // Pseudo-random but reproducible trace with locality.
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 20000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = (x % (8 * small_cap)) & ~Addr{31};
        small.access(addr, false);
        big.access(addr, false);
    }
    EXPECT_LE(big.stats().misses(), small.stats().misses());
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruInclusion,
                         ::testing::Values(512, 1024, 4096, 16384));

/**
 * Property: miss count is invariant to the order of constructing
 * the cache (stateless config) and exactly reproducible.
 */
TEST(Cache, DeterministicAcrossInstances)
{
    Cache a(cfg(4 * KiB, 32, 2)), b(cfg(4 * KiB, 32, 2));
    std::uint64_t x = 123456789;
    for (int i = 0; i < 10000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const Addr addr = (x >> 20) % (64 * KiB);
        EXPECT_EQ(a.access(addr, i % 3 == 0).hit,
                  b.access(addr, i % 3 == 0).hit);
    }
    EXPECT_EQ(a.stats().misses(), b.stats().misses());
}
