/**
 * @file
 * Tests for the ASCII table / chart renderers used by the bench
 * harnesses.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using namespace memwall;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("My Title");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.str();
    EXPECT_NE(out.find("My Title"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(TextTable, RuleProducesSeparator)
{
    TextTable t;
    t.setHeader({"x"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    const std::string out = t.str();
    // Separator after header plus the explicit rule: two lines
    // consisting solely of dashes.
    std::istringstream is(out);
    std::string line;
    unsigned rule_lines = 0;
    while (std::getline(is, line)) {
        if (!line.empty() &&
            line.find_first_not_of('-') == std::string::npos)
            ++rule_lines;
    }
    EXPECT_EQ(rule_lines, 2u);
}

TEST(TextTable, ColumnsAlign)
{
    TextTable t;
    t.setHeader({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "2"});
    std::istringstream is(t.str());
    std::string line;
    std::vector<std::size_t> pipes;
    while (std::getline(is, line)) {
        const auto pos = line.find('|');
        if (pos != std::string::npos)
            pipes.push_back(pos);
    }
    ASSERT_GE(pipes.size(), 3u);
    for (std::size_t p : pipes)
        EXPECT_EQ(p, pipes.front());
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, IntWithCommas)
{
    EXPECT_EQ(TextTable::intWithCommas(0), "0");
    EXPECT_EQ(TextTable::intWithCommas(999), "999");
    EXPECT_EQ(TextTable::intWithCommas(1000), "1,000");
    EXPECT_EQ(TextTable::intWithCommas(1234567), "1,234,567");
}

TEST(BarChart, LongestBarFillsWidth)
{
    BarChart c("chart");
    c.setWidth(20);
    c.add("g", "big", 10.0);
    c.add("g", "small", 5.0);
    const std::string out = c.str();
    // Big bar: 20 hashes; small: 10.
    EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
    EXPECT_EQ(out.find(std::string(21, '#')), std::string::npos);
}

TEST(BarChart, GroupsPrintedOnce)
{
    BarChart c("chart");
    c.add("group1", "a", 1.0);
    c.add("group1", "b", 2.0);
    c.add("group2", "c", 3.0);
    const std::string out = c.str();
    // group1 appears exactly once as a header line.
    std::size_t first = out.find("group1");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("group1", first + 1), std::string::npos);
}

TEST(BarChart, ZeroValuesSafe)
{
    BarChart c("chart");
    c.add("g", "zero", 0.0);
    EXPECT_NE(c.str().find("zero"), std::string::npos);
}

TEST(SeriesChart, GridHasAllSeries)
{
    SeriesChart s("title", "x", "y");
    s.addPoint("a", 1.0, 10.0);
    s.addPoint("b", 1.0, 20.0);
    s.addPoint("a", 2.0, 11.0);
    const std::string out = s.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("b"), std::string::npos);
    EXPECT_NE(out.find("10.0000"), std::string::npos);
    // b has no point at x=2: rendered as '-'.
    EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(SeriesChart, PointsSortedByX)
{
    SeriesChart s("t", "x", "y");
    s.addPoint("a", 3.0, 30.0);
    s.addPoint("a", 1.0, 10.0);
    s.addPoint("a", 2.0, 20.0);
    const std::string out = s.str();
    const auto p1 = out.find("10.0000");
    const auto p2 = out.find("20.0000");
    const auto p3 = out.find("30.0000");
    ASSERT_NE(p1, std::string::npos);
    ASSERT_NE(p2, std::string::npos);
    ASSERT_NE(p3, std::string::npos);
    EXPECT_LT(p1, p2);
    EXPECT_LT(p2, p3);
}
