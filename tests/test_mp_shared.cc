/**
 * @file
 * Tests for the MpRuntime allocator and SharedArray plumbing.
 */

#include <gtest/gtest.h>

#include "mp/shared.hh"

using namespace memwall;

namespace {

NumaConfig
smallMachine(unsigned nodes = 2)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = NodeArch::Integrated;
    return c;
}

} // namespace

TEST(MpRuntime, AllocationsArePageAlignedAndDisjoint)
{
    MpRuntime rt(2, smallMachine());
    const Addr a = rt.allocate(100, "a");
    const Addr b = rt.allocate(5000, "b");
    const Addr c = rt.allocate(1, "c");
    const Addr page = 4 * KiB;
    EXPECT_EQ(a % page, 0u);
    EXPECT_EQ(b % page, 0u);
    EXPECT_EQ(c % page, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 5000);
}

TEST(SharedArray, ValuesSurviveSimulatedAccess)
{
    MpRuntime rt(2, smallMachine());
    SharedArray<double> arr(rt, 64, "arr");
    rt.run([&](SimContext &ctx) {
        if (ctx.cpuId() == 0) {
            for (std::size_t i = 0; i < 64; ++i)
                arr.write(ctx, i, i * 1.5);
        }
    });
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_DOUBLE_EQ(arr.raw(i), i * 1.5);
}

TEST(SharedArray, ReadReturnsWrittenValue)
{
    MpRuntime rt(1, smallMachine(1));
    SharedArray<int> arr(rt, 8, "ints");
    int got = 0;
    rt.run([&](SimContext &ctx) {
        arr.write(ctx, 3, 77);
        got = arr.read(ctx, 3);
    });
    EXPECT_EQ(got, 77);
}

TEST(SharedArray, UpdateIsReadModifyWrite)
{
    MpRuntime rt(1, smallMachine(1));
    SharedArray<int> arr(rt, 4, "ints");
    arr.raw(0) = 10;
    rt.run([&](SimContext &ctx) {
        arr.update(ctx, 0, [](int v) { return v + 5; });
    });
    EXPECT_EQ(arr.raw(0), 15);
    // read + write = 2 machine accesses.
    EXPECT_EQ(rt.machine().totalAccesses(), 2u);
}

TEST(SharedArray, AccessesAdvanceVirtualTime)
{
    MpRuntime rt(1, smallMachine(1));
    SharedArray<int> arr(rt, 4, "ints");
    const Tick makespan = rt.run([&](SimContext &ctx) {
        arr.write(ctx, 0, 1);  // cold: local memory, 6 cycles
        arr.read(ctx, 0);      // hit: 1 cycle
    });
    EXPECT_EQ(makespan, 7u);
}

TEST(SharedArray, AddressesAreContiguous)
{
    MpRuntime rt(1, smallMachine(1));
    SharedArray<std::uint64_t> arr(rt, 16, "u64");
    EXPECT_EQ(arr.addrOf(1), arr.addrOf(0) + 8);
    EXPECT_EQ(arr.addrOf(15), arr.addrOf(0) + 120);
}

TEST(SharedArray, RemoteAccessCostsShowUp)
{
    MpRuntime rt(2, smallMachine(2));
    SharedArray<int> arr(rt, 1024, "shared");
    rt.run([&](SimContext &ctx) {
        if (ctx.cpuId() == 0)
            arr.write(ctx, 0, 42);  // first touch: home 0
        ctx.advance(1000);          // crude ordering
        if (ctx.cpuId() == 1)
            arr.read(ctx, 0);  // remote load
    });
    EXPECT_EQ(rt.machine().totalRemoteLoads(), 1u);
}

TEST(MpRuntimeDeath, MoreCpusThanNodes)
{
    EXPECT_DEATH(MpRuntime rt(4, smallMachine(2)), "nodes");
}
