/**
 * @file
 * Tests for the Monte-Carlo GSPN simulator: firing semantics,
 * priorities, random switches, race policy, statistics.
 */

#include <gtest/gtest.h>

#include "gspn/simulator.hh"

using namespace memwall;

TEST(GspnSim, DeterministicChainFiresInOrder)
{
    PetriNet net;
    const PlaceId a = net.addPlace("a", 1);
    const PlaceId b = net.addPlace("b");
    const PlaceId c = net.addPlace("c");
    const TransitionId t1 = net.addDeterministic("t1", 2.0);
    net.input(t1, a);
    net.output(t1, b);
    const TransitionId t2 = net.addDeterministic("t2", 3.0);
    net.input(t2, b);
    net.output(t2, c);

    GspnSimulator sim(net);
    EXPECT_FALSE(sim.run(100.0));  // deadlocks after the chain
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    EXPECT_EQ(sim.marking(c), 1u);
    EXPECT_EQ(sim.firings(t1), 1u);
    EXPECT_EQ(sim.firings(t2), 1u);
}

TEST(GspnSim, ImmediateFiresBeforeTime)
{
    PetriNet net;
    const PlaceId a = net.addPlace("a", 1);
    const PlaceId b = net.addPlace("b");
    const TransitionId imm = net.addImmediate("imm");
    net.input(imm, a);
    net.output(imm, b);
    GspnSimulator sim(net);
    // Fired during reset already (zero time).
    EXPECT_EQ(sim.marking(b), 1u);
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(GspnSim, ImmediatePriorityWins)
{
    PetriNet net;
    const PlaceId a = net.addPlace("a", 1);
    const PlaceId lo = net.addPlace("lo");
    const PlaceId hi = net.addPlace("hi");
    const TransitionId t_lo = net.addImmediate("lo", 1.0, 0);
    net.input(t_lo, a);
    net.output(t_lo, lo);
    const TransitionId t_hi = net.addImmediate("hi", 1.0, 5);
    net.input(t_hi, a);
    net.output(t_hi, hi);
    GspnSimulator sim(net);
    EXPECT_EQ(sim.marking(hi), 1u);
    EXPECT_EQ(sim.marking(lo), 0u);
}

TEST(GspnSim, WeightedSwitchApproximatesProbabilities)
{
    PetriNet net;
    const PlaceId src = net.addPlace("src", 0);
    const PlaceId a = net.addPlace("a");
    const PlaceId b = net.addPlace("b");
    // A clock feeds the switch one token per time unit.
    const TransitionId clock = net.addDeterministic("clock", 1.0);
    net.output(clock, src);
    const PlaceId clock_fuel = net.addPlace("fuel", 1);
    net.input(clock, clock_fuel);
    net.output(clock, clock_fuel);
    const TransitionId ta = net.addImmediate("ta", 3.0);
    net.input(ta, src);
    net.output(ta, a);
    const TransitionId tb = net.addImmediate("tb", 1.0);
    net.input(tb, src);
    net.output(tb, b);

    GspnSimulator sim(net, 2024);
    sim.run(20000.0);
    const double total = sim.marking(a) + sim.marking(b);
    EXPECT_NEAR(sim.marking(a) / total, 0.75, 0.02);
}

TEST(GspnSim, InhibitorBlocksTransition)
{
    PetriNet net;
    const PlaceId fuel = net.addPlace("fuel", 1);
    const PlaceId brake = net.addPlace("brake", 1);
    const PlaceId out = net.addPlace("out");
    const TransitionId t = net.addDeterministic("t", 1.0);
    net.input(t, fuel);
    net.output(t, out);
    net.inhibitor(t, brake);
    GspnSimulator sim(net);
    EXPECT_FALSE(sim.run(10.0));  // deadlocked by the inhibitor
    EXPECT_EQ(sim.marking(out), 0u);
    sim.setMarking(brake, 0);
    sim.run(10.0);  // fires once, then runs out of fuel
    EXPECT_EQ(sim.marking(out), 1u);
}

TEST(GspnSim, TestArcRequiresButDoesNotConsume)
{
    PetriNet net;
    const PlaceId key = net.addPlace("key", 1);
    const PlaceId fuel = net.addPlace("fuel", 3);
    const PlaceId out = net.addPlace("out");
    const TransitionId t = net.addDeterministic("t", 1.0);
    net.input(t, fuel);
    net.test(t, key);
    net.output(t, out);
    GspnSimulator sim(net);
    sim.run(100.0);
    EXPECT_EQ(sim.marking(out), 3u);
    EXPECT_EQ(sim.marking(key), 1u);  // untouched
}

TEST(GspnSim, ExponentialThroughputMatchesRate)
{
    PetriNet net;
    const PlaceId fuel = net.addPlace("fuel", 1);
    const TransitionId t = net.addExponential("t", 0.25);
    net.input(t, fuel);
    net.output(t, fuel);
    GspnSimulator sim(net, 7);
    sim.run(40000.0);
    EXPECT_NEAR(sim.throughput(t), 0.25, 0.01);
}

TEST(GspnSim, RunUntilFiringsStopsExactly)
{
    PetriNet net;
    const PlaceId fuel = net.addPlace("fuel", 1);
    const TransitionId t = net.addDeterministic("t", 2.0);
    net.input(t, fuel);
    net.output(t, fuel);
    GspnSimulator sim(net);
    EXPECT_TRUE(sim.runUntilFirings(t, 10));
    EXPECT_EQ(sim.firings(t), 10u);
    EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(GspnSim, TokenTimeStatistics)
{
    // A token sits in 'a' for 2 units, then in 'b' forever after.
    PetriNet net;
    const PlaceId a = net.addPlace("a", 1);
    const PlaceId b = net.addPlace("b");
    const TransitionId t = net.addDeterministic("t", 2.0);
    net.input(t, a);
    net.output(t, b);
    GspnSimulator sim(net);
    sim.run(10.0);
    // The net deadlocks at t=2; statistics cover [0, 2).
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    EXPECT_DOUBLE_EQ(sim.meanTokens(a), 1.0);
    EXPECT_DOUBLE_EQ(sim.probNonEmpty(a), 1.0);
    EXPECT_DOUBLE_EQ(sim.meanTokens(b), 0.0);
}

TEST(GspnSim, ServerUtilisation)
{
    // Deterministic source every 4 units; service takes 1 unit:
    // the server place is empty 25% of the time.
    PetriNet net;
    const PlaceId fuel = net.addPlace("fuel", 1);
    const PlaceId queue = net.addPlace("queue");
    const PlaceId server_free = net.addPlace("server_free", 1);
    const PlaceId busy = net.addPlace("busy");
    const TransitionId src = net.addDeterministic("src", 4.0);
    net.input(src, fuel);
    net.output(src, fuel);
    net.output(src, queue);
    const TransitionId start = net.addImmediate("start");
    net.input(start, queue);
    net.input(start, server_free);
    net.output(start, busy);
    const TransitionId done = net.addDeterministic("done", 1.0);
    net.input(done, busy);
    net.output(done, server_free);

    GspnSimulator sim(net);
    sim.run(4000.0);
    EXPECT_NEAR(1.0 - sim.probNonEmpty(server_free), 0.25, 0.01);
}

TEST(GspnSim, RaceDiscardsDisabledTimer)
{
    // Two deterministic transitions race for a single token; when
    // the fast one consumes it, the slow one's pending timer must
    // be discarded (enabling-memory race policy), so it never
    // fires.
    PetriNet net;
    const PlaceId fuel = net.addPlace("fuel", 1);
    const PlaceId fa = net.addPlace("fa");
    const PlaceId fb = net.addPlace("fb");
    const TransitionId fast = net.addDeterministic("fast", 1.0);
    net.input(fast, fuel);
    net.output(fast, fa);
    const TransitionId slow = net.addDeterministic("slow", 1.5);
    net.input(slow, fuel);
    net.output(slow, fb);
    GspnSimulator sim(net);
    sim.run(100.0);
    EXPECT_EQ(sim.firings(fast), 1u);
    EXPECT_EQ(sim.firings(slow), 0u);
    EXPECT_EQ(sim.marking(fa), 1u);
    EXPECT_EQ(sim.marking(fb), 0u);
}

TEST(GspnSim, ResetRestoresInitialMarking)
{
    PetriNet net;
    const PlaceId a = net.addPlace("a", 2);
    const PlaceId b = net.addPlace("b");
    const TransitionId t = net.addDeterministic("t", 1.0);
    net.input(t, a);
    net.output(t, b);
    GspnSimulator sim(net);
    sim.run(100.0);
    EXPECT_EQ(sim.marking(a), 0u);
    sim.reset();
    EXPECT_EQ(sim.marking(a), 2u);
    EXPECT_EQ(sim.marking(b), 0u);
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.firings(t), 0u);
}

TEST(GspnSim, SameSeedSameTrajectory)
{
    PetriNet net;
    const PlaceId fuel = net.addPlace("fuel", 1);
    const PlaceId a = net.addPlace("a");
    const PlaceId b = net.addPlace("b");
    const TransitionId exp = net.addExponential("exp", 1.0);
    net.input(exp, fuel);
    net.output(exp, fuel);
    const PlaceId sw = net.addPlace("sw");
    net.output(exp, sw);
    const TransitionId ta = net.addImmediate("ta", 1.0);
    net.input(ta, sw);
    net.output(ta, a);
    const TransitionId tb = net.addImmediate("tb", 1.0);
    net.input(tb, sw);
    net.output(tb, b);

    GspnSimulator s1(net, 555), s2(net, 555);
    s1.run(500.0);
    s2.run(500.0);
    EXPECT_EQ(s1.marking(a), s2.marking(a));
    EXPECT_EQ(s1.marking(b), s2.marking(b));
    EXPECT_EQ(s1.totalFirings(), s2.totalFirings());
}
