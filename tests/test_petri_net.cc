/**
 * @file
 * Tests for the GSPN structural layer.
 */

#include <gtest/gtest.h>

#include "gspn/petri_net.hh"

using namespace memwall;

TEST(PetriNet, BuildsPlacesAndTransitions)
{
    PetriNet net;
    const PlaceId p0 = net.addPlace("p0", 1);
    const PlaceId p1 = net.addPlace("p1");
    const TransitionId t0 = net.addImmediate("t0");
    const TransitionId t1 = net.addDeterministic("t1", 5.0);
    const TransitionId t2 = net.addExponential("t2", 0.5);
    EXPECT_EQ(net.numPlaces(), 2u);
    EXPECT_EQ(net.numTransitions(), 3u);
    EXPECT_EQ(net.placeName(p0), "p0");
    EXPECT_EQ(net.placeName(p1), "p1");
    EXPECT_EQ(net.transitionName(t0), "t0");
    EXPECT_EQ(net.transitionKind(t0), TransitionKind::Immediate);
    EXPECT_EQ(net.transitionKind(t1),
              TransitionKind::Deterministic);
    EXPECT_EQ(net.transitionKind(t2), TransitionKind::Exponential);
}

TEST(PetriNet, ArcShorthands)
{
    PetriNet net;
    const PlaceId p = net.addPlace("p", 1);
    const TransitionId t = net.addImmediate("t");
    net.input(t, p);
    net.output(t, p, 2);
    net.inhibitor(t, p, 3);
    net.test(t, p);
    SUCCEED();  // structure accepted; semantics tested in the sim
}

TEST(PetriNetDeath, RejectsBadIds)
{
    PetriNet net;
    const TransitionId t = net.addImmediate("t");
    EXPECT_DEATH(net.input(t, 99), "bad place id");
    EXPECT_DEATH(net.input(99, net.addPlace("p")),
                 "bad transition id");
}

TEST(PetriNetDeath, RejectsBadParameters)
{
    PetriNet net;
    EXPECT_DEATH(net.addImmediate("w", 0.0), "weight");
    EXPECT_DEATH(net.addExponential("r", 0.0), "rate");
    EXPECT_DEATH(net.addDeterministic("d", -1.0), "delay");
}
