/**
 * @file
 * Tests for the sparse functional backing store.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.hh"

using namespace memwall;

TEST(BackingStore, UntouchedMemoryReadsZero)
{
    BackingStore mem;
    EXPECT_EQ(mem.readU8(0x1234), 0u);
    EXPECT_EQ(mem.readU64(0xdeadbeef000ull), 0u);
    EXPECT_EQ(mem.allocatedPages(), 0u);  // reads do not materialise
}

TEST(BackingStore, ScalarRoundTrips)
{
    BackingStore mem;
    mem.writeU8(0x10, 0xab);
    mem.writeU16(0x20, 0x1234);
    mem.writeU32(0x30, 0xcafebabe);
    mem.writeU64(0x40, 0x0123456789abcdefull);
    EXPECT_EQ(mem.readU8(0x10), 0xab);
    EXPECT_EQ(mem.readU16(0x20), 0x1234);
    EXPECT_EQ(mem.readU32(0x30), 0xcafebabe);
    EXPECT_EQ(mem.readU64(0x40), 0x0123456789abcdefull);
}

TEST(BackingStore, WritesArePreciselyScoped)
{
    BackingStore mem;
    mem.writeU32(0x100, 0xffffffff);
    EXPECT_EQ(mem.readU8(0xff), 0u);
    EXPECT_EQ(mem.readU8(0x104), 0u);
}

TEST(BackingStore, CrossPageBlockAccess)
{
    BackingStore mem;
    const Addr boundary = BackingStore::page_size - 4;
    mem.writeU64(boundary, 0x1122334455667788ull);
    EXPECT_EQ(mem.readU64(boundary), 0x1122334455667788ull);
    EXPECT_EQ(mem.allocatedPages(), 2u);
}

TEST(BackingStore, BlockReadWrite)
{
    BackingStore mem;
    std::vector<std::uint8_t> in(10000);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 7);
    mem.writeBlock(0x12345, in);
    std::vector<std::uint8_t> out(in.size());
    mem.readBlock(0x12345, out);
    EXPECT_EQ(in, out);
}

TEST(BackingStore, BlockReadOfHoleIsZero)
{
    BackingStore mem;
    mem.writeU8(0x100, 0xff);
    std::vector<std::uint8_t> out(16, 0xaa);
    mem.readBlock(0x5000, out);  // untouched page
    for (auto b : out)
        EXPECT_EQ(b, 0u);
}

TEST(BackingStore, SparseFootprint)
{
    BackingStore mem;
    // Two distant writes: exactly two pages.
    mem.writeU8(0, 1);
    mem.writeU8(1ull << 40, 2);
    EXPECT_EQ(mem.allocatedPages(), 2u);
    EXPECT_EQ(mem.footprintBytes(), 2 * BackingStore::page_size);
}

TEST(BackingStore, OverwriteReplaces)
{
    BackingStore mem;
    mem.writeU32(0x0, 0x11111111);
    mem.writeU32(0x0, 0x22222222);
    EXPECT_EQ(mem.readU32(0x0), 0x22222222u);
}
