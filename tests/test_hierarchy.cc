/**
 * @file
 * Tests for the conventional memory-hierarchy timing model and the
 * SS-5 / SS-10 machine configurations behind Table 1 / Figure 2.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace memwall;

TEST(HierarchyConfig, MachinePresets)
{
    const auto ss5 = HierarchyConfig::ss5();
    EXPECT_FALSE(ss5.has_l2);
    EXPECT_EQ(ss5.l1i.capacity, 16 * KiB);
    EXPECT_EQ(ss5.l1d.capacity, 8 * KiB);

    const auto ss10 = HierarchyConfig::ss10();
    EXPECT_TRUE(ss10.has_l2);
    EXPECT_EQ(ss10.l2.capacity, 1 * MiB);
    EXPECT_TRUE(ss10.linear_prefetch);

    // The key Table 1 relationship: the SS-5's memory is closer.
    EXPECT_LT(ss5.memory_ns, ss10.memory_ns);
    // ...but its CPU is slower.
    EXPECT_GT(ss5.freq_mhz, 0.0);
    EXPECT_LT(ss5.freq_mhz, ss10.freq_mhz * 2);
}

TEST(HierarchyConfig, MemoryCyclesConversion)
{
    HierarchyConfig c = HierarchyConfig::reference(150.0);
    // 150 ns at 200 MHz = 30 cycles.
    EXPECT_EQ(c.memoryCycles(), 30u);
}

TEST(MemoryHierarchy, L1HitFastPath)
{
    MemoryHierarchy m(HierarchyConfig::reference());
    m.access(RefKind::Load, 0x1000);  // miss
    const auto res = m.access(RefKind::Load, 0x1000);
    EXPECT_EQ(res.level, 1);
    EXPECT_EQ(res.latency, 1u);
}

TEST(MemoryHierarchy, L2ServicesL1Conflicts)
{
    MemoryHierarchy m(HierarchyConfig::reference());
    // Two addresses that conflict in the 16 KB DM L1 but coexist in
    // the 256 KB L2.
    m.access(RefKind::Load, 0x0);
    m.access(RefKind::Load, 0x4000);
    m.access(RefKind::Load, 0x0);  // L1 miss, L2 hit
    const auto res = m.access(RefKind::Load, 0x4000);
    EXPECT_EQ(res.level, 2);
    EXPECT_EQ(res.latency, 1u + 6u);
}

TEST(MemoryHierarchy, MemoryLevelCharged)
{
    HierarchyConfig c = HierarchyConfig::reference(150.0);
    MemoryHierarchy m(c);
    const auto res = m.access(RefKind::Load, 0x123456);
    EXPECT_EQ(res.level, 3);
    EXPECT_EQ(res.latency, 1u + 6u + 30u);
}

TEST(MemoryHierarchy, SplitInstructionAndDataCaches)
{
    MemoryHierarchy m(HierarchyConfig::reference());
    m.access(RefKind::IFetch, 0x2000);
    // The same address as data still misses the D-cache (Harvard).
    const auto res = m.access(RefKind::Load, 0x2000);
    EXPECT_NE(res.level, 1);
}

TEST(MemoryHierarchy, LinearPrefetchHidesMemoryLatency)
{
    HierarchyConfig c = HierarchyConfig::reference(480.0);
    c.linear_prefetch = true;
    c.prefetch_max_stride = 64;
    MemoryHierarchy m(c);
    // Stream through memory at a 32-byte stride into cold lines:
    // after two misses establish the stride, memory latency is
    // hidden (the SS-10 footnote behaviour).
    Cycles third = 0;
    for (int i = 0; i < 4; ++i) {
        const auto res =
            m.access(RefKind::Load, 0x100000 + i * 4096ull * 8);
        (void)res;
    }
    // Large strides are not recognised.
    EXPECT_EQ(m.access(RefKind::Load, 0x100000 + 5 * 4096ull * 8)
                  .level,
              3);

    MemoryHierarchy m2(c);
    m2.access(RefKind::Load, 0x200000);
    m2.access(RefKind::Load, 0x200000 + 4096);  // stride learned? no (4K)
    m2.access(RefKind::Load, 0x200000 + 8192);
    EXPECT_EQ(m2.access(RefKind::Load, 0x200000 + 12288).level, 3);

    MemoryHierarchy m3(c);
    // 32-byte stride: cold lines, each access a new line.
    m3.access(RefKind::Load, 0x300000);
    m3.access(RefKind::Load, 0x300000 + 32);
    const auto res = m3.access(RefKind::Load, 0x300000 + 64);
    EXPECT_EQ(res.level, 0);  // prefetched
    third = res.latency;
    EXPECT_LT(third, c.memoryCycles());
}

TEST(MemoryHierarchy, MeanLatencyAccounting)
{
    HierarchyConfig c = HierarchyConfig::reference(150.0);
    MemoryHierarchy m(c);
    m.access(RefKind::Load, 0x0);  // 37 cycles
    m.access(RefKind::Load, 0x0);  // 1 cycle
    EXPECT_EQ(m.totalAccesses(), 2u);
    EXPECT_EQ(m.totalCycles(), 38u);
    EXPECT_DOUBLE_EQ(m.meanLatency(), 19.0);
    EXPECT_NEAR(m.meanLatencyNs(), 19.0 * 5.0, 1e-9);
}

TEST(MemoryHierarchy, ResetAndFlush)
{
    MemoryHierarchy m(HierarchyConfig::reference());
    m.access(RefKind::Load, 0x0);
    m.resetStats();
    EXPECT_EQ(m.totalAccesses(), 0u);
    // Still cached after resetStats...
    EXPECT_EQ(m.access(RefKind::Load, 0x0).level, 1);
    m.flush();
    // ...but not after flush.
    EXPECT_NE(m.access(RefKind::Load, 0x0).level, 1);
}

TEST(MemoryHierarchy, Ss5BeatsSs10OnMemoryBoundAccess)
{
    // The Figure 2 crossover: beyond the SS-10's L2, the SS-5's
    // absolute (ns) latency is lower.
    MemoryHierarchy ss5(HierarchyConfig::ss5());
    MemoryHierarchy ss10(HierarchyConfig::ss10());
    // Random-ish cold accesses over 8 MiB, stride too large for the
    // prefetcher.
    for (int i = 0; i < 2000; ++i) {
        const Addr a = (static_cast<Addr>(i) * 7919) % (8 * MiB);
        ss5.access(RefKind::Load, a & ~Addr{15});
        ss10.access(RefKind::Load, a & ~Addr{15});
    }
    EXPECT_LT(ss5.meanLatencyNs(), ss10.meanLatencyNs());
}
