/**
 * @file
 * Tests for MW32 instruction encode/decode/disassemble.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

using namespace memwall;

TEST(Instruction, RFormatRoundTrip)
{
    const Instruction in = Instruction::r(Opcode::Add, 3, 4, 5);
    bool ok = false;
    const Instruction out = Instruction::decode(in.encode(), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(out.op, Opcode::Add);
    EXPECT_EQ(out.rd, 3);
    EXPECT_EQ(out.rs1, 4);
    EXPECT_EQ(out.rs2, 5);
}

TEST(Instruction, IFormatSignExtension)
{
    const Instruction in =
        Instruction::i(Opcode::Addi, 1, 2, -32768);
    bool ok = false;
    const Instruction out = Instruction::decode(in.encode(), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(out.imm, -32768);

    const Instruction pos = Instruction::i(Opcode::Addi, 1, 2, 32767);
    EXPECT_EQ(Instruction::decode(pos.encode()).imm, 32767);
}

TEST(Instruction, LoadStoreRoundTrip)
{
    const Instruction ld = Instruction::i(Opcode::Lw, 7, 8, -4);
    const Instruction out = Instruction::decode(ld.encode());
    EXPECT_EQ(out.op, Opcode::Lw);
    EXPECT_EQ(out.rd, 7);
    EXPECT_EQ(out.rs1, 8);
    EXPECT_EQ(out.imm, -4);

    const Instruction st = Instruction::i(Opcode::Sw, 9, 10, 100);
    const Instruction sout = Instruction::decode(st.encode());
    EXPECT_EQ(sout.rd, 9);  // value register travels in rd
    EXPECT_EQ(sout.imm, 100);
}

TEST(Instruction, BranchOffsetRange)
{
    const Instruction b =
        Instruction::branch(Opcode::Beq, 1, 2, -1024);
    EXPECT_EQ(Instruction::decode(b.encode()).imm, -1024);
    const Instruction b2 =
        Instruction::branch(Opcode::Bne, 1, 2, 1023);
    EXPECT_EQ(Instruction::decode(b2.encode()).imm, 1023);
}

TEST(InstructionDeath, BranchOffsetOutOfRange)
{
    EXPECT_DEATH(Instruction::branch(Opcode::Beq, 1, 2, 1024),
                 "range");
    EXPECT_DEATH(Instruction::branch(Opcode::Beq, 1, 2, -1025),
                 "range");
}

TEST(Instruction, JalTargetRoundTrip)
{
    for (const std::int32_t target : {-1000000, -1, 0, 1, 1000000}) {
        const Instruction j = Instruction::jal(31, target);
        const Instruction out = Instruction::decode(j.encode());
        EXPECT_EQ(out.op, Opcode::Jal);
        EXPECT_EQ(out.rd, 31);
        EXPECT_EQ(out.target, target);
    }
}

TEST(Instruction, JalrRoundTrip)
{
    const Instruction j = Instruction::i(Opcode::Jalr, 0, 31, 8);
    const Instruction out = Instruction::decode(j.encode());
    EXPECT_EQ(out.op, Opcode::Jalr);
    EXPECT_EQ(out.rs1, 31);
    EXPECT_EQ(out.imm, 8);
}

TEST(Instruction, InvalidOpcodeRejected)
{
    bool ok = true;
    Instruction::decode(0x3du << 26, &ok);  // unassigned opcode
    EXPECT_FALSE(ok);
}

TEST(Instruction, Disassembly)
{
    EXPECT_EQ(Instruction::r(Opcode::Add, 1, 2, 3).disassemble(),
              "add r1, r2, r3");
    EXPECT_EQ(Instruction::i(Opcode::Lw, 4, 5, -8).disassemble(),
              "lw r4, -8(r5)");
    EXPECT_EQ(Instruction::i(Opcode::Sw, 6, 7, 12).disassemble(),
              "sw r6, 12(r7)");
    EXPECT_EQ(
        Instruction::branch(Opcode::Beq, 1, 2, 5).disassemble(),
        "beq r1, r2, 5");
    EXPECT_EQ(Instruction::jal(31, -2).disassemble(), "jal r31, -2");
    EXPECT_EQ(Instruction{}.disassemble(), "halt");
}

TEST(Instruction, AccessSizes)
{
    EXPECT_EQ(accessSize(Opcode::Lb), 1u);
    EXPECT_EQ(accessSize(Opcode::Lbu), 1u);
    EXPECT_EQ(accessSize(Opcode::Lh), 2u);
    EXPECT_EQ(accessSize(Opcode::Sw), 4u);
}

TEST(InstructionDeath, AccessSizeOnNonMemoryOp)
{
    EXPECT_DEATH(accessSize(Opcode::Add), "non-memory");
}

/** Every valid opcode must encode/decode losslessly. */
class OpcodeRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OpcodeRoundTrip, SurvivesEncodeDecode)
{
    const auto raw = static_cast<std::uint8_t>(GetParam());
    if (!opcodeValid(raw))
        GTEST_SKIP() << "unassigned opcode";
    const auto op = static_cast<Opcode>(raw);
    Instruction in;
    in.op = op;
    switch (opcodeFormat(op)) {
      case InstrFormat::R:
        in = Instruction::r(op, 1, 2, 3);
        break;
      case InstrFormat::I:
      case InstrFormat::LoadI:
      case InstrFormat::StoreI:
      case InstrFormat::LuiI:
        in = Instruction::i(op, 1, 2, -7);
        break;
      case InstrFormat::Branch:
        in = Instruction::branch(op, 1, 2, -7);
        break;
      case InstrFormat::Jump:
        in = op == Opcode::Jal ? Instruction::jal(1, -7)
                               : Instruction::i(op, 1, 2, -7);
        break;
      case InstrFormat::None:
        break;
    }
    bool ok = false;
    const Instruction out = Instruction::decode(in.encode(), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(out.encode(), in.encode());
    EXPECT_EQ(out.op, op);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::Range(0u, 64u));
