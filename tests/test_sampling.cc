/**
 * @file
 * Tests for the sampled-simulation subsystem: Student-t critical
 * values, confidence intervals, plan parsing/validation, the
 * systematic phase cursor, the sampled miss-rate harness, and the
 * sampled SPLASH runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sampling/confidence.hh"
#include "sampling/plan.hh"
#include "workloads/missrate.hh"
#include "workloads/spec_suite.hh"
#include "workloads/splash/splash.hh"

using namespace memwall;

// --- Student-t critical values -------------------------------------

TEST(TCritical, MatchesTableAnchors)
{
    EXPECT_DOUBLE_EQ(tCritical(1, 0.95), 12.706);
    EXPECT_DOUBLE_EQ(tCritical(10, 0.95), 2.228);
    EXPECT_DOUBLE_EQ(tCritical(30, 0.95), 2.042);
    EXPECT_DOUBLE_EQ(tCritical(1, 0.90), 6.314);
    EXPECT_DOUBLE_EQ(tCritical(5, 0.99), 4.032);
}

TEST(TCritical, ZeroDfIsInfinite)
{
    EXPECT_TRUE(std::isinf(tCritical(0, 0.95)));
}

TEST(TCritical, TailConvergesToNormalQuantile)
{
    // Beyond the table the 1/df correction decays toward z.
    const double t40 = tCritical(40, 0.95);
    const double t1000 = tCritical(1000, 0.95);
    EXPECT_GT(t40, t1000);
    EXPECT_GT(t1000, 1.960);
    EXPECT_NEAR(t1000, 1.960, 0.01);
    // Real t_{40, 0.025} = 2.021; the smooth tail is within 0.1%.
    EXPECT_NEAR(t40, 2.021, 0.003);
}

TEST(TCritical, MonotoneInDf)
{
    for (std::uint64_t df = 1; df < 60; ++df)
        EXPECT_GE(tCritical(df, 0.95), tCritical(df + 1, 0.95));
}

TEST(TCritical, LevelSelection)
{
    // Wider confidence => wider critical value at every df.
    for (std::uint64_t df : {1u, 10u, 100u}) {
        EXPECT_LT(tCritical(df, 0.90), tCritical(df, 0.95));
        EXPECT_LT(tCritical(df, 0.95), tCritical(df, 0.99));
    }
}

// --- Confidence intervals ------------------------------------------

TEST(ConfidenceIntervalTest, MatchesHandComputation)
{
    SampleStat s;
    for (double x : {10.0, 12.0, 14.0, 16.0, 18.0})
        s.add(x);
    const ConfidenceInterval ci = confidenceInterval(s, 0.95);
    EXPECT_TRUE(ci.valid);
    EXPECT_EQ(ci.n, 5u);
    EXPECT_DOUBLE_EQ(ci.mean, 14.0);
    // s = sqrt(10), t_{4,.025} = 2.776: hw = 2.776*sqrt(10)/sqrt(5).
    EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(10.0 / 5.0), 1e-9);
    EXPECT_TRUE(ci.contains(14.0));
    EXPECT_TRUE(ci.contains(ci.lo()));
    EXPECT_FALSE(ci.contains(ci.hi() + 1e-6));
    EXPECT_NEAR(ci.relative(), ci.half_width / 14.0, 1e-12);
}

TEST(ConfidenceIntervalTest, DegenerateSamplesAreInvalid)
{
    // Regression: n < 2 used to yield a zero-width "interval" that
    // trivially contained (only) its own mean and passed any
    // relative-width stop rule immediately.
    SampleStat s;
    ConfidenceInterval ci = confidenceInterval(s);
    EXPECT_FALSE(ci.valid);
    EXPECT_TRUE(std::isinf(ci.half_width));
    EXPECT_FALSE(ci.contains(0.0));
    EXPECT_TRUE(std::isinf(ci.relative()));

    s.add(7.0);
    ci = confidenceInterval(s);
    EXPECT_FALSE(ci.valid);
    EXPECT_TRUE(std::isinf(ci.half_width));
    EXPECT_FALSE(ci.contains(7.0));
}

TEST(ConfidenceIntervalTest, ZeroSpreadIsZeroWidth)
{
    SampleStat s;
    s.add(3.0);
    s.add(3.0);
    const ConfidenceInterval ci = confidenceInterval(s);
    EXPECT_TRUE(ci.valid);
    EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
    EXPECT_TRUE(ci.contains(3.0));
    EXPECT_DOUBLE_EQ(ci.relative(), 0.0);
}

// --- Plan parsing and validation -----------------------------------

TEST(SamplingPlanTest, EmptyStringGivesDefaults)
{
    const SamplingPlan plan = parseSamplingPlan("");
    EXPECT_EQ(plan.scheme, SampleScheme::Systematic);
    EXPECT_EQ(plan.unit_refs, 1000u);
    EXPECT_EQ(plan.warmup_refs, 2000u);
    EXPECT_EQ(plan.period_units, 50u);
    EXPECT_FALSE(plan.adaptive());
}

TEST(SamplingPlanTest, ParsesSystematicSpec)
{
    const SamplingPlan plan =
        parseSamplingPlan("U=500,W=1500,k=10,ci=0.05,max=200,"
                          "level=0.99,seed=7");
    EXPECT_EQ(plan.scheme, SampleScheme::Systematic);
    EXPECT_EQ(plan.unit_refs, 500u);
    EXPECT_EQ(plan.warmup_refs, 1500u);
    EXPECT_EQ(plan.period_units, 10u);
    EXPECT_DOUBLE_EQ(plan.target_ci, 0.05);
    EXPECT_TRUE(plan.adaptive());
    EXPECT_EQ(plan.max_units, 200u);
    EXPECT_DOUBLE_EQ(plan.level, 0.99);
    EXPECT_EQ(plan.seed, 7u);
}

TEST(SamplingPlanTest, ParsesStratifiedSpec)
{
    const SamplingPlan plan =
        parseSamplingPlan("mode=strat,U=1000,W=2000,n=24");
    EXPECT_EQ(plan.scheme, SampleScheme::Stratified);
    EXPECT_EQ(plan.units, 24u);
    EXPECT_NE(plan.describe().find("stratified"), std::string::npos);
    EXPECT_NE(plan.describe().find("n=24"), std::string::npos);
}

TEST(SamplingPlanDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(parseSamplingPlan("U=1000,bogus=3"), "unknown key");
    EXPECT_DEATH(parseSamplingPlan("U"), "malformed");
    EXPECT_DEATH(parseSamplingPlan("U=abc"), "invalid number");
    EXPECT_DEATH(parseSamplingPlan("mode=quantum"), "unknown mode");
}

TEST(SamplingPlanDeathTest, RejectsInconsistentPlans)
{
    // W + U must fit inside the systematic period k*U.
    EXPECT_DEATH(parseSamplingPlan("U=1000,W=5000,k=2"),
                 "cannot fit");
    EXPECT_DEATH(parseSamplingPlan("U=0"), "must be positive");
    EXPECT_DEATH(parseSamplingPlan("mode=strat,n=0"), "n >= 1");
    EXPECT_DEATH(parseSamplingPlan("level=1.5"), "level");
}

// --- Systematic cursor ---------------------------------------------

TEST(SystematicCursorTest, WalksWarmDetailFastForward)
{
    SamplingPlan plan;
    plan.unit_refs = 10;
    plan.warmup_refs = 20;
    plan.period_units = 5;  // period 50: W 20, D 10, FF 20
    plan.validate();
    SystematicCursor c(plan);

    EXPECT_EQ(c.mode(), SampleMode::Warm);
    EXPECT_EQ(c.phaseRemaining(), 20u);
    c.advance(20);
    EXPECT_EQ(c.mode(), SampleMode::Detail);
    EXPECT_EQ(c.phaseRemaining(), 10u);
    EXPECT_EQ(c.unitsCompleted(), 0u);
    c.advance(10);
    EXPECT_TRUE(c.unitJustCompleted());
    EXPECT_EQ(c.unitsCompleted(), 1u);
    EXPECT_EQ(c.mode(), SampleMode::FastForward);
    EXPECT_EQ(c.phaseRemaining(), 20u);
    c.advance(20);
    EXPECT_FALSE(c.unitJustCompleted());
    // Second period begins with warming again.
    EXPECT_EQ(c.mode(), SampleMode::Warm);
}

TEST(SystematicCursorTest, SingleStepAdvancesMatchPhaseWalk)
{
    SamplingPlan plan;
    plan.unit_refs = 5;
    plan.warmup_refs = 10;
    plan.period_units = 4;  // period 20: W 10, D 5, FF 5
    plan.validate();
    SystematicCursor c(plan);

    std::uint64_t warm = 0, detail = 0, ff = 0, completions = 0;
    for (int i = 0; i < 200; ++i) {  // 10 periods, one ref at a time
        switch (c.mode()) {
        case SampleMode::Warm: ++warm; break;
        case SampleMode::Detail: ++detail; break;
        case SampleMode::FastForward: ++ff; break;
        }
        c.advance(1);
        if (c.unitJustCompleted())
            ++completions;
    }
    EXPECT_EQ(warm, 100u);
    EXPECT_EQ(detail, 50u);
    EXPECT_EQ(ff, 50u);
    EXPECT_EQ(completions, 10u);
    EXPECT_EQ(c.unitsCompleted(), 10u);
}

TEST(SystematicCursorTest, NoFastForwardWhenPeriodIsFull)
{
    SamplingPlan plan;
    plan.unit_refs = 10;
    plan.warmup_refs = 10;
    plan.period_units = 2;  // period 20 = W 10 + D 10, FF 0
    plan.validate();
    SystematicCursor c(plan);
    c.advance(10);
    EXPECT_EQ(c.mode(), SampleMode::Detail);
    c.advance(10);
    // Straight back into the next period's warm phase.
    EXPECT_EQ(c.mode(), SampleMode::Warm);
    EXPECT_EQ(c.unitsCompleted(), 1u);
}

// --- Sampled miss-rate harness -------------------------------------

namespace {

MissRateParams
quickParams()
{
    MissRateParams p;
    p.warmup_refs = 20'000;
    p.measured_refs = 100'000;
    return p;
}

} // namespace

TEST(SampledMissRates, SystematicRunsAndIsDeterministic)
{
    const SpecWorkload &w = specSuite().front();
    const SamplingPlan plan = parseSamplingPlan("U=1000,W=2000,k=10");
    const SampledWorkloadMissRates a =
        measureMissRatesSampled(w, quickParams(), plan);
    const SampledWorkloadMissRates b =
        measureMissRatesSampled(w, quickParams(), plan);

    EXPECT_GT(a.units, 0u);
    EXPECT_GT(a.detail_refs, 0u);
    EXPECT_GT(a.ff_refs, 0u);
    ASSERT_FALSE(a.icaches.empty());
    ASSERT_FALSE(a.dcaches.empty());
    for (std::size_t i = 0; i < a.icaches.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.icaches[i].mean(), b.icaches[i].mean());
        EXPECT_DOUBLE_EQ(a.icaches[i].ci.half_width,
                         b.icaches[i].ci.half_width);
    }
    for (std::size_t i = 0; i < a.dcaches.size(); ++i)
        EXPECT_DOUBLE_EQ(a.dcaches[i].mean(), b.dcaches[i].mean());
    // Every reference of the stream lands in exactly one mode.
    EXPECT_EQ(a.detail_refs + a.warm_refs + a.ff_refs,
              quickParams().warmup_refs + quickParams().measured_refs);
}

TEST(SampledMissRates, SystematicTracksExhaustiveRate)
{
    const SpecWorkload &w = specSuite().front();
    const WorkloadMissRates full = measureMissRates(w, quickParams());
    const SampledWorkloadMissRates sampled = measureMissRatesSampled(
        w, quickParams(), parseSamplingPlan("U=1000,W=3000,k=5"));

    const double full_rate =
        full.icache(cachelabels::proposed).missRate();
    const SampledCacheMissRate &est =
        sampled.icache(cachelabels::proposed);
    // The estimate lands near the exhaustive value (the crosscheck
    // bench gates the tight statistical contract; this is a sanity
    // bound for the quick unit-test configuration).
    EXPECT_NEAR(est.mean(), full_rate, 0.02);
    EXPECT_TRUE(est.ci.valid);
}

TEST(SampledMissRates, StratifiedSeedsAreReproducibleAndDistinct)
{
    const SpecWorkload &w = specSuite().front();
    SamplingPlan plan = parseSamplingPlan("mode=strat,U=500,W=1500,n=8");
    const SampledWorkloadMissRates a =
        measureMissRatesSampled(w, quickParams(), plan);
    const SampledWorkloadMissRates b =
        measureMissRatesSampled(w, quickParams(), plan);
    EXPECT_EQ(a.units, 8u);
    for (std::size_t i = 0; i < a.dcaches.size(); ++i)
        EXPECT_DOUBLE_EQ(a.dcaches[i].mean(), b.dcaches[i].mean());

    plan.seed = 1234;
    const SampledWorkloadMissRates c =
        measureMissRatesSampled(w, quickParams(), plan);
    // A different base seed draws different substreams. (Identical
    // estimates for every cache at once would mean the seed is
    // ignored.)
    bool any_different = false;
    for (std::size_t i = 0; i < c.dcaches.size(); ++i)
        if (c.dcaches[i].mean() != a.dcaches[i].mean())
            any_different = true;
    EXPECT_TRUE(any_different);
}

TEST(SampledMissRates, AdaptiveStopsWithinBounds)
{
    const SpecWorkload &w = specSuite().front();
    // Loose target: should stop well before max_units; the plan's n
    // is the adaptive minimum.
    const SamplingPlan plan = parseSamplingPlan(
        "mode=strat,U=500,W=1500,n=6,ci=0.5,max=64");
    const SampledWorkloadMissRates r =
        measureMissRatesSampled(w, quickParams(), plan);
    EXPECT_GE(r.units, 6u);
    EXPECT_LE(r.units, 64u);
}

// --- Sampled SPLASH runs -------------------------------------------

namespace {

SplashParams
splashParams(const SamplingPlan *plan)
{
    SplashParams p;
    p.nprocs = 2;
    p.machine.nodes = 2;
    p.machine.arch = NodeArch::Integrated;
    p.machine.victim_cache = true;
    p.scale = 0.02;
    p.sampling = plan;
    return p;
}

} // namespace

TEST(SampledSplash, ExecutionIsExactUnderSampling)
{
    SamplingPlan plan = parseSamplingPlan("U=200,W=400,k=10");
    const SplashResult full = runLu(splashParams(nullptr));
    const SplashResult sampled = runLu(splashParams(&plan));

    // Continuous functional warming: sampling changes the timing
    // estimate, never the computation.
    EXPECT_TRUE(sampled.sampled);
    EXPECT_FALSE(full.sampled);
    EXPECT_DOUBLE_EQ(sampled.checksum, full.checksum);
    EXPECT_EQ(sampled.accesses, full.accesses);
    EXPECT_GT(sampled.sample_units, 0u);
    EXPECT_GT(sampled.sampled_latency, 0.0);
    EXPECT_GT(sampled.makespan, 0u);
}

TEST(SampledSplash, DeterministicAcrossRuns)
{
    SamplingPlan plan = parseSamplingPlan("U=200,W=400,k=10");
    const SplashResult a = runMp3d(splashParams(&plan));
    const SplashResult b = runMp3d(splashParams(&plan));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.sample_units, b.sample_units);
    EXPECT_DOUBLE_EQ(a.sampled_latency, b.sampled_latency);
    EXPECT_DOUBLE_EQ(a.sampled_latency_half, b.sampled_latency_half);
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(SampledSplash, AllDetailPlanMatchesExhaustiveLatency)
{
    // k=1, W=0: every access is a detail access; the sampled mean
    // latency must equal the exhaustive run's mean access latency and
    // the makespan must be exact.
    SamplingPlan plan;
    plan.unit_refs = 500;
    plan.warmup_refs = 0;
    plan.period_units = 1;
    plan.validate();
    const SplashResult full = runWater(splashParams(nullptr));
    const SplashResult sampled = runWater(splashParams(&plan));
    EXPECT_EQ(sampled.ff_accesses, 0u);
    EXPECT_EQ(sampled.detail_accesses, sampled.accesses);
    EXPECT_EQ(sampled.makespan, full.makespan);
    EXPECT_DOUBLE_EQ(sampled.checksum, full.checksum);
}
