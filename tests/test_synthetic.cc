/**
 * @file
 * Tests for the synthetic workload generator: routine switching,
 * call structure, data-stream mixture, lockstep groups, reuse.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "trace/synthetic.hh"

using namespace memwall;

namespace {

SyntheticSpec
minimalSpec()
{
    SyntheticSpec spec;
    spec.name = "test";
    CodeRoutine r;
    r.base = 0x1000;
    r.length = 64;  // 16 instructions
    spec.routines = {r};
    spec.refs_per_instr = 0.0;
    spec.seed = 5;
    return spec;
}

} // namespace

TEST(Synthetic, InstructionStreamWalksRoutine)
{
    SyntheticWorkload w(minimalSpec());
    std::vector<Addr> pcs;
    w.generate(16, [&](const MemRef &r) {
        ASSERT_EQ(r.type, RefType::IFetch);
        pcs.push_back(r.pc);
    });
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(pcs[i], 0x1000 + 4 * i);
}

TEST(Synthetic, DeterministicAcrossInstances)
{
    SyntheticSpec spec = minimalSpec();
    spec.routines.push_back(
        CodeRoutine{0x2000, 128, 2.0, 3.0, -1});
    DataStream s;
    s.kind = StreamKind::Random;
    s.base = 0x100000;
    s.size = 64 * KiB;
    spec.streams = {s};
    spec.refs_per_instr = 0.4;

    SyntheticWorkload a(spec), b(spec);
    std::vector<MemRef> ra, rb;
    a.generate(5000, [&](const MemRef &r) { ra.push_back(r); });
    b.generate(5000, [&](const MemRef &r) { rb.push_back(r); });
    EXPECT_EQ(ra, rb);
}

TEST(Synthetic, GenerateIntoMatchesGenerate)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Random;
    s.base = 0x100000;
    s.size = 64 * KiB;
    spec.streams = {s};
    spec.refs_per_instr = 0.4;

    SyntheticWorkload a(spec), b(spec);
    std::vector<MemRef> via_generate, via_into;
    std::uint64_t na =
        a.generate(5000,
                   [&](const MemRef &r) { via_generate.push_back(r); });
    std::uint64_t nb = b.generateInto(
        5000, [&](const MemRef &r) { via_into.push_back(r); });
    EXPECT_EQ(na, nb);
    EXPECT_EQ(via_generate, via_into);
}

TEST(Synthetic, GenerateBatchMatchesGenerateAndAppends)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Chase;
    s.base = 0x40000;
    s.size = 16 * KiB;
    spec.streams = {s};
    spec.refs_per_instr = 0.3;

    SyntheticWorkload a(spec), b(spec);
    std::vector<MemRef> reference;
    a.generate(4000,
               [&](const MemRef &r) { reference.push_back(r); });

    // A batch of the same size reproduces the generate() stream, and
    // generateBatch appends without clearing what @p out held before.
    std::vector<MemRef> batched = {MemRef::fetch(0xdead)};
    std::uint64_t n = b.generateBatch(4000, batched);
    EXPECT_EQ(n, reference.size());
    ASSERT_EQ(batched.size(), reference.size() + 1);
    EXPECT_EQ(batched.front(), MemRef::fetch(0xdead));
    EXPECT_EQ(std::vector<MemRef>(batched.begin() + 1, batched.end()),
              reference);
}

TEST(Synthetic, ResetReplaysIdentically)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Chase;
    s.base = 0;
    s.size = 4096;
    spec.streams = {s};
    spec.refs_per_instr = 0.5;
    SyntheticWorkload w(spec);
    std::vector<MemRef> first, second;
    w.generate(1000, [&](const MemRef &r) { first.push_back(r); });
    w.reset();
    w.generate(1000, [&](const MemRef &r) { second.push_back(r); });
    EXPECT_EQ(first, second);
}

TEST(Synthetic, RefsPerInstrRatio)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    spec.streams = {s};
    spec.refs_per_instr = 0.30;
    SyntheticWorkload w(spec);
    unsigned fetches = 0, data = 0;
    w.generate(40000, [&](const MemRef &r) {
        if (r.type == RefType::IFetch)
            ++fetches;
        else
            ++data;
    });
    EXPECT_NEAR(static_cast<double>(data) / fetches, 0.30, 0.02);
}

TEST(Synthetic, StoreFractionRespected)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.store_frac = 0.25;
    spec.streams = {s};
    spec.refs_per_instr = 0.5;
    SyntheticWorkload w(spec);
    unsigned loads = 0, stores = 0;
    w.generate(60000, [&](const MemRef &r) {
        if (r.type == RefType::Load)
            ++loads;
        else if (r.type == RefType::Store)
            ++stores;
    });
    EXPECT_NEAR(static_cast<double>(stores) / (loads + stores),
                0.25, 0.02);
}

TEST(Synthetic, StridedStreamIsSequential)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Strided;
    s.base = 0x100000;
    s.size = 1024;
    s.stride = 8;
    s.store_frac = 0.0;
    s.reuse = 1;
    spec.streams = {s};
    spec.refs_per_instr = 1.0;  // data ref every instruction
    SyntheticWorkload w(spec);
    std::vector<Addr> addrs;
    w.generate(64, [&](const MemRef &r) {
        if (r.type != RefType::IFetch)
            addrs.push_back(r.addr);
    });
    for (std::size_t i = 1; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], addrs[i - 1] + 8);
}

TEST(Synthetic, ReuseRepeatsPositions)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Strided;
    s.base = 0;
    s.size = 4096;
    s.stride = 8;
    s.store_frac = 0.0;
    s.reuse = 3;
    spec.streams = {s};
    spec.refs_per_instr = 1.0;
    SyntheticWorkload w(spec);
    std::vector<Addr> addrs;
    w.generate(18, [&](const MemRef &r) {
        if (r.type != RefType::IFetch)
            addrs.push_back(r.addr);
    });
    ASSERT_GE(addrs.size(), 6u);
    EXPECT_EQ(addrs[0], addrs[1]);
    EXPECT_EQ(addrs[1], addrs[2]);
    EXPECT_EQ(addrs[3], addrs[0] + 8);
}

TEST(Synthetic, RandomStreamStaysInRegion)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Random;
    s.base = 0x40000;
    s.size = 8192;
    s.access_size = 8;
    spec.streams = {s};
    spec.refs_per_instr = 1.0;
    SyntheticWorkload w(spec);
    w.generate(4000, [&](const MemRef &r) {
        if (r.type == RefType::IFetch)
            return;
        EXPECT_GE(r.addr, 0x40000u);
        EXPECT_LT(r.addr, 0x40000u + 8192u);
        EXPECT_EQ(r.addr % 8, 0u);
    });
}

TEST(Synthetic, ChaseCoversRegion)
{
    SyntheticSpec spec = minimalSpec();
    DataStream s;
    s.kind = StreamKind::Chase;
    s.base = 0x0;
    s.size = 1024;
    s.access_size = 16;
    spec.streams = {s};
    spec.refs_per_instr = 1.0;
    SyntheticWorkload w(spec);
    std::set<Addr> seen;
    w.generate(4000, [&](const MemRef &r) {
        if (r.type != RefType::IFetch)
            seen.insert(r.addr);
    });
    // 64 slots; the LCG walk should reach most of them.
    EXPECT_GT(seen.size(), 48u);
}

TEST(Synthetic, CallTargetAlternatesLoopAndFunction)
{
    // The 125.turb3d structure: a loop calls its helper after every
    // pass.
    SyntheticSpec spec;
    spec.name = "turb-mini";
    spec.seed = 3;
    CodeRoutine loop;
    loop.base = 0x1000;
    loop.length = 16;  // 4 instructions
    loop.mean_repeats = 100;
    loop.call_target = 1;
    CodeRoutine callee;
    callee.base = 0x9000;
    callee.length = 8;  // 2 instructions
    callee.weight = 0.001;
    spec.routines = {loop, callee};
    spec.refs_per_instr = 0.0;

    SyntheticWorkload w(spec);
    std::vector<Addr> pcs;
    w.generate(12, [&](const MemRef &r) { pcs.push_back(r.pc); });
    // loop pass (4), callee (2), loop pass (4), callee (2 begins).
    const std::vector<Addr> expected{
        0x1000, 0x1004, 0x1008, 0x100c, 0x9000, 0x9004,
        0x1000, 0x1004, 0x1008, 0x100c, 0x9000, 0x9004};
    EXPECT_EQ(pcs, expected);
}

TEST(Synthetic, LockstepGroupSharesCursor)
{
    SyntheticSpec spec = minimalSpec();
    DataStream a, b, c;
    a.base = 0x10000;
    b.base = 0x20000;
    c.base = 0x30000;
    for (DataStream *s : {&a, &b, &c}) {
        s->kind = StreamKind::Strided;
        s->size = 4096;
        s->stride = 8;
        s->store_frac = 0.0;
        s->reuse = 1;
        s->group = 0;
    }
    spec.streams = {a, b, c};
    spec.refs_per_instr = 1.0;
    SyntheticWorkload w(spec);
    std::vector<Addr> addrs;
    w.generate(18, [&](const MemRef &r) {
        if (r.type != RefType::IFetch)
            addrs.push_back(r.addr);
    });
    ASSERT_GE(addrs.size(), 6u);
    // Round-robin across members at the SAME offset...
    EXPECT_EQ(addrs[0], 0x10000u);
    EXPECT_EQ(addrs[1], 0x20000u);
    EXPECT_EQ(addrs[2], 0x30000u);
    // ...then the shared cursor advances.
    EXPECT_EQ(addrs[3], 0x10008u);
    EXPECT_EQ(addrs[4], 0x20008u);
    EXPECT_EQ(addrs[5], 0x30008u);
}

TEST(SyntheticDeath, RejectsBadSpecs)
{
    SyntheticSpec no_routines;
    no_routines.refs_per_instr = 0.0;
    EXPECT_EXIT(SyntheticWorkload{no_routines},
                ::testing::ExitedWithCode(1), "routine");

    SyntheticSpec bad = minimalSpec();
    bad.refs_per_instr = 0.5;  // but no streams
    EXPECT_EXIT(SyntheticWorkload{bad},
                ::testing::ExitedWithCode(1), "stream");
}
