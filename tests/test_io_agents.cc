/**
 * @file
 * Tests for the Section 8 I/O agents: frame-buffer scan-out and
 * DRAM refresh, standalone and integrated into the device.
 */

#include <gtest/gtest.h>

#include "core/pim_device.hh"
#include "io/framebuffer.hh"
#include "io/refresh.hh"
#include "trace/synthetic.hh"

using namespace memwall;

TEST(Framebuffer, BandwidthMath)
{
    FramebufferConfig c;  // 1024x768x8bpp @72Hz
    EXPECT_EQ(c.frameBytes(), 1024ull * 768);
    EXPECT_NEAR(c.bandwidthMBps(), 56.6, 0.1);
    // 1536 columns per frame, 200e6/72 cycles per frame.
    FramebufferAgent agent(c);
    EXPECT_NEAR(agent.columnInterval(), (200e6 / 72.0) / 1536.0,
                1.0);
}

TEST(Framebuffer, ScansSequentiallyAndWraps)
{
    FramebufferConfig c;
    c.width = 64;
    c.height = 16;  // 1 KiB frame = 2 columns
    c.refresh_hz = 1e5;
    FramebufferAgent agent(c);
    Dram dram;
    // One full frame of scan-out.
    const double frame_cycles = 200e6 / 1e5;
    agent.drainUpTo(dram, static_cast<Tick>(frame_cycles));
    EXPECT_GE(agent.columnsFetched(), 2u);
    EXPECT_EQ(dram.totalAccesses(), agent.columnsFetched());
}

TEST(Framebuffer, DrainIsIdempotentAtSameTime)
{
    FramebufferAgent agent;
    Dram dram;
    agent.drainUpTo(dram, 100000);
    const auto first = agent.columnsFetched();
    agent.drainUpTo(dram, 100000);
    EXPECT_EQ(agent.columnsFetched(), first);
}

TEST(Framebuffer, LateStartSkipsMissedFrames)
{
    FramebufferAgent agent;
    Dram dram;
    // Jump 10^9 cycles in: catch-up must stay bounded to ~1 frame.
    agent.drainUpTo(dram, 1'000'000'000);
    const double per_frame =
        agent.config().frameBytes() / 512.0;
    EXPECT_LE(agent.columnsFetched(),
              static_cast<std::uint64_t>(per_frame) + 2);
}

TEST(Refresh, RateMath)
{
    RefreshConfig c;  // 64 ms, 8192 rows/bank
    DramConfig d;     // 16 banks
    RefreshAgent agent(c, d);
    // 131072 rows in 12.8M cycles -> one refresh every ~97.7 cycles.
    EXPECT_NEAR(agent.refreshInterval(), 97.66, 0.5);
    // Overhead: 10 busy cycles per bank per 1562 cycles = 0.64%.
    EXPECT_NEAR(agent.overheadFraction(d), 0.0064, 0.0005);
}

TEST(Refresh, DrainCapBoundsOneCallAndDeficitCarries)
{
    RefreshConfig c;
    c.max_per_call = 100;
    DramConfig d;
    RefreshAgent agent(c, d);
    Dram dram(d);
    // A huge time jump owes ~10240 refreshes; one call issues at
    // most the cap.
    EXPECT_EQ(agent.drainUpTo(dram, 1'000'000), 100u);
    EXPECT_EQ(agent.refreshesIssued(), 100u);
    // The deficit carries: repeated calls at the SAME time keep
    // catching up until the backlog is paid off.
    EXPECT_EQ(agent.drainUpTo(dram, 1'000'000), 100u);
    unsigned total = 200;
    while (unsigned n = agent.drainUpTo(dram, 1'000'000)) {
        EXPECT_LE(n, 100u);
        total += n;
    }
    // ~97.66 cycles per refresh over 1M cycles.
    EXPECT_NEAR(static_cast<double>(total), 1'000'000 / 97.66, 2.0);
    // Fully caught up: nothing more is due.
    EXPECT_EQ(agent.drainUpTo(dram, 1'000'000), 0u);
}

TEST(Refresh, DefaultCapInvisibleAtNormalCadence)
{
    RefreshConfig c;  // default 64 Ki cap
    DramConfig d;
    RefreshAgent agent(c, d);
    Dram dram(d);
    // Normal per-access drain cadence: small forward steps never
    // come close to the cap.
    for (Tick t = 256; t <= 100'000; t += 256)
        EXPECT_LE(agent.drainUpTo(dram, t), 4u);
    EXPECT_NEAR(static_cast<double>(agent.refreshesIssued()),
                100'000 / 97.66, 2.0);
}

TEST(RefreshDeath, ZeroCapRejected)
{
    RefreshConfig c;
    c.max_per_call = 0;
    EXPECT_DEATH(RefreshAgent(c, DramConfig{}), "cap");
}

namespace {

/** Observer that records every refresh callback. */
struct CountingObserver : RefreshObserver
{
    unsigned calls = 0;
    std::uint32_t last_bank = 0;
    std::uint32_t last_row = 0;
    Tick last_when = 0;

    void
    onRefresh(std::uint32_t bank, std::uint32_t row,
              Tick when) override
    {
        ++calls;
        last_bank = bank;
        last_row = row;
        last_when = when;
    }
};

} // namespace

TEST(Refresh, ObserverSeesEveryRefreshedRow)
{
    RefreshConfig c;
    DramConfig d;
    RefreshAgent agent(c, d);
    CountingObserver obs;
    agent.setObserver(&obs);
    Dram dram(d);
    agent.drainUpTo(dram, 10'000);
    EXPECT_EQ(obs.calls, agent.refreshesIssued());
    EXPECT_GE(obs.calls, 100u);
    EXPECT_LT(obs.last_bank, d.banks);
    EXPECT_LT(obs.last_row, c.rows_per_bank);
    EXPECT_LE(obs.last_when, 10'000u);
    // Detaching stops the callbacks without stopping refresh.
    agent.setObserver(nullptr);
    const auto before = obs.calls;
    agent.drainUpTo(dram, 20'000);
    EXPECT_EQ(obs.calls, before);
    EXPECT_GT(agent.refreshesIssued(), before);
}

TEST(Refresh, RotatesAcrossBanks)
{
    RefreshConfig c;
    DramConfig d;
    RefreshAgent agent(c, d);
    Dram dram(d);
    agent.drainUpTo(dram, 10000);  // ~102 refreshes
    EXPECT_GE(agent.refreshesIssued(), 100u);
    // Every bank got roughly its share (busy on all banks).
    for (unsigned b = 0; b < d.banks; ++b)
        EXPECT_GT(dram.bankUtilisation(b, 10000), 0.0) << b;
}

TEST(PimDeviceIo, FramebufferStealsBandwidth)
{
    SyntheticSpec spec;
    spec.name = "stream";
    spec.routines = {CodeRoutine{0x1000, 512, 1.0, 50.0, -1}};
    DataStream stream;
    stream.base = 0x100000;
    stream.size = 8 * MiB;  // streaming: constant DRAM traffic
    stream.stride = 8;
    spec.streams = {stream};
    spec.refs_per_instr = 0.4;

    PimDeviceConfig plain;
    PimDevice quiet(plain);
    SyntheticWorkload w1(spec);
    const double cpi_quiet = quiet.runWorkload(w1, 300'000);

    PimDeviceConfig noisy = plain;
    noisy.framebuffer_enabled = true;
    noisy.framebuffer.width = 1920;
    noisy.framebuffer.height = 1080;
    noisy.framebuffer.bits_per_pixel = 24;
    PimDevice loud(noisy);
    SyntheticWorkload w2(spec);
    const double cpi_noisy = loud.runWorkload(w2, 300'000);

    EXPECT_GT(loud.framebuffer()->columnsFetched(), 100u);
    // Scan-out steals bank slots: CPI can only get worse.
    EXPECT_GE(cpi_noisy, cpi_quiet);
}

TEST(PimDeviceIo, RefreshCostIsSmall)
{
    SyntheticSpec spec;
    spec.name = "hot";
    spec.routines = {CodeRoutine{0x1000, 512, 1.0, 50.0, -1}};
    DataStream hot;
    hot.base = 0x100000;
    hot.size = 4 * KiB;
    spec.streams = {hot};
    spec.refs_per_instr = 0.3;

    PimDevice quiet;
    SyntheticWorkload w1(spec);
    const double cpi_quiet = quiet.runWorkload(w1, 200'000);

    PimDeviceConfig cfg;
    cfg.refresh_enabled = true;
    PimDevice refreshing(cfg);
    SyntheticWorkload w2(spec);
    const double cpi_ref = refreshing.runWorkload(w2, 200'000);

    EXPECT_GT(refreshing.refreshAgent()->refreshesIssued(), 1000u);
    // Distributed refresh costs well under 2% CPI.
    EXPECT_LT(cpi_ref, cpi_quiet * 1.02 + 0.01);
}
