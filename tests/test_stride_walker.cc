/**
 * @file
 * Tests for the Figure 2 stride-walk generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/stride_walker.hh"

using namespace memwall;

TEST(StrideWalker, WalksWithStride)
{
    StrideWalker w(0x1000, 256, 16);
    std::vector<Addr> addrs;
    w.generate(4, [&](const MemRef &r) {
        EXPECT_EQ(r.type, RefType::Load);
        addrs.push_back(r.addr);
    });
    EXPECT_EQ(addrs,
              (std::vector<Addr>{0x1000, 0x1010, 0x1020, 0x1030}));
}

TEST(StrideWalker, WrapsAtArrayEnd)
{
    StrideWalker w(0x0, 64, 32);
    std::vector<Addr> addrs;
    w.generate(4, [&](const MemRef &r) { addrs.push_back(r.addr); });
    EXPECT_EQ(addrs, (std::vector<Addr>{0x0, 0x20, 0x0, 0x20}));
}

TEST(StrideWalker, NonDividingStrideStillWraps)
{
    StrideWalker w(0x0, 100, 48);
    std::vector<Addr> addrs;
    w.generate(4, [&](const MemRef &r) { addrs.push_back(r.addr); });
    // 0, 48, 96, then 144 >= 100 wraps to 44.
    EXPECT_EQ(addrs, (std::vector<Addr>{0, 48, 96, 44}));
}

TEST(StrideWalker, ResetRestarts)
{
    StrideWalker w(0x100, 1024, 64);
    Addr first = 0;
    w.generate(1, [&](const MemRef &r) { first = r.addr; });
    w.generate(5, [](const MemRef &) {});
    w.reset();
    Addr again = 0;
    w.generate(1, [&](const MemRef &r) { again = r.addr; });
    EXPECT_EQ(first, again);
}

TEST(StrideWalkerDeath, RejectsBadParameters)
{
    EXPECT_EXIT(StrideWalker(0, 100, 0),
                ::testing::ExitedWithCode(1), "stride");
    EXPECT_EXIT(StrideWalker(0, 8, 16), ::testing::ExitedWithCode(1),
                "smaller");
}

TEST(StrideWalker, GenerateReturnsCount)
{
    StrideWalker w(0, 4096, 8);
    EXPECT_EQ(w.generate(123, [](const MemRef &) {}), 123u);
}
