/**
 * @file
 * Tests for the 7-way Inter-Node Cache (Figure 6).
 */

#include <gtest/gtest.h>

#include "coherence/inc.hh"

using namespace memwall;

TEST(Inc, GeometryFromReservedBytes)
{
    InterNodeCache inc;  // 1 MiB reserved
    // 2048 columns x 7 lines x 32 B of data capacity.
    EXPECT_EQ(inc.dataCapacity(), 2048ull * 7 * 32);
}

TEST(Inc, MissThenInsertThenHit)
{
    InterNodeCache inc;
    EXPECT_FALSE(inc.access(0x5000, false));
    inc.insert(0x5000);
    EXPECT_TRUE(inc.access(0x5000, false));
    EXPECT_TRUE(inc.access(0x501f, false));   // same 32-byte block
    EXPECT_FALSE(inc.access(0x5020, false));  // next block
}

TEST(Inc, AccessDoesNotAllocate)
{
    InterNodeCache inc;
    inc.access(0x7000, false);
    inc.access(0x7000, false);
    EXPECT_FALSE(inc.probe(0x7000));
}

TEST(Inc, SevenWayAssociativity)
{
    IncConfig cfg;
    cfg.reserved_bytes = 8 * KiB;  // 16 sets
    InterNodeCache inc(cfg);
    // 7 blocks mapping to the same set coexist; the 8th evicts.
    const Addr stride = 16 * 32;  // sets wrap every 16 blocks
    for (unsigned i = 0; i < 7; ++i)
        inc.insert(i * stride);
    for (unsigned i = 0; i < 7; ++i)
        EXPECT_TRUE(inc.probe(i * stride)) << i;
    inc.insert(7 * stride);
    unsigned resident = 0;
    for (unsigned i = 0; i <= 7; ++i)
        resident += inc.probe(i * stride) ? 1 : 0;
    EXPECT_EQ(resident, 7u);
}

TEST(Inc, LruWithinSet)
{
    IncConfig cfg;
    cfg.reserved_bytes = 8 * KiB;
    InterNodeCache inc(cfg);
    const Addr stride = 16 * 32;
    for (unsigned i = 0; i < 7; ++i)
        inc.insert(i * stride);
    inc.access(0, false);  // refresh block 0
    inc.insert(7 * stride);  // evicts block 1 (LRU)
    EXPECT_TRUE(inc.probe(0));
    EXPECT_FALSE(inc.probe(stride));
}

TEST(Inc, InvalidateRemoves)
{
    InterNodeCache inc;
    inc.insert(0x9000);
    EXPECT_TRUE(inc.invalidate(0x9000));
    EXPECT_FALSE(inc.probe(0x9000));
    EXPECT_FALSE(inc.invalidate(0x9000));
}

TEST(Inc, StatsTrackHitsAndMisses)
{
    InterNodeCache inc;
    inc.access(0x0, false);   // load miss
    inc.insert(0x0);
    inc.access(0x0, true);    // store hit
    EXPECT_EQ(inc.stats().load_misses.value(), 1u);
    EXPECT_EQ(inc.stats().store_hits.value(), 1u);
}

TEST(IncDeath, RejectsNonPowerOfTwoColumns)
{
    IncConfig cfg;
    cfg.reserved_bytes = 3 * 512;
    EXPECT_EXIT(InterNodeCache inc(cfg),
                ::testing::ExitedWithCode(1), "power");
}

TEST(Inc, FlushEmpties)
{
    InterNodeCache inc;
    inc.insert(0x100);
    inc.flush();
    EXPECT_FALSE(inc.probe(0x100));
}
