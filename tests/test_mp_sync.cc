/**
 * @file
 * Tests for the simulated barrier and lock.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mp/sync.hh"

using namespace memwall;

TEST(SimBarrier, AllLeaveAtMaxArrivalPlusCost)
{
    MpScheduler sched(3, 0);
    SyncCosts costs;
    costs.barrier = 10;
    SimBarrier barrier(3, costs);
    std::vector<Tick> leave(3);
    sched.run([&](SimContext &ctx) {
        ctx.advance(100 * (ctx.cpuId() + 1));  // arrive at 100/200/300
        barrier.wait(ctx);
        leave[ctx.cpuId()] = ctx.now();
    });
    for (unsigned cpu = 0; cpu < 3; ++cpu)
        EXPECT_EQ(leave[cpu], 310u) << "cpu " << cpu;
    EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(SimBarrier, ReusableAcrossEpisodes)
{
    MpScheduler sched(2, 0);
    SimBarrier barrier(2);
    std::vector<Tick> after(2);
    sched.run([&](SimContext &ctx) {
        for (int round = 0; round < 5; ++round) {
            ctx.advance(ctx.cpuId() == 0 ? 10 : 20);
            barrier.wait(ctx);
        }
        after[ctx.cpuId()] = ctx.now();
    });
    EXPECT_EQ(barrier.episodes(), 5u);
    EXPECT_EQ(after[0], after[1]);
}

TEST(SimBarrier, SinglePartyPassesThrough)
{
    MpScheduler sched(1);
    SimBarrier barrier(1);
    sched.run([&](SimContext &ctx) {
        barrier.wait(ctx);
        barrier.wait(ctx);
    });
    EXPECT_EQ(barrier.episodes(), 2u);
}

TEST(SimLock, UncontendedAcquireChargesCost)
{
    MpScheduler sched(1);
    SyncCosts costs;
    costs.lock_acquire = 15;
    costs.lock_release = 2;
    SimLock lock(costs);
    sched.run([&](SimContext &ctx) {
        lock.acquire(ctx);
        EXPECT_EQ(ctx.now(), 15u);
        lock.release(ctx);
        EXPECT_EQ(ctx.now(), 17u);
    });
    EXPECT_EQ(lock.acquisitions(), 1u);
    EXPECT_EQ(lock.contended(), 0u);
}

TEST(SimLock, MutualExclusionInVirtualTime)
{
    MpScheduler sched(4, 0);
    SimLock lock;
    std::vector<std::pair<Tick, Tick>> sections(4);
    sched.run([&](SimContext &ctx) {
        ctx.advance(1 + ctx.cpuId());
        lock.acquire(ctx);
        const Tick start = ctx.now();
        ctx.advance(50);  // critical section
        sections[ctx.cpuId()] = {start, ctx.now()};
        lock.release(ctx);
    });
    // No two critical sections overlap in virtual time.
    for (unsigned a = 0; a < 4; ++a)
        for (unsigned b = a + 1; b < 4; ++b) {
            const bool disjoint =
                sections[a].second <= sections[b].first ||
                sections[b].second <= sections[a].first;
            EXPECT_TRUE(disjoint)
                << "cpus " << a << " and " << b << " overlap";
        }
    EXPECT_EQ(lock.acquisitions(), 4u);
    EXPECT_EQ(lock.contended(), 3u);
}

TEST(SimLock, FifoHandoffOrder)
{
    MpScheduler sched(3, 0);
    SimLock lock;
    std::vector<unsigned> order;
    sched.run([&](SimContext &ctx) {
        ctx.advance(ctx.cpuId() * 2 + 1);  // staggered arrival
        lock.acquire(ctx);
        order.push_back(ctx.cpuId());
        ctx.advance(100);
        lock.release(ctx);
    });
    EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2}));
}

TEST(SimLockDeath, ReleaseByNonHolderPanics)
{
    EXPECT_DEATH(
        {
            MpScheduler sched(1);
            SimLock lock;
            sched.run([&](SimContext &ctx) { lock.release(ctx); });
        },
        "non-holder");
}

TEST(SimLock, HandoffChargesCost)
{
    MpScheduler sched(2, 0);
    SyncCosts costs;
    costs.lock_acquire = 10;
    costs.lock_handoff = 30;
    costs.lock_release = 1;
    SimLock lock(costs);
    Tick second_start = 0;
    sched.run([&](SimContext &ctx) {
        if (ctx.cpuId() == 0) {
            lock.acquire(ctx);   // t=10
            ctx.advance(100);    // t=110
            lock.release(ctx);   // t=111
        } else {
            ctx.advance(20);
            lock.acquire(ctx);  // queued behind cpu 0
            second_start = ctx.now();
            lock.release(ctx);
        }
    });
    // cpu 1 gets the lock at release(111) + handoff(30).
    EXPECT_EQ(second_start, 141u);
}
