/**
 * @file
 * Tests for the soft-error fault-injection & recovery subsystem:
 * the ECC memory array with row sparing, the Poisson fault injector,
 * the refresh-riding scrubber, the protocol-engine NACK/retry path,
 * and the end-to-end reliability campaign.
 */

#include <gtest/gtest.h>

#include <array>

#include "coherence/numa.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "fault/scrub.hh"
#include "io/refresh.hh"
#include "mem/dram.hh"

using namespace memwall;

namespace {

MemoryArrayConfig
tinyArray(std::uint32_t rows = 8, std::uint32_t spares = 2)
{
    MemoryArrayConfig cfg;
    cfg.rows = rows;
    cfg.blocks_per_row = 4;
    cfg.spare_rows = spares;
    return cfg;
}

} // namespace

// ---- EccMemoryArray ---------------------------------------------------

TEST(EccMemoryArray, FreshArrayIsClean)
{
    EccMemoryArray array(tinyArray());
    EXPECT_EQ(array.auditSilentCorruptions(), 0u);
    EXPECT_EQ(array.auditLatentUncorrectable(), 0u);
    std::array<std::uint64_t, 4> data;
    EXPECT_EQ(array.demandRead(3, 2, data), EccStatus::Ok);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(data[w], array.goldenWord(3, 2, w));
}

TEST(EccMemoryArray, DemandReadCorrectsButDoesNotRepair)
{
    EccMemoryArray array(tinyArray());
    array.injectBit(1, 0, 77);
    std::array<std::uint64_t, 4> data;
    // The flight copy is corrected...
    EXPECT_EQ(array.demandRead(1, 0, data),
              EccStatus::CorrectedSingle);
    EXPECT_EQ(data[1], array.goldenWord(1, 0, 1));
    // ...but the stored copy still carries the latent error.
    EXPECT_EQ(array.demandRead(1, 0, data),
              EccStatus::CorrectedSingle);
    // Scrubbing repairs it for good.
    EXPECT_EQ(array.scrubBlock(1, 0), EccStatus::CorrectedSingle);
    EXPECT_EQ(array.demandRead(1, 0, data), EccStatus::Ok);
}

TEST(EccMemoryArray, CheckBitFaultsAreCorrectedToo)
{
    EccMemoryArray array(tinyArray());
    array.injectBit(0, 1, EccMemoryArray::data_bits_per_block + 9);
    EXPECT_EQ(array.scrubBlock(0, 1), EccStatus::CorrectedSingle);
    EXPECT_EQ(array.scrubBlock(0, 1), EccStatus::Ok);
}

TEST(EccMemoryArray, SpareRowRestoresGoldenContents)
{
    EccMemoryArray array(tinyArray());
    array.injectBit(5, 3, 0);
    array.injectBit(5, 3, 64);  // same 128-bit half: uncorrectable
    EXPECT_EQ(array.scrubBlock(5, 3), EccStatus::DetectedDouble);
    EXPECT_EQ(array.auditLatentUncorrectable(), 1u);
    EXPECT_TRUE(array.spareRow(5));
    EXPECT_TRUE(array.isSpared(5));
    EXPECT_EQ(array.sparesUsed(), 1u);
    std::array<std::uint64_t, 4> data;
    EXPECT_EQ(array.demandRead(5, 3, data), EccStatus::Ok);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(data[w], array.goldenWord(5, 3, w));
    EXPECT_EQ(array.auditLatentUncorrectable(), 0u);
}

TEST(EccMemoryArray, SpareBudgetExhausts)
{
    EccMemoryArray array(tinyArray(8, 2));
    EXPECT_TRUE(array.spareRow(0));
    EXPECT_TRUE(array.spareRow(1));
    EXPECT_EQ(array.sparesLeft(), 0u);
    EXPECT_FALSE(array.spareRow(2));  // machine-check territory
    EXPECT_FALSE(array.isSpared(2));
}

TEST(EccMemoryArray, SilentCorruptionAuditSeesUnprotectedDamage)
{
    // Three flips in one half defeat SECDED (it may miscorrect);
    // whatever the decoder does, the audit must notice the block no
    // longer matches golden — unless the decode flags DetectedDouble,
    // in which case it is latent, not silent. Either way the sum of
    // the two audits is non-zero.
    EccMemoryArray array(tinyArray());
    array.injectBit(2, 2, 1);
    array.injectBit(2, 2, 2);
    array.injectBit(2, 2, 3);
    EXPECT_GT(array.auditSilentCorruptions() +
                  array.auditLatentUncorrectable(),
              0u);
}

// ---- FaultInjector ----------------------------------------------------

TEST(FaultInjector, ZeroRateDrawsAndInjectsNothing)
{
    EccMemoryArray array(tinyArray());
    FaultInjector injector({0.0, 42}, array);
    EXPECT_EQ(injector.nextFaultAt(), max_tick);
    EXPECT_EQ(injector.drainUpTo(array, 10'000'000), 0u);
    EXPECT_EQ(injector.injected(), 0u);
    EXPECT_EQ(array.auditSilentCorruptions(), 0u);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    EccMemoryArray a(tinyArray(64)), b(tinyArray(64));
    FaultInjector ia({500.0, 7}, a), ib({500.0, 7}, b);
    for (Tick t = 1000; t <= 50'000; t += 1000) {
        ia.drainUpTo(a, t);
        ib.drainUpTo(b, t);
        ASSERT_EQ(ia.nextFaultAt(), ib.nextFaultAt()) << t;
    }
    EXPECT_EQ(ia.injected(), ib.injected());
    EXPECT_EQ(ia.injectedData(), ib.injectedData());
    EXPECT_GT(ia.injected(), 0u);
}

TEST(FaultInjector, RateControlsVolume)
{
    // 200 faults/megacycle over 1 Mcycle: Poisson(200), so well
    // inside [120, 280] for any seed that isn't broken.
    EccMemoryArray array(tinyArray(256));
    FaultInjector injector({200.0, 42}, array);
    injector.drainUpTo(array, 1'000'000);
    EXPECT_GT(injector.injected(), 120u);
    EXPECT_LT(injector.injected(), 280u);
    // Data bits outnumber check bits 256:18, so most faults are data.
    EXPECT_GT(injector.injectedData(), injector.injectedCheck());
}

// ---- Scrubber ---------------------------------------------------------

TEST(Scrubber, CorrectsLatentSinglesAcrossOnePass)
{
    EccMemoryArray array(tinyArray(8));
    Scrubber scrubber(array);
    array.injectBit(2, 1, 13);
    array.injectBit(6, 0, 200);
    // One full rotation over the slice (rotor starts at row 0).
    for (unsigned i = 0; i < 8; ++i)
        scrubber.onRefresh(0, 0, i);
    EXPECT_EQ(scrubber.rowsScrubbed(), 8u);
    EXPECT_EQ(scrubber.corrected(), 2u);
    EXPECT_EQ(scrubber.uncorrectable(), 0u);
    std::array<std::uint64_t, 4> data;
    EXPECT_EQ(array.demandRead(2, 1, data), EccStatus::Ok);
    EXPECT_EQ(array.demandRead(6, 0, data), EccStatus::Ok);
}

TEST(Scrubber, DoubleBitErrorTriggersRowSparing)
{
    EccMemoryArray array(tinyArray(4, 2));
    Scrubber scrubber(array);
    array.injectBit(1, 2, 10);
    array.injectBit(1, 2, 20);  // both in the first half
    for (unsigned i = 0; i < 4; ++i)
        scrubber.onRefresh(0, 0, i);
    EXPECT_EQ(scrubber.uncorrectable(), 1u);
    EXPECT_EQ(scrubber.rowsSpared(), 1u);
    EXPECT_EQ(scrubber.machineChecks(), 0u);
    EXPECT_TRUE(array.isSpared(1));
    // A second pass finds nothing: the event was handled once.
    for (unsigned i = 0; i < 4; ++i)
        scrubber.onRefresh(0, 0, i);
    EXPECT_EQ(scrubber.uncorrectable(), 1u);
}

TEST(Scrubber, MachineCheckPastSpareBudget)
{
    EccMemoryArray array(tinyArray(4, 0));  // no spares at all
    Scrubber scrubber(array);
    array.injectBit(3, 0, 0);
    array.injectBit(3, 0, 1);
    for (unsigned i = 0; i < 4; ++i)
        scrubber.onRefresh(0, 0, i);
    EXPECT_EQ(scrubber.uncorrectable(), 1u);
    EXPECT_EQ(scrubber.rowsSpared(), 0u);
    EXPECT_EQ(scrubber.machineChecks(), 1u);
    // Never silent: the block was reconstructed after the check.
    EXPECT_EQ(array.auditSilentCorruptions(), 0u);
    EXPECT_EQ(array.auditLatentUncorrectable(), 0u);
}

TEST(Scrubber, ChargesDecodeCycles)
{
    EccMemoryArray array(tinyArray(8));
    Scrubber scrubber(array, ScrubConfig{2});
    for (unsigned i = 0; i < 8; ++i)
        scrubber.onRefresh(0, 0, i);
    // 8 rows x 4 blocks x 2 cycles.
    EXPECT_EQ(scrubber.scrubCycles(), 64u);
    EXPECT_DOUBLE_EQ(scrubber.overheadFraction(6400), 0.01);
}

TEST(Scrubber, RidesTheRefreshAgent)
{
    EccMemoryArray array(tinyArray(64));
    Scrubber scrubber(array);
    RefreshConfig rc;
    DramConfig dc;
    RefreshAgent refresh(rc, dc);
    refresh.setObserver(&scrubber);
    Dram dram(dc);
    array.injectBit(17, 2, 99);
    refresh.drainUpTo(dram, 10'000);  // ~102 refresh events
    EXPECT_EQ(scrubber.rowsScrubbed(), refresh.refreshesIssued());
    EXPECT_GE(scrubber.rowsScrubbed(), 100u);
    // One rotation of the 64-row slice fits in 102 events, so the
    // latent error has been met and repaired.
    EXPECT_EQ(scrubber.corrected(), 1u);
    std::array<std::uint64_t, 4> data;
    EXPECT_EQ(array.demandRead(17, 2, data), EccStatus::Ok);
}

// ---- Protocol-engine NACK/retry path ----------------------------------

TEST(ProtocolRetry, ExactBackoffSpacingAndCounts)
{
    NumaConfig cfg;
    cfg.nodes = 2;
    cfg.first_touch = false;  // page 1 homes at node 1
    cfg.protocol_fault.nack_rate = 1.0;  // every attempt NACKed
    cfg.protocol_fault.max_retries = 3;
    cfg.protocol_fault.backoff_base = 16;
    NumaMachine machine(cfg);

    const Cycles rl = cfg.latency.remote_load;
    const Cycles latency = machine.access(0, 4096, false);
    // Initial attempt + three backoff-spaced retries (16, 32, 64),
    // each paying a full remote round trip; then the budget is spent
    // and the transaction is forced through as a protocol failure.
    EXPECT_EQ(latency, rl + (16 + rl) + (32 + rl) + (64 + rl));
    EXPECT_EQ(machine.protocolNacks(), 4u);
    EXPECT_EQ(machine.protocolRetries(), 3u);
    EXPECT_EQ(machine.protocolFailures(), 1u);
}

TEST(ProtocolRetry, ModerateNackRateRecoversEverything)
{
    NumaConfig cfg;
    cfg.nodes = 4;
    cfg.first_touch = false;
    cfg.protocol_fault.nack_rate = 0.2;
    cfg.protocol_fault.seed = 11;
    NumaMachine machine(cfg);
    Rng ops(3);
    for (unsigned i = 0; i < 2000; ++i) {
        const auto cpu = static_cast<unsigned>(ops.uniformInt(4));
        const Addr addr = 0x40000 + ops.uniformInt(512) * 32;
        machine.access(cpu, addr, ops.bernoulli(0.3));
    }
    EXPECT_GT(machine.protocolNacks(), 0u);
    // No failures at p=0.2 with an 8-retry budget (p^9 ~ 5e-7), so
    // every NACK was answered by exactly one retry.
    EXPECT_EQ(machine.protocolFailures(), 0u);
    EXPECT_EQ(machine.protocolRetries(), machine.protocolNacks());
}

TEST(ProtocolRetry, DisabledModelPerturbsNothing)
{
    NumaConfig plain;
    plain.nodes = 2;
    NumaConfig seeded = plain;
    seeded.protocol_fault.seed = 12345;  // rate stays 0
    NumaMachine a(plain), b(seeded);
    Rng ops(5);
    for (unsigned i = 0; i < 500; ++i) {
        const auto cpu = static_cast<unsigned>(ops.uniformInt(2));
        const Addr addr = 0x1000 + ops.uniformInt(128) * 32;
        const bool store = ops.bernoulli(0.5);
        ASSERT_EQ(a.access(cpu, addr, store),
                  b.access(cpu, addr, store))
            << i;
    }
    EXPECT_EQ(a.protocolNacks(), 0u);
    EXPECT_EQ(b.protocolNacks(), 0u);
}

// ---- End-to-end campaign ----------------------------------------------

namespace {

CampaignConfig
quickCampaign()
{
    CampaignConfig cfg;
    cfg.horizon = 100'000;
    cfg.link_messages = 300;
    cfg.protocol_accesses = 600;
    cfg.array.rows = 128;
    return cfg;
}

} // namespace

TEST(Campaign, ZeroFaultRunIsBitForBitClean)
{
    const ReliabilityReport r = runFaultCampaign(quickCampaign());
    EXPECT_EQ(r.faults_injected, 0u);
    EXPECT_EQ(r.scrub_corrected, 0u);
    EXPECT_EQ(r.scrub_uncorrectable, 0u);
    EXPECT_EQ(r.rows_spared, 0u);
    EXPECT_EQ(r.machine_checks, 0u);
    EXPECT_EQ(r.silent_corruptions, 0u);
    EXPECT_EQ(r.link_retransmissions, 0u);
    EXPECT_EQ(r.link_failures, 0u);
    EXPECT_EQ(r.protocol_nacks, 0u);
    EXPECT_EQ(r.protocol_failures, 0u);
    // The faulty twin charged exactly the clean twin's cycles.
    EXPECT_DOUBLE_EQ(r.link_mean_latency, r.link_clean_latency);
    EXPECT_DOUBLE_EQ(r.mean_access_cycles, r.clean_access_cycles);
    EXPECT_GT(r.refreshes, 0u);
    EXPECT_EQ(r.rows_scrubbed, r.refreshes);
}

TEST(Campaign, SameSeedSameReport)
{
    CampaignConfig cfg = quickCampaign();
    cfg.faults_per_megacycle = 500.0;
    cfg.link_bit_error_rate = 1e-4;
    cfg.link_drop_rate = 0.01;
    cfg.protocol_nack_rate = 0.1;
    const ReliabilityReport a = runFaultCampaign(cfg);
    const ReliabilityReport b = runFaultCampaign(cfg);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.faults_injected, 0u);
    EXPECT_GT(a.link_retransmissions, 0u);
    EXPECT_GT(a.protocol_nacks, 0u);
}

TEST(Campaign, DifferentSeedDifferentSchedule)
{
    CampaignConfig cfg = quickCampaign();
    cfg.faults_per_megacycle = 500.0;
    CampaignConfig other = cfg;
    other.seed = 43;
    const ReliabilityReport a = runFaultCampaign(cfg);
    const ReliabilityReport b = runFaultCampaign(other);
    EXPECT_NE(a, b);
}

TEST(Campaign, ScrubbingHoldsTheLineBelowDoubleFaultThreshold)
{
    // A modest soft-error rate: faults land far apart compared to
    // the scrub rotation, so every one is corrected before a second
    // strike can pair it into a double. The machine takes damage and
    // reports zero data loss.
    CampaignConfig cfg = quickCampaign();
    cfg.horizon = 300'000;
    cfg.faults_per_megacycle = 100.0;
    const ReliabilityReport r = runFaultCampaign(cfg);
    EXPECT_GT(r.faults_injected, 5u);
    EXPECT_GT(r.scrub_corrected + r.demand_corrected, 0u);
    EXPECT_EQ(r.scrub_uncorrectable, 0u);
    EXPECT_EQ(r.demand_uncorrectable, 0u);
    EXPECT_EQ(r.machine_checks, 0u);
    EXPECT_EQ(r.silent_corruptions, 0u);
    EXPECT_GT(r.scrub_overhead, 0.0);
    // One decode cycle per block, 16 blocks per refresh event, one
    // event every ~97.7 cycles: ~16% of the memory pipeline.
    EXPECT_LT(r.scrub_overhead, 0.2);
}

TEST(Campaign, GracefulDegradationUnderExtremeRates)
{
    // Saturation test: a rate high enough to create doubles (which
    // SECDED detects) but not so high that triple strikes land in
    // one 128-bit half between scrubs (which no SECDED can see). The
    // machine must degrade gracefully — spare rows first, machine
    // checks after — and never corrupt silently.
    CampaignConfig cfg = quickCampaign();
    cfg.faults_per_megacycle = 5'000.0;
    cfg.array.spare_rows = 4;
    const ReliabilityReport r = runFaultCampaign(cfg);
    EXPECT_GT(r.scrub_uncorrectable + r.demand_uncorrectable, 0u);
    EXPECT_GT(r.rows_spared, 0u);
    EXPECT_EQ(r.silent_corruptions, 0u);
}
