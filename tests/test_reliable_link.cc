/**
 * @file
 * Tests for CRC-16 frame protection and the reliable serial link's
 * ACK/NACK retransmission, timeout and exponential-backoff paths.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "interconnect/crc.hh"
#include "interconnect/fabric.hh"
#include "interconnect/reliable_link.hh"

using namespace memwall;

namespace {

std::vector<std::uint8_t>
bytesOf(const char *s)
{
    return {reinterpret_cast<const std::uint8_t *>(s),
            reinterpret_cast<const std::uint8_t *>(s) +
                std::strlen(s)};
}

} // namespace

// ---- CRC-16 -----------------------------------------------------------

TEST(Crc16, KnownCheckValue)
{
    // CRC-16/CCITT-FALSE check value of "123456789".
    const auto data = bytesOf("123456789");
    EXPECT_EQ(crc16(data), 0x29b1);
}

TEST(Crc16, EmptyPayload)
{
    EXPECT_EQ(crc16({}), 0xffff);  // the initial value
}

TEST(Crc16, FrameRoundTrip)
{
    const auto payload = bytesOf("memory wall");
    const auto frame = encodeFrame(payload);
    EXPECT_EQ(frame.size(), payload.size() + 2);
    EXPECT_TRUE(verifyFrame(frame));
}

TEST(Crc16, DetectsEverySingleBitFlip)
{
    const auto payload = bytesOf("0123456789abcdef0123456789abcdef");
    const auto golden = encodeFrame(payload);
    for (std::size_t bit = 0; bit < golden.size() * 8; ++bit) {
        auto frame = golden;
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(verifyFrame(frame)) << "bit " << bit;
    }
}

TEST(Crc16, DetectsDoubleBitFlips)
{
    const auto payload = bytesOf("the case for integration");
    const auto golden = encodeFrame(payload);
    // A sampled grid of double flips (CRC-16 catches all doubles).
    for (std::size_t i = 0; i < golden.size() * 8; i += 17) {
        for (std::size_t j = i + 1; j < golden.size() * 8; j += 41) {
            auto frame = golden;
            frame[i / 8] ^=
                static_cast<std::uint8_t>(1u << (i % 8));
            frame[j / 8] ^=
                static_cast<std::uint8_t>(1u << (j % 8));
            EXPECT_FALSE(verifyFrame(frame)) << i << "," << j;
        }
    }
}

TEST(Crc16, TruncatedFrameNeverValid)
{
    EXPECT_FALSE(verifyFrame(std::vector<std::uint8_t>{}));
    EXPECT_FALSE(verifyFrame(std::vector<std::uint8_t>{0x12}));
}

// ---- Clean-path equivalence ------------------------------------------

TEST(ReliableLink, CleanLinkMatchesSerialLinkExactly)
{
    SerialLink plain;
    ReliableLink reliable;  // fault model disabled
    const Tick times[] = {0, 0, 100, 105, 400};
    const std::uint32_t sizes[] = {8, 40, 40, 8, 40};
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(reliable.send(times[i], sizes[i]),
                  plain.send(times[i], sizes[i]))
            << i;
    }
    EXPECT_EQ(reliable.messages(), plain.messages());
    EXPECT_EQ(reliable.bytesSent(), plain.bytesSent());
    EXPECT_EQ(reliable.queuedCycles(), plain.queuedCycles());
    EXPECT_EQ(reliable.freeAt(), plain.freeAt());
    EXPECT_EQ(reliable.retransmissions(), 0u);
    EXPECT_EQ(reliable.crcErrorsDetected(), 0u);
}

// ---- Retransmission mechanics ----------------------------------------

TEST(ReliableLink, AckLatencyMath)
{
    ReliableLink link;  // 2.5 Gbit/s, flight 10, 4-byte ACK
    // 4 bytes = 32 bits -> 12.8 ns -> 2.56 -> 3 cycles, + 10 flight.
    EXPECT_EQ(link.ackLatency(), 13u);
}

TEST(ReliableLink, ForcedCorruptionRetransmitsOnce)
{
    ReliableLink link;
    link.forceErrorAttempts(1);
    const auto outcome = link.sendReliable(0, 40);
    // Attempt 1: serialisation 26 + flight 10 -> arrival 36,
    // NACK back at 36 + 13 = 49, backoff 4 -> retry starts at 53.
    // Attempt 2: link free since 26, so no queueing: 53 + 36 = 89.
    EXPECT_EQ(outcome.delivered, 89u);
    EXPECT_EQ(outcome.attempts, 2u);
    EXPECT_FALSE(outcome.failed);
    EXPECT_EQ(link.retransmissions(), 1u);
    EXPECT_EQ(link.crcErrorsDetected(), 1u);
    EXPECT_EQ(link.timeouts(), 0u);
    EXPECT_EQ(link.backoffCycles(), 4u);
    EXPECT_EQ(link.silentFrameErrors(), 0u);
}

TEST(ReliableLink, BackoffDoublesAcrossConsecutiveRetries)
{
    ReliableLink link;
    link.forceErrorAttempts(3);
    const auto outcome = link.sendReliable(0, 40);
    // Retries start at 53 (backoff 4), 110 (backoff 8) and 175
    // (backoff 16): each NACK lands 13 cycles after the 36-cycle
    // flight, and the next attempt serialises for 36 again.
    //   a1: 0 -> 36, retry at 49 + 4 = 53
    //   a2: 53 -> 89, retry at 102 + 8 = 110
    //   a3: 110 -> 146, retry at 159 + 16 = 175
    //   a4: 175 -> 211, delivered
    EXPECT_EQ(outcome.delivered, 211u);
    EXPECT_EQ(outcome.attempts, 4u);
    EXPECT_EQ(link.retransmissions(), 3u);
    EXPECT_EQ(link.backoffCycles(), 4u + 8u + 16u);
}

TEST(ReliableLink, CorruptNMessagesGivesExactlyNRetransmissions)
{
    // The acceptance scenario: N corrupted messages, the protocol
    // completes, and exactly N retransmissions are counted.
    const unsigned n = 7;
    ReliableLink link;
    Tick now = 0;
    for (unsigned i = 0; i < 20; ++i) {
        if (i < n)
            link.forceErrorAttempts(1);
        const auto outcome = link.sendReliable(now, 40);
        EXPECT_FALSE(outcome.failed);
        EXPECT_EQ(outcome.attempts, i < n ? 2u : 1u) << i;
        now = outcome.delivered + 50;
    }
    EXPECT_EQ(link.retransmissions(), n);
    EXPECT_EQ(link.crcErrorsDetected(), n);
    EXPECT_EQ(link.failures(), 0u);
}

TEST(ReliableLink, GivesUpAfterMaxRetries)
{
    LinkFaultConfig fault;
    fault.max_retries = 2;
    ReliableLink link({}, fault);
    link.forceErrorAttempts(10);
    const auto outcome = link.sendReliable(0, 40);
    EXPECT_TRUE(outcome.failed);
    EXPECT_EQ(outcome.attempts, 3u);  // initial + 2 retries
    EXPECT_EQ(link.retransmissions(), 2u);
    EXPECT_EQ(link.failures(), 1u);
}

TEST(ReliableLink, DroppedFrameRecoversViaTimeout)
{
    LinkFaultConfig fault;
    fault.drop_rate = 1.0;
    fault.max_retries = 1;
    ReliableLink link({}, fault);
    const auto outcome = link.sendReliable(0, 40);
    // Every attempt drops; after the retry budget the link reports
    // failure instead of hanging. Only the first drop waits out a
    // timeout — the second exhausts the budget and gives up at once.
    EXPECT_TRUE(outcome.failed);
    EXPECT_EQ(outcome.attempts, 2u);
    EXPECT_EQ(link.timeouts(), 1u);
    EXPECT_EQ(link.retransmissions(), 1u);
    EXPECT_EQ(link.crcErrorsDetected(), 0u);
}

TEST(ReliableLink, BitErrorsAreDetectedAndRecovered)
{
    LinkFaultConfig fault;
    fault.bit_error_rate = 1e-3;  // ~27% of 40-byte frames hit
    fault.seed = 7;
    ReliableLink link({}, fault);
    Tick now = 0;
    unsigned delivered = 0;
    for (unsigned i = 0; i < 500; ++i) {
        const auto outcome = link.sendReliable(now, 40);
        if (!outcome.failed)
            ++delivered;
        now = outcome.delivered + 64;
    }
    EXPECT_EQ(delivered, 500u);  // every message got through
    EXPECT_GT(link.retransmissions(), 50u);
    EXPECT_EQ(link.crcErrorsDetected(), link.retransmissions());
    EXPECT_EQ(link.silentFrameErrors(), 0u);
    EXPECT_EQ(link.failures(), 0u);
}

TEST(ReliableLink, SameSeedSameSchedule)
{
    LinkFaultConfig fault;
    fault.bit_error_rate = 1e-4;
    fault.drop_rate = 0.01;
    fault.seed = 99;
    ReliableLink a({}, fault);
    ReliableLink b({}, fault);
    Tick ta = 0, tb = 0;
    for (unsigned i = 0; i < 300; ++i) {
        const auto oa = a.sendReliable(ta, 40);
        const auto ob = b.sendReliable(tb, 40);
        ASSERT_EQ(oa.delivered, ob.delivered) << i;
        ASSERT_EQ(oa.attempts, ob.attempts) << i;
        ta = oa.delivered + 10;
        tb = ob.delivered + 10;
    }
    EXPECT_EQ(a.retransmissions(), b.retransmissions());
    EXPECT_EQ(a.timeouts(), b.timeouts());
}

// ---- Fabric integration ----------------------------------------------

TEST(FaultyFabric, RetransmissionsSurfaceInStats)
{
    FabricConfig cfg;
    cfg.fault.bit_error_rate = 1e-3;
    cfg.fault.seed = 5;
    Fabric fabric(4, cfg);
    Tick now = 0;
    for (unsigned i = 0; i < 400; ++i) {
        now = fabric.send(now, i % 4, (i + 1) % 4,
                          MsgType::ReadReply) +
              16;
    }
    EXPECT_GT(fabric.totalRetransmissions(), 0u);
    EXPECT_EQ(fabric.totalCrcErrors(),
              fabric.totalRetransmissions());
    EXPECT_EQ(fabric.totalLinkFailures(), 0u);
}

TEST(FaultyFabric, CleanFabricCountsNothing)
{
    Fabric fabric(4);
    for (unsigned i = 0; i < 50; ++i)
        fabric.send(i, 0, 1, MsgType::ReadRequest);
    EXPECT_EQ(fabric.totalRetransmissions(), 0u);
    EXPECT_EQ(fabric.totalCrcErrors(), 0u);
    EXPECT_EQ(fabric.totalTimeouts(), 0u);
}
