/**
 * @file
 * Tests for the deterministic execution-driven MP scheduler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "mp/scheduler.hh"

using namespace memwall;

TEST(MpScheduler, SingleCpuRunsToCompletion)
{
    MpScheduler sched(1);
    int ran = 0;
    const Tick makespan = sched.run([&](SimContext &ctx) {
        ctx.advance(10);
        ctx.advance(5);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(makespan, 15u);
    EXPECT_EQ(sched.cpuTime(0), 15u);
}

TEST(MpScheduler, AllCpusRunBody)
{
    MpScheduler sched(8);
    std::atomic<int> ran{0};
    sched.run([&](SimContext &ctx) {
        ctx.advance(ctx.cpuId() + 1);
        ++ran;
    });
    EXPECT_EQ(ran.load(), 8);
    for (unsigned cpu = 0; cpu < 8; ++cpu)
        EXPECT_EQ(sched.cpuTime(cpu), cpu + 1);
}

TEST(MpScheduler, ExactModeInterleavesByVirtualTime)
{
    // quantum 0: events append in global virtual-time order.
    MpScheduler sched(2, /*quantum=*/0);
    std::vector<std::pair<unsigned, Tick>> log;
    sched.run([&](SimContext &ctx) {
        for (int i = 0; i < 5; ++i) {
            ctx.advance(ctx.cpuId() == 0 ? 3 : 5);
            log.emplace_back(ctx.cpuId(), ctx.now());
        }
    });
    // Verify the log is sorted by (time, cpu) — the lowest-first
    // discipline.
    for (std::size_t i = 1; i < log.size(); ++i) {
        EXPECT_TRUE(log[i - 1].second < log[i].second ||
                    (log[i - 1].second == log[i].second &&
                     log[i - 1].first <= log[i].first))
            << "entry " << i;
    }
}

TEST(MpScheduler, DeterministicAcrossRuns)
{
    auto run_once = [] {
        MpScheduler sched(4, 16);
        std::vector<unsigned> order;
        sched.run([&](SimContext &ctx) {
            for (int i = 0; i < 50; ++i) {
                ctx.advance(1 + (ctx.cpuId() * 7 + i) % 5);
                order.push_back(ctx.cpuId());
            }
        });
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(MpScheduler, QuantumBoundsSkew)
{
    // With quantum Q, whenever a CPU executes, it is at most Q ahead
    // of the slowest runnable CPU.
    const Tick q = 32;
    MpScheduler sched(3, q);
    std::vector<Tick> mins;
    bool ok = true;
    sched.run([&](SimContext &ctx) {
        for (int i = 0; i < 200; ++i) {
            ctx.advance(3);
            // After advance returns we hold the token: our time may
            // exceed the minimum by at most Q + one step.
            Tick me = ctx.now();
            Tick min_other = me;
            for (unsigned c = 0; c < 3; ++c)
                min_other =
                    std::min(min_other,
                             ctx.scheduler().timeOf(c));
            if (me > min_other + q + 3)
                ok = false;
        }
    });
    EXPECT_TRUE(ok);
}

TEST(MpScheduler, BlockUnblockHandshake)
{
    MpScheduler sched(2, 0);
    Tick woken_at = 0;
    sched.run([&](SimContext &ctx) {
        if (ctx.cpuId() == 0) {
            ctx.scheduler().block(0);
            woken_at = ctx.now();
            ctx.advance(1);
        } else {
            ctx.advance(100);
            ctx.scheduler().unblock(0, 500);
            ctx.advance(1);
        }
    });
    // CPU 0 resumed with its clock pushed to the unblock time.
    EXPECT_EQ(woken_at, 500u);
    EXPECT_EQ(sched.cpuTime(0), 501u);
}

TEST(MpScheduler, MakespanIsMaxTime)
{
    MpScheduler sched(3);
    const Tick makespan = sched.run([&](SimContext &ctx) {
        ctx.advance(10 * (ctx.cpuId() + 1));
    });
    EXPECT_EQ(makespan, 30u);
}

TEST(MpScheduler, ReusableForSecondRun)
{
    MpScheduler sched(2);
    sched.run([](SimContext &ctx) { ctx.advance(5); });
    const Tick second = sched.run([](SimContext &ctx) {
        ctx.advance(7);
    });
    EXPECT_EQ(second, 7u);
}

TEST(MpSchedulerDeath, DeadlockDetected)
{
    // Every CPU blocks and nobody can unblock: panic, not hang.
    EXPECT_DEATH(
        {
            MpScheduler sched(1, 0);
            sched.run([](SimContext &ctx) {
                ctx.scheduler().block(0);
            });
        },
        "deadlock");
}
