/**
 * @file
 * Tests for mw32-lint diagnostics: one planted-bug fixture per
 * diagnostic ID asserting the exact ID and source line, plus clean
 * programs that must stay quiet and the --error-on promotion logic.
 *
 * Fixtures are written as explicit "\n"-joined literals so the line
 * numbers asserted below are visibly line N of the string.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "isa/assembler.hh"

using namespace memwall;

namespace {

std::vector<Diagnostic>
lintSrc(const std::string &src)
{
    return lintProgram(assembleOrDie(src));
}

std::size_t
countId(const std::vector<Diagnostic> &diags, const std::string &id)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        if (d.id == id)
            ++n;
    return n;
}

const Diagnostic &
only(const std::vector<Diagnostic> &diags, const std::string &id)
{
    for (const Diagnostic &d : diags)
        if (d.id == id)
            return d;
    static Diagnostic none;
    return none;
}

} // namespace

TEST(Lint, UseUndef)
{
    const auto diags = lintSrc(".org 0x1000\n"     // line 1
                               "start:\n"          // line 2
                               "    add r2, r1, r1\n"  // line 3
                               "    halt\n");      // line 4
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "use-undef");
    EXPECT_EQ(diags[0].line, 3u);
    EXPECT_NE(diags[0].message.find("r1"), std::string::npos);
}

TEST(Lint, DeadStore)
{
    const auto diags = lintSrc(".org 0x1000\n"         // 1
                               "start:\n"              // 2
                               "    addi r1, r0, 5\n"  // 3: dead
                               "    addi r1, r0, 6\n"  // 4
                               "    add  r2, r1, r1\n" // 5
                               "    halt\n");          // 6
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "dead-store");
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(Lint, Unreachable)
{
    const auto diags = lintSrc(".org 0x1000\n"         // 1
                               "start:\n"              // 2
                               "    b    end\n"        // 3
                               "dead:\n"               // 4
                               "    addi r1, r0, 1\n"  // 5
                               "end:\n"                // 6
                               "    halt\n");          // 7
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "unreachable");
    EXPECT_EQ(diags[0].line, 5u);
}

TEST(Lint, UninitLoad)
{
    const auto diags = lintSrc(".org 0x1000\n"        // 1
                               "start:\n"             // 2
                               "    li  r1, buf\n"    // 3
                               "    lw  r2, 0(r1)\n"  // 4
                               "    halt\n"           // 5
                               "buf:\n"               // 6
                               "    .space 16\n");    // 7
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "uninit-load");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, UninitLoadSilencedByStore)
{
    // Same shape, but a store into the region initialises it.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li  r1, buf\n"
                               "    sw  r0, 0(r1)\n"
                               "    lw  r2, 0(r1)\n"
                               "    halt\n"
                               "buf:\n"
                               "    .space 16\n");
    EXPECT_EQ(countId(diags, "uninit-load"), 0u);
}

TEST(Lint, Misaligned)
{
    const auto diags = lintSrc(".org 0x1000\n"           // 1
                               "start:\n"                // 2
                               "    li  r1, 0x20001\n"   // 3
                               "    lw  r2, 0(r1)\n"     // 4
                               "    halt\n");            // 5
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "misaligned");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, CallClobber)
{
    const auto diags = lintSrc(".org 0x1000\n"            // 1
                               "start:\n"                 // 2
                               "    addi r5, r0, 7\n"     // 3
                               "    jal  ra, f\n"         // 4
                               "    add  r6, r5, r5\n"    // 5
                               "    halt\n"               // 6
                               "f:\n"                     // 7
                               "    addi r5, r0, 1\n"     // 8
                               "    ret\n");              // 9
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "call-clobber");
    EXPECT_EQ(diags[0].line, 4u);
    EXPECT_NE(diags[0].message.find("r5"), std::string::npos);
    EXPECT_NE(diags[0].message.find("f"), std::string::npos);
}

TEST(Lint, CallClobberSilencedBySaveRestore)
{
    // The callee writes r5 but saves and restores it through its
    // stack frame, so the caller's value survives: no diagnostic.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   sp, 0x30000\n"
                               "    addi r5, r0, 7\n"
                               "    jal  ra, f\n"
                               "    add  r6, r5, r5\n"
                               "    halt\n"
                               "f:\n"
                               "    addi sp, sp, -4\n"
                               "    sw   r5, 0(sp)\n"
                               "    addi r5, r0, 1\n"
                               "    add  r7, r5, r5\n"
                               "    lw   r5, 0(sp)\n"
                               "    addi sp, sp, 4\n"
                               "    ret\n");
    EXPECT_TRUE(diags.empty());
}

TEST(Lint, NoExitLoop)
{
    const auto diags = lintSrc(".org 0x1000\n"          // 1
                               "start:\n"               // 2
                               "spin:\n"                // 3
                               "    addi r1, r1, 1\n"   // 4
                               "    b    spin\n");      // 5
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "no-exit-loop");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, NoExitLoopSilencedByExitEdge)
{
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    addi r2, r0, 4\n"
                               "spin:\n"
                               "    addi r1, r1, 1\n"
                               "    bne  r1, r2, spin\n"
                               "    halt\n");
    EXPECT_TRUE(diags.empty());
}

TEST(Lint, DivByZero)
{
    const auto diags = lintSrc(".org 0x1000\n"          // 1
                               "start:\n"               // 2
                               "    addi r1, r0, 7\n"   // 3
                               "    div  r2, r1, r0\n"  // 4
                               "    halt\n");           // 5
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "div-by-zero");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, DivByZeroThroughRange)
{
    // The divisor is zero through a (constant-range) computation,
    // not literally r0.
    const auto diags = lintSrc(".org 0x1000\n"          // 1
                               "start:\n"               // 2
                               "    addi r1, r0, 5\n"   // 3
                               "    sub  r1, r1, r1\n"  // 4
                               "    addi r2, r0, 9\n"   // 5
                               "    rem  r3, r2, r1\n"  // 6
                               "    halt\n");           // 7
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "div-by-zero");
    EXPECT_EQ(diags[0].line, 6u);
}

TEST(Lint, DivByZeroSilencedByNonzeroRange)
{
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    addi r1, r0, 4\n"
                               "    addi r2, r0, 20\n"
                               "    div  r3, r2, r1\n"
                               "    halt\n");
    EXPECT_EQ(countId(diags, "div-by-zero"), 0u);
}

TEST(Lint, OobAccess)
{
    const auto diags = lintSrc(".org 0x1000\n"           // 1
                               "start:\n"                // 2
                               "    li   r1, 0x90000\n"  // 3
                               "    sw   r0, 0(r1)\n"    // 4
                               "    halt\n"              // 5
                               "buf:\n"                  // 6
                               "    .word 1\n");         // 7
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "oob-access");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, OobAccessStandsDownOnStackTraffic)
{
    // r30-relative traffic addresses undeclared memory by design.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   sp, 0x90000\n"
                               "    addi sp, sp, -4\n"
                               "    sw   r0, 0(sp)\n"
                               "    lw   r1, 0(sp)\n"
                               "    halt\n"
                               "buf:\n"
                               "    .word 1\n");
    EXPECT_EQ(countId(diags, "oob-access"), 0u);
}

TEST(Lint, JumpOob)
{
    // The index chain hides from the CFG's constant folder (it
    // cannot see through sub), so the table is recovered from the
    // add's constant side — but the abstract interpreter proves the
    // actual load address sits past the table's end.
    const auto diags = lintSrc(".org 0x1000\n"           // 1
                               "start:\n"                // 2
                               "    li   r1, table\n"    // 3
                               "    addi r2, r0, 12\n"   // 4
                               "    sub  r2, r2, r0\n"   // 5
                               "    add  r3, r1, r2\n"   // 6
                               "    lw   r4, 0(r3)\n"    // 7
                               "    jalr r0, r4\n"       // 8
                               "t0:\n"                   // 9
                               "    halt\n"              // 10
                               "table:\n"                // 11
                               "    .word t0\n"          // 12
                               "    .word t0\n");        // 13
    ASSERT_EQ(countId(diags, "jump-oob"), 1u);
    EXPECT_EQ(only(diags, "jump-oob").line, 7u);
}

TEST(Lint, JumpInsideTableStaysQuiet)
{
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   r1, table\n"
                               "    addi r2, r0, 4\n"
                               "    sub  r2, r2, r0\n"
                               "    add  r3, r1, r2\n"
                               "    lw   r4, 0(r3)\n"
                               "    jalr r0, r4\n"
                               "t0:\n"
                               "    halt\n"
                               "table:\n"
                               "    .word t0\n"
                               "    .word t0\n");
    EXPECT_EQ(countId(diags, "jump-oob"), 0u);
}

TEST(Lint, RangeMisaligned)
{
    // No affine region exists (the base is loaded from memory), but
    // ori pins the low address bit to 1: provably misaligned.
    const auto diags = lintSrc(".org 0x1000\n"          // 1
                               "start:\n"               // 2
                               "    li   r1, v\n"       // 3
                               "    lw   r2, 0(r1)\n"   // 4
                               "    ori  r3, r2, 1\n"   // 5
                               "    lh   r4, 0(r3)\n"   // 6
                               "    halt\n"             // 7
                               "v:\n"                   // 8
                               "    .word 4\n");        // 9
    ASSERT_EQ(countId(diags, "misaligned"), 1u);
    EXPECT_EQ(only(diags, "misaligned").line, 6u);
}

TEST(Lint, RangeUninitLoad)
{
    // The index is unknown but andi bounds it to [0, 12]: the load
    // range [buf, buf+16) is entirely .space and nothing stores.
    const auto diags = lintSrc(".org 0x1000\n"           // 1
                               "start:\n"                // 2
                               "    li   r1, buf\n"      // 3
                               "    li   r2, idx\n"      // 4
                               "    lw   r3, 0(r2)\n"    // 5
                               "    andi r3, r3, 12\n"   // 6
                               "    add  r3, r1, r3\n"   // 7
                               "    lw   r4, 0(r3)\n"    // 8
                               "    halt\n"              // 9
                               "buf:\n"                  // 10
                               "    .space 16\n"         // 11
                               "idx:\n"                  // 12
                               "    .word 2\n");         // 13
    ASSERT_EQ(countId(diags, "uninit-load"), 1u);
    EXPECT_EQ(only(diags, "uninit-load").line, 8u);
}

TEST(Lint, RangeUninitLoadSilencedByStore)
{
    // Same shape, but one store lands inside the load's range.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   r1, buf\n"
                               "    li   r2, idx\n"
                               "    sw   r0, 4(r1)\n"
                               "    lw   r3, 0(r2)\n"
                               "    andi r3, r3, 12\n"
                               "    add  r3, r1, r3\n"
                               "    lw   r4, 0(r3)\n"
                               "    halt\n"
                               "buf:\n"
                               "    .space 16\n"
                               "idx:\n"
                               "    .word 2\n");
    EXPECT_EQ(countId(diags, "uninit-load"), 0u);
}

TEST(Lint, CleanKernelStaysQuiet)
{
    // A representative strided-loop kernel: no diagnostics at all.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   r10, 0x20000\n"
                               "    addi r5, r0, 8\n"
                               "    addi r1, r0, 0\n"
                               "    addi r4, r0, 0\n"
                               "loop:\n"
                               "    slli r2, r1, 2\n"
                               "    add  r3, r10, r2\n"
                               "    lw   r6, 0(r3)\n"
                               "    add  r4, r4, r6\n"
                               "    addi r1, r1, 1\n"
                               "    bne  r1, r5, loop\n"
                               "    halt\n");
    EXPECT_TRUE(diags.empty());
}

TEST(Lint, DiagnosticFormat)
{
    auto diags = lintSrc(".org 0x1000\n"
                         "start:\n"
                         "    add r2, r1, r1\n"
                         "    halt\n");
    ASSERT_EQ(diags.size(), 1u);
    const std::string w = diags[0].format("prog.s");
    EXPECT_EQ(w.rfind("prog.s:3: warning: ", 0), 0u) << w;
    EXPECT_NE(w.find("[use-undef]"), std::string::npos);

    diags[0].severity = Severity::Error;
    const std::string e = diags[0].format("prog.s");
    EXPECT_EQ(e.rfind("prog.s:3: error: ", 0), 0u) << e;
}

TEST(Lint, PromoteErrorsSelectsIds)
{
    auto diags = lintSrc(".org 0x1000\n"
                         "start:\n"
                         "    addi r1, r0, 5\n"   // dead-store
                         "    addi r1, r0, 6\n"
                         "    add  r2, r1, r3\n"  // use-undef (r3)
                         "    halt\n");
    ASSERT_EQ(diags.size(), 2u);

    EXPECT_TRUE(promoteErrors(diags, "dead-store"));
    EXPECT_EQ(only(diags, "dead-store").severity, Severity::Error);
    EXPECT_EQ(only(diags, "use-undef").severity, Severity::Warning);

    EXPECT_TRUE(promoteErrors(diags, "all"));
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.severity, Severity::Error);

    EXPECT_FALSE(promoteErrors(diags, "no-such-id"));
    EXPECT_TRUE(promoteErrors(diags, ""));
}

TEST(Lint, AllIdsCoveredByFixtures)
{
    // Every documented ID fires on at least one fixture above; keep
    // the registry and the fixture set in sync.
    const std::vector<std::string> expected = {
        "use-undef",  "dead-store",   "unreachable",  "uninit-load",
        "misaligned", "call-clobber", "no-exit-loop", "div-by-zero",
        "oob-access", "jump-oob",
    };
    EXPECT_EQ(lintIds(), expected);
}
