/**
 * @file
 * Tests for mw32-lint diagnostics: one planted-bug fixture per
 * diagnostic ID asserting the exact ID and source line, plus clean
 * programs that must stay quiet and the --error-on promotion logic.
 *
 * Fixtures are written as explicit "\n"-joined literals so the line
 * numbers asserted below are visibly line N of the string.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "isa/assembler.hh"

using namespace memwall;

namespace {

std::vector<Diagnostic>
lintSrc(const std::string &src)
{
    return lintProgram(assembleOrDie(src));
}

std::size_t
countId(const std::vector<Diagnostic> &diags, const std::string &id)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        if (d.id == id)
            ++n;
    return n;
}

const Diagnostic &
only(const std::vector<Diagnostic> &diags, const std::string &id)
{
    for (const Diagnostic &d : diags)
        if (d.id == id)
            return d;
    static Diagnostic none;
    return none;
}

} // namespace

TEST(Lint, UseUndef)
{
    const auto diags = lintSrc(".org 0x1000\n"     // line 1
                               "start:\n"          // line 2
                               "    add r2, r1, r1\n"  // line 3
                               "    halt\n");      // line 4
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "use-undef");
    EXPECT_EQ(diags[0].line, 3u);
    EXPECT_NE(diags[0].message.find("r1"), std::string::npos);
}

TEST(Lint, DeadStore)
{
    const auto diags = lintSrc(".org 0x1000\n"         // 1
                               "start:\n"              // 2
                               "    addi r1, r0, 5\n"  // 3: dead
                               "    addi r1, r0, 6\n"  // 4
                               "    add  r2, r1, r1\n" // 5
                               "    halt\n");          // 6
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "dead-store");
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(Lint, Unreachable)
{
    const auto diags = lintSrc(".org 0x1000\n"         // 1
                               "start:\n"              // 2
                               "    b    end\n"        // 3
                               "dead:\n"               // 4
                               "    addi r1, r0, 1\n"  // 5
                               "end:\n"                // 6
                               "    halt\n");          // 7
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "unreachable");
    EXPECT_EQ(diags[0].line, 5u);
}

TEST(Lint, UninitLoad)
{
    const auto diags = lintSrc(".org 0x1000\n"        // 1
                               "start:\n"             // 2
                               "    li  r1, buf\n"    // 3
                               "    lw  r2, 0(r1)\n"  // 4
                               "    halt\n"           // 5
                               "buf:\n"               // 6
                               "    .space 16\n");    // 7
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "uninit-load");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, UninitLoadSilencedByStore)
{
    // Same shape, but a store into the region initialises it.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li  r1, buf\n"
                               "    sw  r0, 0(r1)\n"
                               "    lw  r2, 0(r1)\n"
                               "    halt\n"
                               "buf:\n"
                               "    .space 16\n");
    EXPECT_EQ(countId(diags, "uninit-load"), 0u);
}

TEST(Lint, Misaligned)
{
    const auto diags = lintSrc(".org 0x1000\n"           // 1
                               "start:\n"                // 2
                               "    li  r1, 0x20001\n"   // 3
                               "    lw  r2, 0(r1)\n"     // 4
                               "    halt\n");            // 5
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "misaligned");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, CallClobber)
{
    const auto diags = lintSrc(".org 0x1000\n"            // 1
                               "start:\n"                 // 2
                               "    addi r5, r0, 7\n"     // 3
                               "    jal  ra, f\n"         // 4
                               "    add  r6, r5, r5\n"    // 5
                               "    halt\n"               // 6
                               "f:\n"                     // 7
                               "    addi r5, r0, 1\n"     // 8
                               "    ret\n");              // 9
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "call-clobber");
    EXPECT_EQ(diags[0].line, 4u);
    EXPECT_NE(diags[0].message.find("r5"), std::string::npos);
    EXPECT_NE(diags[0].message.find("f"), std::string::npos);
}

TEST(Lint, CallClobberSilencedBySaveRestore)
{
    // The callee writes r5 but saves and restores it through its
    // stack frame, so the caller's value survives: no diagnostic.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   sp, 0x30000\n"
                               "    addi r5, r0, 7\n"
                               "    jal  ra, f\n"
                               "    add  r6, r5, r5\n"
                               "    halt\n"
                               "f:\n"
                               "    addi sp, sp, -4\n"
                               "    sw   r5, 0(sp)\n"
                               "    addi r5, r0, 1\n"
                               "    add  r7, r5, r5\n"
                               "    lw   r5, 0(sp)\n"
                               "    addi sp, sp, 4\n"
                               "    ret\n");
    EXPECT_TRUE(diags.empty());
}

TEST(Lint, NoExitLoop)
{
    const auto diags = lintSrc(".org 0x1000\n"          // 1
                               "start:\n"               // 2
                               "spin:\n"                // 3
                               "    addi r1, r1, 1\n"   // 4
                               "    b    spin\n");      // 5
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].id, "no-exit-loop");
    EXPECT_EQ(diags[0].line, 4u);
}

TEST(Lint, NoExitLoopSilencedByExitEdge)
{
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    addi r2, r0, 4\n"
                               "spin:\n"
                               "    addi r1, r1, 1\n"
                               "    bne  r1, r2, spin\n"
                               "    halt\n");
    EXPECT_TRUE(diags.empty());
}

TEST(Lint, CleanKernelStaysQuiet)
{
    // A representative strided-loop kernel: no diagnostics at all.
    const auto diags = lintSrc(".org 0x1000\n"
                               "start:\n"
                               "    li   r10, 0x20000\n"
                               "    addi r5, r0, 8\n"
                               "    addi r1, r0, 0\n"
                               "    addi r4, r0, 0\n"
                               "loop:\n"
                               "    slli r2, r1, 2\n"
                               "    add  r3, r10, r2\n"
                               "    lw   r6, 0(r3)\n"
                               "    add  r4, r4, r6\n"
                               "    addi r1, r1, 1\n"
                               "    bne  r1, r5, loop\n"
                               "    halt\n");
    EXPECT_TRUE(diags.empty());
}

TEST(Lint, DiagnosticFormat)
{
    auto diags = lintSrc(".org 0x1000\n"
                         "start:\n"
                         "    add r2, r1, r1\n"
                         "    halt\n");
    ASSERT_EQ(diags.size(), 1u);
    const std::string w = diags[0].format("prog.s");
    EXPECT_EQ(w.rfind("prog.s:3: warning: ", 0), 0u) << w;
    EXPECT_NE(w.find("[use-undef]"), std::string::npos);

    diags[0].severity = Severity::Error;
    const std::string e = diags[0].format("prog.s");
    EXPECT_EQ(e.rfind("prog.s:3: error: ", 0), 0u) << e;
}

TEST(Lint, PromoteErrorsSelectsIds)
{
    auto diags = lintSrc(".org 0x1000\n"
                         "start:\n"
                         "    addi r1, r0, 5\n"   // dead-store
                         "    addi r1, r0, 6\n"
                         "    add  r2, r1, r3\n"  // use-undef (r3)
                         "    halt\n");
    ASSERT_EQ(diags.size(), 2u);

    EXPECT_TRUE(promoteErrors(diags, "dead-store"));
    EXPECT_EQ(only(diags, "dead-store").severity, Severity::Error);
    EXPECT_EQ(only(diags, "use-undef").severity, Severity::Warning);

    EXPECT_TRUE(promoteErrors(diags, "all"));
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.severity, Severity::Error);

    EXPECT_FALSE(promoteErrors(diags, "no-such-id"));
    EXPECT_TRUE(promoteErrors(diags, ""));
}

TEST(Lint, AllIdsCoveredByFixtures)
{
    // Every documented ID fires on at least one fixture above; keep
    // the registry and the fixture set in sync.
    const std::vector<std::string> expected = {
        "use-undef",  "dead-store",   "unreachable", "uninit-load",
        "misaligned", "call-clobber", "no-exit-loop",
    };
    EXPECT_EQ(lintIds(), expected);
}
