/**
 * @file
 * Tests for the victim cache and the column-buffer cache complex —
 * the Section 4.1/5.4 structures.
 */

#include <gtest/gtest.h>

#include "mem/column_cache.hh"
#include "mem/victim_cache.hh"

using namespace memwall;

// ---- VictimCache ----------------------------------------------------

TEST(VictimCache, InsertThenHit)
{
    VictimCache vc;
    EXPECT_FALSE(vc.access(0x100, false));
    vc.insert(0x100);
    EXPECT_TRUE(vc.access(0x100, false));
    EXPECT_TRUE(vc.access(0x11f, false));   // same 32-byte block
    EXPECT_FALSE(vc.access(0x120, false));  // next block
}

TEST(VictimCache, LruReplacementAcross16Entries)
{
    VictimCache vc;  // 16 x 32 B
    for (Addr i = 0; i < 16; ++i)
        vc.insert(i * 0x1000);
    // Touch entry 0 so it is MRU.
    EXPECT_TRUE(vc.access(0x0, false));
    vc.insert(16 * 0x1000);  // evicts LRU = entry 1
    EXPECT_TRUE(vc.probe(0x0));
    EXPECT_FALSE(vc.probe(0x1000));
    EXPECT_TRUE(vc.probe(16 * 0x1000));
}

TEST(VictimCache, ReinsertRefreshes)
{
    VictimCache vc;
    for (Addr i = 0; i < 16; ++i)
        vc.insert(i * 0x1000);
    vc.insert(0x0);          // refresh existing entry, no eviction
    vc.insert(16 * 0x1000);  // evicts 0x1000, not 0x0
    EXPECT_TRUE(vc.probe(0x0));
    EXPECT_FALSE(vc.probe(0x1000));
}

TEST(VictimCache, InvalidateRemoves)
{
    VictimCache vc;
    vc.insert(0x40);
    EXPECT_TRUE(vc.invalidate(0x40));
    EXPECT_FALSE(vc.probe(0x40));
    EXPECT_FALSE(vc.invalidate(0x40));
}

TEST(VictimCache, StatsCountHitsAndMisses)
{
    VictimCache vc;
    vc.access(0x0, false);
    vc.insert(0x0);
    vc.access(0x0, true);
    EXPECT_EQ(vc.stats().load_misses.value(), 1u);
    EXPECT_EQ(vc.stats().store_hits.value(), 1u);
}

// ---- ColumnInstrCache ------------------------------------------------

TEST(ColumnInstrCache, GeometryMatchesPaper)
{
    ColumnCacheConfig cfg;
    EXPECT_EQ(cfg.instrCapacity(), 8 * KiB);
    EXPECT_EQ(cfg.dataCapacity(), 16 * KiB);
    ColumnInstrCache ic(cfg);
    EXPECT_EQ(ic.cache().config().line_size, 512u);
    EXPECT_EQ(ic.cache().config().sets(), 16u);
}

TEST(ColumnInstrCache, LongLinePrefetchEffect)
{
    // Sequential code: one miss per 512 bytes = 128 instructions.
    ColumnInstrCache ic;
    for (Addr pc = 0; pc < 4096; pc += 4)
        ic.fetch(pc);
    EXPECT_EQ(ic.stats().misses(), 8u);
    EXPECT_EQ(ic.stats().accesses(), 1024u);
}

TEST(ColumnInstrCache, BankIndexing)
{
    // Addresses 8 KiB apart map to the same column (set) and
    // conflict; addresses 512 B apart map to adjacent banks.
    ColumnInstrCache ic;
    EXPECT_FALSE(ic.fetch(0x0));
    EXPECT_FALSE(ic.fetch(0x2000));  // same set, evicts
    EXPECT_FALSE(ic.fetch(0x0));     // conflict miss
    EXPECT_FALSE(ic.fetch(0x200));   // different bank
    EXPECT_TRUE(ic.fetch(0x200));
}

// ---- ColumnDataCache ---------------------------------------------------

TEST(ColumnDataCache, TwoWaySetBehaviour)
{
    ColumnCacheConfig cfg;
    cfg.victim_enabled = false;
    ColumnDataCache dc(cfg);
    EXPECT_EQ(dc.access(0x0, false), DAccessOutcome::Miss);
    EXPECT_EQ(dc.access(0x2000, false), DAccessOutcome::Miss);
    // Two ways hold both conflicting columns.
    EXPECT_EQ(dc.access(0x0, false), DAccessOutcome::HitColumn);
    EXPECT_EQ(dc.access(0x2000, false), DAccessOutcome::HitColumn);
    // A third conflicting column evicts the LRU.
    EXPECT_EQ(dc.access(0x4000, false), DAccessOutcome::Miss);
    EXPECT_EQ(dc.access(0x0, false), DAccessOutcome::Miss);
}

TEST(ColumnDataCache, EvictionDonatesSubBlockToVictim)
{
    ColumnDataCache dc;  // victim enabled
    dc.access(0x0, false);
    dc.access(0x1e8, false);  // last-touched sub-block 0x1e0
    dc.access(0x2000, false);
    dc.access(0x4000, false);  // evicts column 0x0 -> VC gets 0x1e0
    // The donated sub-block hits in the victim cache.
    EXPECT_EQ(dc.access(0x1e0, false), DAccessOutcome::HitVictim);
    // Other parts of the evicted column are gone.
    EXPECT_EQ(dc.access(0x100, false), DAccessOutcome::Miss);
}

TEST(ColumnDataCache, VictimDisabledMeansMiss)
{
    ColumnCacheConfig cfg;
    cfg.victim_enabled = false;
    ColumnDataCache dc(cfg);
    dc.access(0x0, false);
    dc.access(0x1e8, false);
    dc.access(0x2000, false);
    dc.access(0x4000, false);
    EXPECT_EQ(dc.access(0x1e0, false), DAccessOutcome::Miss);
}

TEST(ColumnDataCache, AccessNoFillDoesNotAllocate)
{
    ColumnDataCache dc;
    EXPECT_EQ(dc.accessNoFill(0x0, false), DAccessOutcome::Miss);
    EXPECT_EQ(dc.accessNoFill(0x0, false), DAccessOutcome::Miss);
    dc.access(0x0, false);
    EXPECT_EQ(dc.accessNoFill(0x0, false),
              DAccessOutcome::HitColumn);
}

TEST(ColumnDataCache, StageRemoteBlockLandsInVictim)
{
    ColumnDataCache dc;
    dc.stageRemoteBlock(0x12345e0);
    EXPECT_EQ(dc.accessNoFill(0x12345e5, false),
              DAccessOutcome::HitVictim);
}

TEST(ColumnDataCache, InvalidateBlockKillsWholeColumn)
{
    // A 512-byte column cannot keep a 32-byte hole: invalidating one
    // coherence block drops the whole buffer (Section 6.2 cost).
    ColumnDataCache dc;
    dc.access(0x0, false);
    EXPECT_TRUE(dc.invalidateBlock(0x20));
    EXPECT_EQ(dc.access(0x1c0, false), DAccessOutcome::Miss);
}

TEST(ColumnDataCache, InvalidateBlockAlsoClearsVictim)
{
    ColumnDataCache dc;
    dc.stageRemoteBlock(0x999e0);
    EXPECT_TRUE(dc.invalidateBlock(0x999e0));
    EXPECT_EQ(dc.accessNoFill(0x999e0, false),
              DAccessOutcome::Miss);
}

TEST(ColumnDataCache, AggregateStats)
{
    ColumnDataCache dc;
    dc.access(0x0, false);           // miss
    dc.access(0x8, false);           // column hit
    dc.access(0x10, true);           // column hit (store)
    EXPECT_EQ(dc.stats().misses(), 1u);
    EXPECT_EQ(dc.stats().load_hits.value(), 1u);
    EXPECT_EQ(dc.stats().store_hits.value(), 1u);
    EXPECT_DOUBLE_EQ(dc.stats().missRate(), 1.0 / 3.0);
}

TEST(ColumnDataCache, VictimHitAvoidsDramAccess)
{
    // The Section 5.4 effect in miniature: three conflicting
    // streams in one set thrash two ways, but their last-touched
    // blocks survive in the victim cache.
    ColumnDataCache with_vc;
    ColumnCacheConfig cfg;
    cfg.victim_enabled = false;
    ColumnDataCache without_vc(cfg);

    const Addr bases[3] = {0x0, 0x2000, 0x4000};  // same set
    for (int round = 0; round < 200; ++round) {
        for (const Addr base : bases) {
            const Addr addr = base + (round * 8) % 32;
            with_vc.access(addr, false);
            without_vc.access(addr, false);
        }
    }
    EXPECT_LT(with_vc.stats().missRate(),
              0.2 * without_vc.stats().missRate());
}
