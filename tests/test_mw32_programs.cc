/**
 * @file
 * Whole-program tests of the MW32 stack: nontrivial programs are
 * assembled, executed, and checked for correct RESULTS (not just
 * plumbing) — recursion with a real stack, sorting, checksums —
 * while the integrated device times them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <numeric>
#include <vector>

#include "core/pim_device.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"

using namespace memwall;

namespace {

struct ProgramRun
{
    BackingStore mem;
    Interpreter cpu{mem};
    StopReason stop = StopReason::InstrLimit;

    explicit ProgramRun(const std::string &src,
                 std::uint64_t budget = 5'000'000)
    {
        const AssembledProgram prog = assembleOrDie(src);
        prog.loadInto(mem);
        cpu.setPc(prog.entry);
        stop = cpu.run(budget);
    }
};

} // namespace

TEST(Mw32Programs, RecursiveGcdUsesTheStack)
{
    // gcd(a, b) with a real call stack: gcd(1071, 462) = 21.
    ProgramRun run(R"(
        .org 0x1000
        start:
            li   sp, 0x80000
            addi r1, r0, 1071
            li   r2, 462
            jal  ra, gcd
            mv   r20, r1
            halt
        gcd:                    ; r1 = gcd(r1, r2)
            beq  r2, r0, done
            addi sp, sp, -8
            sw   ra, 0(sp)
            sw   r2, 4(sp)
            rem  r3, r1, r2     ; r1 mod r2
            mv   r1, r2
            mv   r2, r3
            jal  ra, gcd
            lw   ra, 0(sp)
            addi sp, sp, 8
        done:
            ret
    )");
    EXPECT_EQ(run.stop, StopReason::Halted);
    EXPECT_EQ(run.cpu.state().reg(20), 21u);
}

TEST(Mw32Programs, RecursiveFibonacci)
{
    // Exponential recursion exercises deep stacks: fib(15) = 610.
    ProgramRun run(R"(
        .org 0x1000
        start:
            li   sp, 0x80000
            addi r1, r0, 15
            jal  ra, fib
            mv   r20, r2
            halt
        fib:                    ; r2 = fib(r1)
            addi r3, r0, 2
            blt  r1, r3, base
            addi sp, sp, -12
            sw   ra, 0(sp)
            sw   r1, 4(sp)
            addi r1, r1, -1
            jal  ra, fib        ; fib(n-1)
            sw   r2, 8(sp)
            lw   r1, 4(sp)
            addi r1, r1, -2
            jal  ra, fib        ; fib(n-2)
            lw   r3, 8(sp)
            add  r2, r2, r3
            lw   ra, 0(sp)
            addi sp, sp, 12
            ret
        base:
            mv   r2, r1         ; fib(0)=0, fib(1)=1
            ret
    )");
    EXPECT_EQ(run.stop, StopReason::Halted);
    EXPECT_EQ(run.cpu.state().reg(20), 610u);
}

TEST(Mw32Programs, BubbleSortSortsMemory)
{
    ProgramRun run(R"(
        .equ N, 64
        .org 0x1000
        start:
            li   r10, 0x100000
            ; fill with a descending sequence times 7 mod 97
            addi r1, r0, 0
            addi r5, r0, N
            mv   r6, r10
        fill:
            sub  r2, r5, r1
            addi r3, r0, 7
            mul  r2, r2, r3
            addi r3, r0, 97
            rem  r2, r2, r3
            sw   r2, 0(r6)
            addi r6, r6, 4
            addi r1, r1, 1
            bne  r1, r5, fill
            ; bubble sort
            addi r7, r0, 0          ; pass
        outer:
            addi r8, r0, 0          ; swapped flag
            mv   r6, r10
            addi r1, r0, 1
        inner:
            lw   r2, 0(r6)
            lw   r3, 4(r6)
            bge  r3, r2, noswap
            sw   r3, 0(r6)
            sw   r2, 4(r6)
            addi r8, r0, 1
        noswap:
            addi r6, r6, 4
            addi r1, r1, 1
            bne  r1, r5, inner
            addi r7, r7, 1
            bne  r8, r0, outer
            halt
    )");
    EXPECT_EQ(run.stop, StopReason::Halted);
    std::vector<std::uint32_t> out(64);
    for (unsigned i = 0; i < 64; ++i)
        out[i] = run.mem.readU32(0x100000 + 4 * i);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    // Same multiset as the generator produced.
    std::vector<std::uint32_t> expect;
    for (unsigned i = 0; i < 64; ++i)
        expect.push_back((64 - i) * 7 % 97);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out, expect);
}

TEST(Mw32Programs, ChecksumOverBytes)
{
    // Adler-ish checksum over a byte buffer written with sb.
    ProgramRun run(R"(
        .equ N, 256
        .org 0x1000
        start:
            li   r10, 0x40000
            addi r1, r0, 0
            addi r5, r0, N
            mv   r6, r10
        fill:
            andi r2, r1, 0xff
            sb   r2, 0(r6)
            addi r6, r6, 1
            addi r1, r1, 1
            bne  r1, r5, fill
            ; checksum: a += byte; b += a (mod 65521)
            addi r1, r0, 0
            addi r2, r0, 1      ; a
            addi r3, r0, 0      ; b
            li   r9, 65521
            mv   r6, r10
        sum:
            lbu  r4, 0(r6)
            add  r2, r2, r4
            rem  r2, r2, r9
            add  r3, r3, r2
            rem  r3, r3, r9
            addi r6, r6, 1
            addi r1, r1, 1
            bne  r1, r5, sum
            halt
    )");
    EXPECT_EQ(run.stop, StopReason::Halted);
    // Host-side reference.
    std::uint32_t a = 1, b = 0;
    for (unsigned i = 0; i < 256; ++i) {
        a = (a + (i & 0xff)) % 65521;
        b = (b + a) % 65521;
    }
    EXPECT_EQ(run.cpu.state().reg(2), a);
    EXPECT_EQ(run.cpu.state().reg(3), b);
}

TEST(Mw32Programs, DeviceTimedRunMatchesFunctionalResult)
{
    // The same program run functionally and through the device
    // pipeline computes the same answer; the pipeline only adds
    // timing.
    const char *src = R"(
        .org 0x1000
        start:
            li   r10, 0x200000
            addi r1, r0, 0
            li   r5, 4096
            addi r4, r0, 0
        loop:
            mul  r2, r1, r1
            sw   r2, 0(r10)
            lw   r3, 0(r10)
            add  r4, r4, r3
            addi r10, r10, 4
            addi r1, r1, 1
            bne  r1, r5, loop
            halt
    )";
    ProgramRun functional(src);
    ASSERT_EQ(functional.stop, StopReason::Halted);

    const AssembledProgram prog = assembleOrDie(src);
    BackingStore mem;
    prog.loadInto(mem);
    Interpreter cpu(mem);
    cpu.setPc(prog.entry);
    PimDevice device;
    PipelineSim pipeline(device, PipelineConfig{});
    const RefSink sink = pipeline.sink();
    ASSERT_EQ(cpu.run(5'000'000, &sink), StopReason::Halted);
    pipeline.drain();

    EXPECT_EQ(cpu.state().reg(4), functional.cpu.state().reg(4));
    EXPECT_GT(pipeline.cpi(), 1.0);
    // Streaming stores over 16 KB: some DRAM traffic must exist.
    EXPECT_GT(device.stats().dram_accesses, 10u);
}

TEST(Mw32Programs, DeviceSelfTestPasses)
{
    // The Section 3 argument: a complete system tests itself with a
    // downloaded program. Run the shipped self-test and check its
    // verdict registers.
    std::ifstream is(std::string(MEMWALL_SOURCE_DIR) +
                     "/tools/samples/selftest.s");
    ASSERT_TRUE(is.good());
    std::stringstream ss;
    ss << is.rdbuf();
    ProgramRun run(ss.str());
    EXPECT_EQ(run.stop, StopReason::Halted);
    EXPECT_EQ(run.cpu.state().reg(20), 0x600Du);
    EXPECT_EQ(run.cpu.state().reg(21), 0u);  // no phase failed
}
