/**
 * @file
 * Tests for the SPLASH support helpers (work partitioning, result
 * collection).
 */

#include <gtest/gtest.h>

#include "workloads/splash/splash_common.hh"

using namespace memwall;

TEST(SliceOf, EvenSplit)
{
    const Slice s0 = sliceOf(100, 0, 4);
    const Slice s3 = sliceOf(100, 3, 4);
    EXPECT_EQ(s0.first, 0u);
    EXPECT_EQ(s0.last, 25u);
    EXPECT_EQ(s3.first, 75u);
    EXPECT_EQ(s3.last, 100u);
}

TEST(SliceOf, RemainderGoesToLowCpus)
{
    // 10 items over 4 cpus: 3,3,2,2.
    EXPECT_EQ(sliceOf(10, 0, 4).last - sliceOf(10, 0, 4).first, 3u);
    EXPECT_EQ(sliceOf(10, 1, 4).last - sliceOf(10, 1, 4).first, 3u);
    EXPECT_EQ(sliceOf(10, 2, 4).last - sliceOf(10, 2, 4).first, 2u);
    EXPECT_EQ(sliceOf(10, 3, 4).last - sliceOf(10, 3, 4).first, 2u);
}

TEST(SliceOf, CoversEverythingExactlyOnce)
{
    for (unsigned total : {1u, 7u, 64u, 1000u}) {
        for (unsigned p : {1u, 2u, 3u, 8u, 16u}) {
            unsigned covered = 0;
            unsigned prev_end = 0;
            for (unsigned cpu = 0; cpu < p; ++cpu) {
                const Slice s = sliceOf(total, cpu, p);
                EXPECT_EQ(s.first, prev_end);
                covered += s.last - s.first;
                prev_end = s.last;
            }
            EXPECT_EQ(covered, total);
            EXPECT_EQ(prev_end, total);
        }
    }
}

TEST(SliceOf, MoreCpusThanItems)
{
    // 2 items over 4 cpus: cpus 2 and 3 get empty slices.
    EXPECT_EQ(sliceOf(2, 2, 4).first, sliceOf(2, 2, 4).last);
    EXPECT_EQ(sliceOf(2, 3, 4).first, sliceOf(2, 3, 4).last);
}

TEST(SliceOf, LargeTotalsDoNotOverflow)
{
    // Regression: `cpu * base` used to be computed in 32-bit and
    // wrapped for synthetic-scaling totals near UINT_MAX, handing the
    // top cpus garbage (overlapping) slices. The 64-bit intermediates
    // must keep the partition exact at the boundary.
    const unsigned total = 4'000'000'000u;
    const unsigned p = 3;
    unsigned prev_end = 0;
    std::uint64_t covered = 0;
    for (unsigned cpu = 0; cpu < p; ++cpu) {
        const Slice s = sliceOf(total, cpu, p);
        EXPECT_EQ(s.first, prev_end);
        EXPECT_LE(s.first, s.last);
        covered += s.last - s.first;
        prev_end = s.last;
    }
    EXPECT_EQ(covered, total);
    EXPECT_EQ(prev_end, total);
    // The max-total / max-cpu corner stays in range too.
    const unsigned m = 0xffffffffu;
    EXPECT_EQ(sliceOf(m, 15, 16).last, m);
}

TEST(SliceOfDeathTest, RejectsOutOfRangeCpu)
{
    EXPECT_DEATH(sliceOf(100, 4, 4), "out of range");
    EXPECT_DEATH(sliceOf(100, 0, 0), "out of range");
}

TEST(CollectResult, GathersMachineCounters)
{
    NumaConfig cfg;
    cfg.nodes = 2;
    cfg.arch = NodeArch::Integrated;
    MpRuntime rt(2, cfg);
    rt.run([&](SimContext &ctx) {
        rt.access(ctx, 0x1000 + ctx.cpuId() * 0x10000, false);
        ctx.advance(ctx.cpuId() * 10);
    });
    const SplashResult res = collectResult(rt, 3.25);
    EXPECT_EQ(res.accesses, 2u);
    EXPECT_DOUBLE_EQ(res.checksum, 3.25);
    EXPECT_GT(res.makespan, 0u);
}
