/**
 * @file
 * Tests for the Figure 9/10 processor-memory GSPN models and their
 * CPI estimates.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "gspn/models.hh"

using namespace memwall;

namespace {

ProcessorModelParams
perfect()
{
    ProcessorModelParams p;
    p.icache_hit = 1.0;
    p.load_hit = 1.0;
    p.store_hit = 1.0;
    return p;
}

} // namespace

TEST(ProcessorModel, PerfectCachesGiveUnitCpi)
{
    const CpiEstimate est = estimateCpi(perfect(), 30'000);
    EXPECT_NEAR(est.cpi, 1.0, 0.01);
    EXPECT_NEAR(est.memory_cpi, 0.0, 0.01);
}

TEST(ProcessorModel, InstructionMissesAddStalls)
{
    ProcessorModelParams p = perfect();
    p.icache_hit = 0.95;
    const CpiEstimate est = estimateCpi(p, 30'000);
    // ~5% of instructions pay a ~6-cycle fill.
    EXPECT_GT(est.memory_cpi, 0.15);
    EXPECT_LT(est.memory_cpi, 0.50);
}

TEST(ProcessorModel, LoadMissesAddStalls)
{
    ProcessorModelParams p = perfect();
    p.load_hit = 0.90;
    const CpiEstimate est = estimateCpi(p, 30'000);
    EXPECT_GT(est.memory_cpi, 0.03);
    EXPECT_LT(est.memory_cpi, 0.4);
}

TEST(ProcessorModel, CpiMonotonicInMissRate)
{
    double last = 0.0;
    for (double hit : {1.0, 0.98, 0.95, 0.90, 0.80}) {
        ProcessorModelParams p = perfect();
        p.load_hit = hit;
        p.store_hit = hit;
        const CpiEstimate est = estimateCpi(p, 25'000, 7);
        EXPECT_GE(est.cpi, last - 0.01);
        last = est.cpi;
    }
}

TEST(ProcessorModel, CpiMonotonicInMemoryLatency)
{
    double last = 0.0;
    for (double access : {2.0, 6.0, 12.0, 24.0}) {
        ProcessorModelParams p = perfect();
        p.load_hit = 0.92;
        p.icache_hit = 0.99;
        p.bank_access = access;
        const CpiEstimate est = estimateCpi(p, 25'000, 7);
        EXPECT_GT(est.cpi, last);
        last = est.cpi;
    }
}

TEST(ProcessorModel, ScoreboardingHelps)
{
    ProcessorModelParams with_sb = perfect();
    with_sb.load_hit = 0.85;
    ProcessorModelParams without_sb = with_sb;
    without_sb.scoreboarding = false;
    const double cpi_with = estimateCpi(with_sb, 30'000).cpi;
    const double cpi_without = estimateCpi(without_sb, 30'000).cpi;
    EXPECT_LT(cpi_with, cpi_without);
}

TEST(ProcessorModel, StoresDoNotStallViaBuffer)
{
    // A store-heavy mix with misses costs much less than the same
    // misses on loads (the store buffer hides them until the LSQ
    // backs up).
    ProcessorModelParams loads = perfect();
    loads.p_load = 0.3;
    loads.p_store = 0.0;
    loads.load_hit = 0.9;
    ProcessorModelParams stores = perfect();
    stores.p_load = 0.0;
    stores.p_store = 0.3;
    stores.store_hit = 0.9;
    const double cpi_loads = estimateCpi(loads, 30'000).cpi;
    const double cpi_stores = estimateCpi(stores, 30'000).cpi;
    EXPECT_LT(cpi_stores, cpi_loads);
}

TEST(ProcessorModel, L2ReducesMissCost)
{
    // Conventional system: with the L2 catching 90% of misses, CPI
    // is lower than going to a slow memory every time.
    ProcessorModelParams no_l2 = perfect();
    no_l2.load_hit = 0.85;
    no_l2.banks = 2;
    no_l2.bank_access = 30.0;  // 150 ns memory
    ProcessorModelParams with_l2 = no_l2;
    with_l2.has_l2 = true;
    with_l2.load_l2_hit = 0.9;
    with_l2.icache_l2_hit = 0.9;
    with_l2.store_l2_hit = 0.9;
    with_l2.l2_latency = 6.0;
    const double cpi_no = estimateCpi(no_l2, 30'000).cpi;
    const double cpi_with = estimateCpi(with_l2, 30'000).cpi;
    EXPECT_LT(cpi_with, cpi_no);
}

TEST(ProcessorModel, BankUtilisationFallsWithMoreBanks)
{
    ProcessorModelParams p = perfect();
    p.load_hit = 0.85;
    p.icache_hit = 0.97;
    p.banks = 2;
    const CpiEstimate two = estimateCpi(p, 30'000);
    p.banks = 16;
    const CpiEstimate sixteen = estimateCpi(p, 30'000);
    EXPECT_GT(two.bank_utilisation, sixteen.bank_utilisation);
    // Section 5.6: CPI differences stay small.
    EXPECT_NEAR(two.cpi, sixteen.cpi, 0.25 * two.cpi);
}

TEST(ProcessorModel, UtilisationIsLow)
{
    // gcc-like rates at 16 banks: each bank busy only ~1% of the
    // time (the Section 5.6 observation).
    ProcessorModelParams p = perfect();
    p.icache_hit = 0.995;
    p.load_hit = 0.95;
    p.store_hit = 0.95;
    p.p_load = 0.23;
    p.p_store = 0.09;
    const CpiEstimate est = estimateCpi(p, 40'000);
    EXPECT_LT(est.bank_utilisation, 0.05);
}

TEST(BankModel, BuildsAndServesBothClasses)
{
    BankModel model = BankModel::build(6.0, 4.0, 0.02, 0.02);
    GspnSimulator sim(model.net, 11);
    sim.run(50'000.0);
    EXPECT_GT(sim.firings(model.serve_instr), 500u);
    EXPECT_GT(sim.firings(model.serve_data), 500u);
    // Every service is followed by exactly one precharge.
    EXPECT_EQ(sim.firings(model.precharge),
              sim.firings(model.serve_instr) +
                  sim.firings(model.serve_data));
    // True utilisation: services x (access + precharge) over time.
    const double busy =
        static_cast<double>(sim.firings(model.serve_instr) +
                            sim.firings(model.serve_data)) *
        10.0 / sim.now();
    EXPECT_GT(busy, 0.3);
    EXPECT_LT(busy, 0.55);
}

TEST(ProcessorModelDeath, RejectsBadMix)
{
    ProcessorModelParams p = perfect();
    p.p_load = 0.8;
    p.p_store = 0.5;
    EXPECT_DEATH(ProcessorModel::build(p), "exceed");
}

TEST(ProcessorModel, SeedStability)
{
    // Monte-Carlo noise must stay well below the effects the paper
    // reads off the model: three seeds agree within a few percent.
    ProcessorModelParams p = perfect();
    p.icache_hit = 0.99;
    p.load_hit = 0.93;
    p.store_hit = 0.95;
    double lo = 1e9, hi = 0.0;
    for (std::uint64_t seed : {1ull, 1234ull, 987654321ull}) {
        const double cpi = estimateCpi(p, 40'000, seed).cpi;
        lo = std::min(lo, cpi);
        hi = std::max(hi, cpi);
    }
    EXPECT_LT((hi - lo) / lo, 0.03);
}
