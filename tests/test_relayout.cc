/**
 * @file
 * Tests for the profile-guided code re-layout pass.
 */

#include <gtest/gtest.h>

#include "mem/column_cache.hh"
#include "trace/relayout.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

CodeRoutine
routine(Addr base, std::uint32_t length, double weight = 1.0,
        double repeats = 1.0, int call = -1)
{
    CodeRoutine r;
    r.base = base;
    r.length = length;
    r.weight = weight;
    r.mean_repeats = repeats;
    r.call_target = call;
    return r;
}

double
imiss(const SyntheticSpec &spec, std::uint64_t refs = 200'000)
{
    ColumnInstrCache icache;
    SyntheticWorkload source(spec);
    const RefSink sink = [&](const MemRef &ref) {
        if (ref.type == RefType::IFetch)
            icache.fetch(ref.pc);
    };
    source.generate(refs / 4, sink);
    icache.resetStats();
    source.generate(refs, sink);
    return icache.stats().missRate();
}

} // namespace

TEST(Relayout, ConflictPredicate)
{
    RelayoutConfig cfg;  // 8 KB way, 512 B lines -> 16 sets
    // Same set modulo the way: conflict.
    EXPECT_TRUE(routinesConflict(routine(0x1000, 256),
                                 routine(0x1000 + 8 * KiB, 256),
                                 cfg));
    // Adjacent sets: no conflict.
    EXPECT_FALSE(routinesConflict(routine(0x1000, 256),
                                  routine(0x1000 + 512, 256), cfg));
    // Long routines overlap many sets.
    EXPECT_TRUE(routinesConflict(routine(0x0, 4 * KiB),
                                 routine(0x2000 + 512, 4 * KiB),
                                 cfg));
}

TEST(Relayout, PreservesSizesWeightsAndCalls)
{
    SyntheticSpec spec;
    spec.routines = {routine(0x100, 300, 8.0, 50.0, 1),
                     routine(0x100 + 8 * KiB + 464, 256, 0.001),
                     routine(0x4000, 3 * KiB, 2.0, 10.0)};
    const SyntheticSpec out = relayoutCode(spec);
    ASSERT_EQ(out.routines.size(), spec.routines.size());
    for (std::size_t i = 0; i < out.routines.size(); ++i) {
        EXPECT_EQ(out.routines[i].length, spec.routines[i].length);
        EXPECT_EQ(out.routines[i].weight, spec.routines[i].weight);
        EXPECT_EQ(out.routines[i].call_target,
                  spec.routines[i].call_target);
        EXPECT_EQ(out.routines[i].base % 4, 0u);  // aligned
    }
}

TEST(Relayout, CallPairsEndUpDisjoint)
{
    // The turb3d pattern: a loop whose callee aliases its column.
    SyntheticSpec spec;
    spec.routines = {routine(0x100, 300, 8.0, 50.0, 1),
                     routine(0x100 + 8 * KiB + 464, 256, 0.001)};
    ASSERT_TRUE(routinesConflict(spec.routines[0],
                                 spec.routines[1]));
    const SyntheticSpec out = relayoutCode(spec);
    EXPECT_FALSE(routinesConflict(out.routines[0],
                                  out.routines[1]));
}

TEST(Relayout, FixesTurb3d)
{
    const SpecWorkload &turb = findWorkload("125.turb3d");
    const double before = imiss(turb.proxy);
    const double after = imiss(relayoutCode(turb.proxy));
    // The paper: the regression "can be removed" — and it is.
    EXPECT_LT(after, 0.15 * before);
}

TEST(Relayout, DoesNoHarmElsewhere)
{
    for (const char *name : {"126.gcc", "145.fpppp", "130.li"}) {
        const SpecWorkload &w = findWorkload(name);
        const double before = imiss(w.proxy);
        const double after = imiss(relayoutCode(w.proxy));
        EXPECT_LE(after, before * 1.25 + 1e-4) << name;
    }
}

TEST(Relayout, EmptySpecSurvives)
{
    SyntheticSpec spec;
    spec.refs_per_instr = 0.0;
    const SyntheticSpec out = relayoutCode(spec);
    EXPECT_TRUE(out.routines.empty());
}

TEST(Relayout, RoutinesDoNotOverlapInMemory)
{
    const SpecWorkload &gcc = findWorkload("126.gcc");
    const SyntheticSpec out = relayoutCode(gcc.proxy);
    for (std::size_t i = 0; i < out.routines.size(); ++i)
        for (std::size_t j = i + 1; j < out.routines.size(); ++j) {
            const auto &a = out.routines[i];
            const auto &b = out.routines[j];
            const bool disjoint = a.base + a.length <= b.base ||
                                  b.base + b.length <= a.base;
            EXPECT_TRUE(disjoint) << i << " vs " << j;
        }
}
