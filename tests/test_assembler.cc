/**
 * @file
 * Tests for the two-pass MW32 assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

using namespace memwall;

TEST(Assembler, MinimalProgram)
{
    const auto prog = assemble("halt\n");
    ASSERT_TRUE(prog.ok());
    ASSERT_EQ(prog.words.size(), 1u);
    const Instruction inst =
        Instruction::decode(prog.words.begin()->second);
    EXPECT_EQ(inst.op, Opcode::Halt);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const auto prog = assemble(R"(
        ; full-line comment
        # hash comment too
        addi r1, r0, 5   ; trailing comment
        halt
    )");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.words.size(), 2u);
}

TEST(Assembler, LabelsResolveForwardsAndBackwards)
{
    const auto prog = assemble(R"(
        .org 0x1000
        start:
            beq r0, r0, end
        middle:
            addi r1, r1, 1
            b middle
        end:
            halt
    )");
    ASSERT_TRUE(prog.ok()) << prog.errors.size();
    EXPECT_EQ(prog.symbol("start"), 0x1000u);
    EXPECT_EQ(prog.symbol("middle"), 0x1004u);
    EXPECT_EQ(prog.symbol("end"), 0x100cu);
    EXPECT_EQ(prog.entry, 0x1000u);
    // beq offset: (end - (start+4)) / 4 = 2.
    const Instruction beq =
        Instruction::decode(prog.words.at(0x1000));
    EXPECT_EQ(beq.imm, 2);
    // b middle: backward jal offset (middle - (0x1008+4))/4 = -2.
    const Instruction b = Instruction::decode(prog.words.at(0x1008));
    EXPECT_EQ(b.op, Opcode::Jal);
    EXPECT_EQ(b.target, -2);
}

TEST(Assembler, OrgAndDataDirectives)
{
    const auto prog = assemble(R"(
        .equ MAGIC, 0xabcd
        .org 0x2000
        table:
        .word 1, 2, MAGIC
        .space 8
        after:
        .word 42
    )");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.words.at(0x2000), 1u);
    EXPECT_EQ(prog.words.at(0x2004), 2u);
    EXPECT_EQ(prog.words.at(0x2008), 0xabcdu);
    EXPECT_EQ(prog.symbol("after"), 0x2014u);
    EXPECT_EQ(prog.words.at(0x2014), 42u);
}

TEST(Assembler, RegisterAliases)
{
    const auto prog = assemble(R"(
        addi sp, zero, 16
        jalr r0, ra, 0
    )");
    ASSERT_TRUE(prog.ok());
    const Instruction first =
        Instruction::decode(prog.words.begin()->second);
    EXPECT_EQ(first.rd, 30);   // sp
    EXPECT_EQ(first.rs1, 0);   // zero
}

TEST(Assembler, PseudoInstructions)
{
    const auto prog = assemble(R"(
        start:
            li r1, 0x12345678
            la r2, start
            mv r3, r1
            nop
            ret
    )");
    ASSERT_TRUE(prog.ok());
    // li expands to lui+ori.
    const Instruction lui = Instruction::decode(prog.words.at(0x0));
    EXPECT_EQ(lui.op, Opcode::Lui);
    EXPECT_EQ(lui.imm, 0x1234);
    const Instruction ori = Instruction::decode(prog.words.at(0x4));
    EXPECT_EQ(ori.op, Opcode::Ori);
    EXPECT_EQ(ori.imm, 0x5678);
    // Total: 2 + 2 + 1 + 1 + 1 words.
    EXPECT_EQ(prog.words.size(), 7u);
}

TEST(Assembler, MemoryOperandSyntax)
{
    const auto prog = assemble(R"(
        lw r1, 8(r2)
        sw r3, -4(sp)
        lw r4, (r5)
    )");
    ASSERT_TRUE(prog.ok());
    const Instruction lw = Instruction::decode(prog.words.at(0x0));
    EXPECT_EQ(lw.imm, 8);
    EXPECT_EQ(lw.rs1, 2);
    const Instruction sw = Instruction::decode(prog.words.at(0x4));
    EXPECT_EQ(sw.imm, -4);
    EXPECT_EQ(sw.rs1, 30);
    const Instruction lw2 = Instruction::decode(prog.words.at(0x8));
    EXPECT_EQ(lw2.imm, 0);
}

TEST(Assembler, EntryDefaultsToStartLabel)
{
    const auto prog = assemble(R"(
        .org 0x100
        data: .word 7
        start: halt
    )");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.entry, prog.symbol("start"));
}

TEST(Assembler, ErrorsCollected)
{
    const auto prog = assemble(R"(
        frobnicate r1, r2
        addi r99, r0, 1
        lw r1, nonsense
        dup: halt
        dup: halt
        beq r0, r0, undefined_label
    )");
    EXPECT_FALSE(prog.ok());
    EXPECT_GE(prog.errors.size(), 5u);
    // Line numbers attached.
    for (const auto &e : prog.errors)
        EXPECT_GT(e.line, 0u);
}

TEST(Assembler, ImmediateRangeChecked)
{
    const auto prog = assemble("addi r1, r0, 40000\n");
    EXPECT_FALSE(prog.ok());
}

TEST(Assembler, LoadIntoMemoryImage)
{
    const auto prog = assembleOrDie(R"(
        .org 0x400
        addi r1, r0, 3
        halt
    )");
    BackingStore mem;
    prog.loadInto(mem);
    const Instruction inst =
        Instruction::decode(mem.readU32(0x400));
    EXPECT_EQ(inst.op, Opcode::Addi);
    EXPECT_EQ(inst.imm, 3);
}

TEST(AssemblerDeath, AssembleOrDieExitsOnError)
{
    EXPECT_EXIT(assembleOrDie("bogus_mnemonic r1\n"),
                ::testing::ExitedWithCode(1), "assembly failed");
}

TEST(Assembler, ByteDirectivePacksLittleEndian)
{
    const auto prog = assemble(R"(
        .org 0x100
        data: .byte 0x11, 0x22, 0x33, 0x44, 0x55
        after: .word 0xaa
    )");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.words.at(0x100), 0x44332211u);
    EXPECT_EQ(prog.words.at(0x104), 0x00000055u);
    EXPECT_EQ(prog.symbol("after"), 0x108u);
    EXPECT_EQ(prog.words.at(0x108), 0xaau);
}

TEST(Assembler, AlignDirective)
{
    const auto prog = assemble(R"(
        .org 0x102
        .align 16
        here: .word 7
    )");
    // .org to a non-word boundary is unusual but .align must fix it.
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.symbol("here"), 0x110u);
}

TEST(Assembler, AlignRejectsNonPowerOfTwo)
{
    const auto prog = assemble(".align 12\n");
    EXPECT_FALSE(prog.ok());
}

TEST(Assembler, ByteRangeChecked)
{
    const auto prog = assemble(".byte 300\n");
    EXPECT_FALSE(prog.ok());
}

TEST(Assembler, SourceMapSeparatesCodeAndData)
{
    const auto prog = assemble(".org 0x1000\n"        // line 1
                               "start:\n"             // line 2
                               "    li   r1, buf\n"   // line 3
                               "    lw   r2, 0(r1)\n" // line 4
                               "    halt\n"           // line 5
                               "tbl:\n"               // line 6
                               "    .word 1, 2\n"     // line 7
                               "buf:\n"               // line 8
                               "    .space 8\n");     // line 9
    ASSERT_TRUE(prog.ok());
    const SourceMap &map = prog.source_map;

    // li expands to two instruction words, both from line 3.
    EXPECT_TRUE(map.isInstruction(0x1000));
    EXPECT_TRUE(map.isInstruction(0x1004));
    EXPECT_EQ(map.lineOf(0x1000), 3u);
    EXPECT_EQ(map.lineOf(0x1004), 3u);
    EXPECT_EQ(map.lineOf(0x1008), 4u);
    EXPECT_EQ(map.lineOf(0x100c), 5u);

    // .word data is data, never instructions.
    EXPECT_FALSE(map.isInstruction(0x1010));
    EXPECT_EQ(map.data_lines.at(0x1010), 7u);
    EXPECT_EQ(map.data_lines.at(0x1014), 7u);
    EXPECT_EQ(map.lineOf(0x1010), 7u);

    // .space shows up as a region, not emitted words.
    const Addr buf = prog.symbol("buf");
    EXPECT_TRUE(map.inSpace(buf));
    EXPECT_TRUE(map.inSpace(buf + 7));
    EXPECT_FALSE(map.inSpace(buf + 8));
    EXPECT_FALSE(map.inSpace(0x1000));
    ASSERT_EQ(map.space_regions.size(), 1u);
    EXPECT_EQ(map.space_regions[0].first, buf);
    EXPECT_EQ(map.space_regions[0].second, buf + 8);

    // Unknown address maps to line 0.
    EXPECT_EQ(map.lineOf(0x9999), 0u);
}

TEST(Assembler, ErrorFormatCarriesFileLineAndToken)
{
    const auto prog = assemble("addi r99, r0, 1\n", "bad.s");
    ASSERT_FALSE(prog.ok());
    EXPECT_EQ(prog.file, "bad.s");
    const AsmError &e = prog.errors.front();
    EXPECT_EQ(e.line, 1u);
    EXPECT_EQ(e.token, "r99");
    const std::string msg = e.format(prog.file);
    EXPECT_EQ(msg.rfind("bad.s:1: error: ", 0), 0u) << msg;
    EXPECT_NE(msg.find("'r99'"), std::string::npos) << msg;
}
