/**
 * @file
 * Tests for the 14-bit limited-pointer directory (Figure 5).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "coherence/directory.hh"

using namespace memwall;

TEST(DirEntry, StartsUncached)
{
    DirEntry e;
    EXPECT_EQ(e.state(), DirState::Uncached);
    EXPECT_TRUE(e.sharers().empty());
    EXPECT_FALSE(e.tracks(0));
}

TEST(DirEntry, FirstSharer)
{
    DirEntry e;
    e.addSharer(5);
    EXPECT_EQ(e.state(), DirState::Shared);
    EXPECT_EQ(e.sharers(), std::vector<unsigned>{5});
    EXPECT_TRUE(e.tracks(5));
    EXPECT_FALSE(e.tracks(4));
}

TEST(DirEntry, ThreeSharersTracked)
{
    DirEntry e;
    e.addSharer(1);
    e.addSharer(9);
    e.addSharer(15);
    EXPECT_EQ(e.state(), DirState::Shared);
    auto s = e.sharers();
    std::sort(s.begin(), s.end());
    EXPECT_EQ(s, (std::vector<unsigned>{1, 9, 15}));
}

TEST(DirEntry, DuplicateAddIsIdempotent)
{
    DirEntry e;
    e.addSharer(3);
    e.addSharer(3);
    e.addSharer(3);
    EXPECT_EQ(e.sharers(), std::vector<unsigned>{3});
    EXPECT_EQ(e.state(), DirState::Shared);
}

TEST(DirEntry, FourthSharerOverflowsToBroadcast)
{
    DirEntry e;
    e.addSharer(1);
    e.addSharer(2);
    e.addSharer(3);
    EXPECT_EQ(e.state(), DirState::Shared);
    e.addSharer(4);
    EXPECT_EQ(e.state(), DirState::SharedBcast);
    // Broadcast mode conservatively tracks everyone.
    EXPECT_TRUE(e.tracks(0));
    EXPECT_TRUE(e.tracks(15));
}

TEST(DirEntry, ModifiedOwner)
{
    DirEntry e;
    e.setModified(7);
    EXPECT_EQ(e.state(), DirState::Modified);
    EXPECT_EQ(e.owner(), 7u);
    EXPECT_TRUE(e.tracks(7));
    EXPECT_FALSE(e.tracks(8));
}

TEST(DirEntry, ReadDowngradesModified)
{
    DirEntry e;
    e.setModified(2);
    e.addSharer(6);
    EXPECT_EQ(e.state(), DirState::Shared);
    auto s = e.sharers();
    std::sort(s.begin(), s.end());
    EXPECT_EQ(s, (std::vector<unsigned>{2, 6}));
}

TEST(DirEntry, OwnerReReadKeepsSingleSharer)
{
    DirEntry e;
    e.setModified(2);
    e.addSharer(2);
    EXPECT_EQ(e.state(), DirState::Shared);
    EXPECT_EQ(e.sharers(), std::vector<unsigned>{2});
}

TEST(DirEntry, NodeId15Works)
{
    // The duplicate-slot encoding frees id 15 (no null sentinel).
    DirEntry e;
    e.addSharer(15);
    EXPECT_TRUE(e.tracks(15));
    e.setModified(15);
    EXPECT_EQ(e.owner(), 15u);
}

TEST(DirEntry, EncodeFitsIn14Bits)
{
    DirEntry e;
    e.addSharer(15);
    e.addSharer(14);
    e.addSharer(13);
    EXPECT_LT(e.encode(), 1u << 14);
    e.setModified(15);
    EXPECT_LT(e.encode(), 1u << 14);
}

TEST(DirEntry, EncodeDecodeRoundTrip)
{
    // Through every reachable state shape.
    std::vector<DirEntry> entries;
    DirEntry uncached;
    entries.push_back(uncached);
    DirEntry one;
    one.addSharer(4);
    entries.push_back(one);
    DirEntry two;
    two.addSharer(4);
    two.addSharer(11);
    entries.push_back(two);
    DirEntry three;
    three.addSharer(0);
    three.addSharer(7);
    three.addSharer(15);
    entries.push_back(three);
    DirEntry bcast = three;
    bcast.addSharer(9);
    entries.push_back(bcast);
    DirEntry mod;
    mod.setModified(12);
    entries.push_back(mod);

    for (const DirEntry &e : entries) {
        const DirEntry back = DirEntry::decode(e.encode());
        EXPECT_EQ(back, e);
        EXPECT_EQ(back.state(), e.state());
    }
}

TEST(DirEntry, ClearResets)
{
    DirEntry e;
    e.setModified(3);
    e.clear();
    EXPECT_EQ(e.state(), DirState::Uncached);
    EXPECT_FALSE(e.tracks(3));
}

TEST(Directory, EntriesMaterialiseOnDemand)
{
    Directory dir(16);
    EXPECT_EQ(dir.materialisedEntries(), 0u);
    EXPECT_EQ(dir.lookup(0x1000).state(), DirState::Uncached);
    EXPECT_EQ(dir.materialisedEntries(), 0u);  // lookup is read-only
    dir.entry(0x1000).addSharer(1);
    EXPECT_EQ(dir.materialisedEntries(), 1u);
    EXPECT_TRUE(dir.lookup(0x1000).tracks(1));
}

TEST(Directory, BlockGranularityIs32Bytes)
{
    Directory dir(4);
    dir.entry(0x107).addSharer(2);
    // Same 32-byte block.
    EXPECT_TRUE(dir.lookup(0x11f).tracks(2));
    // Next block is independent.
    EXPECT_FALSE(dir.lookup(0x120).tracks(2));
    EXPECT_EQ(dir.materialisedEntries(), 1u);
}

TEST(DirectoryDeath, RejectsTooManyNodes)
{
    EXPECT_DEATH(Directory dir(17), "1..1");
}

TEST(Directory, BitsPerBlockIsFourteen)
{
    EXPECT_EQ(Directory::bitsPerBlock(), 14u);
}
