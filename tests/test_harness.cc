/**
 * @file
 * Tests of the parallel experiment harness: the work-stealing
 * ThreadPool, the order-preserving ParallelSweep, per-point seed
 * derivation, and — the property the figure/table binaries rely on —
 * that a parallel sweep over real simulation points produces results
 * identical to the serial reference run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/thread_pool.hh"
#include "workloads/missrate.hh"
#include "workloads/spec_suite.hh"

using namespace memwall;

namespace {

TEST(PointSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(pointSeed(42, 0), pointSeed(42, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(pointSeed(42, i));
    EXPECT_EQ(seeds.size(), 1000u) << "adjacent indices must map to "
                                      "distinct seeds";
    EXPECT_NE(pointSeed(42, 5), pointSeed(43, 5))
        << "seed must depend on the base seed";
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] {
            count.fetch_add(1, std::memory_order_relaxed);
        });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, TinyTaskStressStealsWork)
{
    // Thousands of near-empty tasks force workers through the
    // submit/steal machinery far more often than they compute.
    // Round-robin submission spreads tasks over all four deques, so
    // any worker that outpaces its own deque must steal.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    constexpr int tasks = 8000;
    for (int i = 0; i < tasks; ++i)
        pool.submit([&sum, i] {
            sum.fetch_add(static_cast<std::uint64_t>(i),
                          std::memory_order_relaxed);
        });
    pool.waitIdle();
    EXPECT_EQ(sum.load(),
              static_cast<std::uint64_t>(tasks) * (tasks - 1) / 2);
    EXPECT_GT(pool.steals(), 0u)
        << "tiny-task flood should migrate work between deques";
}

TEST(ThreadPool, WaitIdleIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.waitIdle();
        EXPECT_EQ(count.load(), 50 * (round + 1));
    }
}

TEST(ParallelSweep, CommitsInSubmissionOrder)
{
    // Points deliberately finish out of order (earlier points sleep
    // longer); commits must still observe index order.
    ParallelSweep<int> sweep(/*jobs=*/8, /*base_seed=*/1);
    std::vector<std::size_t> commit_order;
    constexpr int points = 16;
    for (int p = 0; p < points; ++p) {
        sweep.submit(
            [p](const PointContext &) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds((points - p) % 5));
                return p * p;
            },
            [&commit_order](const PointContext &ctx, int v) {
                EXPECT_EQ(v, static_cast<int>(ctx.index * ctx.index));
                commit_order.push_back(ctx.index);
            });
    }
    sweep.finish();
    ASSERT_EQ(commit_order.size(), static_cast<std::size_t>(points));
    for (std::size_t i = 0; i < commit_order.size(); ++i)
        EXPECT_EQ(commit_order[i], i);
    EXPECT_EQ(sweep.submitted(), static_cast<std::size_t>(points));
    EXPECT_EQ(sweep.committed(), static_cast<std::size_t>(points));
}

TEST(ParallelSweep, SerialModeRunsInlineAtSubmit)
{
    ParallelSweep<int> sweep(/*jobs=*/1, /*base_seed=*/9);
    int committed = 0;
    sweep.submit([](const PointContext &ctx) {
        return static_cast<int>(ctx.index) + 100;
    },
                 [&committed](const PointContext &, int v) {
                     EXPECT_EQ(v, 100);
                     ++committed;
                 });
    // With jobs == 1 the commit happens before submit() returns.
    EXPECT_EQ(committed, 1);
    sweep.finish();
}

TEST(ParallelSweep, PointSeedsMatchPointSeedFunction)
{
    constexpr std::uint64_t base = 777;
    ParallelSweep<std::uint64_t> sweep(/*jobs=*/4, base);
    for (int p = 0; p < 8; ++p)
        sweep.submit(
            [](const PointContext &ctx) { return ctx.seed; },
            [](const PointContext &ctx, std::uint64_t seed) {
                EXPECT_EQ(seed, pointSeed(base, ctx.index));
            });
    sweep.finish();
}

/** Run the fig7/fig8 sweep body over a few workloads. */
std::vector<WorkloadMissRates>
sweepMissRates(unsigned jobs)
{
    MissRateParams params;
    params.measured_refs = 20'000;
    params.warmup_refs = 5'000;
    std::vector<WorkloadMissRates> out;
    ParallelSweep<WorkloadMissRates> sweep(jobs, /*base_seed=*/42);
    for (const char *name : {"099.go", "126.gcc", "102.swim"}) {
        const SpecWorkload &w = findWorkload(name);
        sweep.submit(
            [&w, &params](const PointContext &) {
                return measureMissRates(w, params);
            },
            [&out](const PointContext &, WorkloadMissRates rates) {
                out.push_back(std::move(rates));
            });
    }
    sweep.finish();
    return out;
}

TEST(ParallelSweep, RealPointsIdenticalAcrossJobCounts)
{
    // The guarantee the figure/table binaries print in their --help:
    // any --jobs N reproduces the --jobs 1 output exactly.
    const auto serial = sweepMissRates(1);
    const auto parallel = sweepMissRates(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        ASSERT_EQ(serial[i].icaches.size(),
                  parallel[i].icaches.size());
        ASSERT_EQ(serial[i].dcaches.size(),
                  parallel[i].dcaches.size());
        for (std::size_t c = 0; c < serial[i].icaches.size(); ++c) {
            EXPECT_EQ(serial[i].icaches[c].stats.accesses(),
                      parallel[i].icaches[c].stats.accesses());
            EXPECT_EQ(serial[i].icaches[c].stats.misses(),
                      parallel[i].icaches[c].stats.misses());
        }
        for (std::size_t c = 0; c < serial[i].dcaches.size(); ++c) {
            EXPECT_EQ(serial[i].dcaches[c].stats.accesses(),
                      parallel[i].dcaches[c].stats.accesses());
            EXPECT_EQ(serial[i].dcaches[c].stats.misses(),
                      parallel[i].dcaches[c].stats.misses());
        }
    }
}

// --- Shutdown edge cases the experiment service depends on -------

TEST(ThreadPool, DestructionDrainsQueuedButUnstartedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        // Far more tasks than workers: most are still queued when
        // the destructor starts. It must run them all, not drop them.
        for (int i = 0; i < 200; ++i)
            pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++ran;
            });
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorkerOrPool)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    pool.submit([] { throw 42; }); // non-std exception
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ++ran; });
    pool.waitIdle();
    EXPECT_EQ(pool.taskExceptions(), 2u);
    EXPECT_EQ(ran.load(), 50);
    // The pool is still fully operational after the exceptions.
    pool.submit([&ran] { ++ran; });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPool, ReentrantSubmitFromWorkerCompletesBeforeShutdown)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        // Each task spawns a child from inside the worker; the chain
        // must be fully executed before the destructor returns, and
        // the re-entrant submit must not deadlock on the pool lock.
        std::function<void(int)> chain = [&](int depth) {
            ++ran;
            if (depth > 0)
                pool.submit([&chain, depth] { chain(depth - 1); });
        };
        for (int i = 0; i < 8; ++i)
            pool.submit([&chain] { chain(10); });
        pool.waitIdle();
    }
    EXPECT_EQ(ran.load(), 8 * 11);
}

TEST(ThreadPool, ReentrantSubmitDuringDestructorDrain)
{
    // A queued task that itself submits while the destructor is
    // draining: in_flight_ stays nonzero until the child finishes,
    // so waitIdle() in the destructor covers it.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        pool.submit([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            pool.submit([&ran] { ++ran; });
        });
    }
    EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelSweep, ManyMorePointsThanWorkers)
{
    ParallelSweep<std::size_t> sweep(/*jobs=*/3, /*base_seed=*/5);
    std::vector<std::size_t> results;
    constexpr std::size_t points = 200;
    for (std::size_t p = 0; p < points; ++p)
        sweep.submit(
            [](const PointContext &ctx) { return ctx.index * 3; },
            [&results](const PointContext &, std::size_t v) {
                results.push_back(v);
            });
    sweep.finish();
    ASSERT_EQ(results.size(), points);
    for (std::size_t i = 0; i < points; ++i)
        EXPECT_EQ(results[i], i * 3);
}

} // namespace
