/**
 * @file
 * Randomised stress tests of the coherence protocol: thousands of
 * random load/store operations across nodes, checking global
 * invariants rather than scripted scenarios.
 */

#include <gtest/gtest.h>

#include <map>

#include "coherence/numa.hh"
#include "common/rng.hh"

using namespace memwall;

namespace {

struct Op
{
    unsigned cpu;
    Addr addr;
    bool store;
};

std::vector<Op>
randomOps(std::uint64_t seed, unsigned nodes, std::size_t count)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Op op;
        op.cpu = static_cast<unsigned>(rng.uniformInt(nodes));
        // A small, hot block set maximises protocol interleavings.
        op.addr = 0x100000 + rng.uniformInt(64) * 32;
        op.store = rng.bernoulli(0.3);
        ops.push_back(op);
    }
    return ops;
}

NumaConfig
config(NodeArch arch, unsigned nodes)
{
    NumaConfig c;
    c.nodes = nodes;
    c.arch = arch;
    return c;
}

} // namespace

class ProtocolStress : public ::testing::TestWithParam<NodeArch>
{
};

TEST_P(ProtocolStress, LatenciesAlwaysInTable6Range)
{
    NumaMachine m(config(GetParam(), 8));
    for (const Op &op : randomOps(1, 8, 20000)) {
        const Cycles lat = m.access(op.cpu, op.addr, op.store);
        EXPECT_GE(lat, 1u);
        EXPECT_LE(lat, 80u);  // nothing exceeds a remote round trip
    }
}

TEST_P(ProtocolStress, WriterReadsItsOwnStoreCheaply)
{
    // After any store, an immediate load by the same CPU never
    // leaves the node (the copy is local and M): <= local memory.
    NumaMachine m(config(GetParam(), 4));
    Rng rng(2);
    for (const Op &op : randomOps(3, 4, 5000)) {
        m.access(op.cpu, op.addr, op.store);
        if (op.store) {
            const Cycles lat = m.access(op.cpu, op.addr, false);
            EXPECT_LE(lat, 6u)
                << "cpu " << op.cpu << " addr " << op.addr;
        }
    }
}

TEST_P(ProtocolStress, StoreInvalidatesAllReaders)
{
    // After a store by X, every other CPU's next load pays a fabric
    // transaction (80) — no stale 1-cycle hits survive anywhere.
    NumaMachine m(config(GetParam(), 4));
    Rng rng(5);
    const Addr block = 0x200000;
    for (int round = 0; round < 200; ++round) {
        // Everyone reads.
        for (unsigned cpu = 0; cpu < 4; ++cpu)
            m.access(cpu, block, false);
        // A random writer takes ownership.
        const unsigned writer =
            static_cast<unsigned>(rng.uniformInt(4));
        m.access(writer, block, true);
        // All other CPUs must go remote.
        for (unsigned cpu = 0; cpu < 4; ++cpu) {
            if (cpu == writer)
                continue;
            const Cycles lat = m.access(cpu, block, false);
            EXPECT_EQ(lat, 80u)
                << "round " << round << " cpu " << cpu;
        }
    }
}

TEST_P(ProtocolStress, DeterministicReplay)
{
    const auto ops = randomOps(7, 8, 30000);
    NumaMachine a(config(GetParam(), 8));
    NumaMachine b(config(GetParam(), 8));
    std::uint64_t total_a = 0, total_b = 0;
    for (const Op &op : ops) {
        total_a += a.access(op.cpu, op.addr, op.store);
        total_b += b.access(op.cpu, op.addr, op.store);
    }
    EXPECT_EQ(total_a, total_b);
    EXPECT_EQ(a.totalRemoteLoads(), b.totalRemoteLoads());
    EXPECT_EQ(a.totalInvalidations(), b.totalInvalidations());
}

TEST_P(ProtocolStress, CountersAreConsistent)
{
    NumaMachine m(config(GetParam(), 8));
    const auto ops = randomOps(11, 8, 20000);
    for (const Op &op : ops)
        m.access(op.cpu, op.addr, op.store);
    std::uint64_t per_node_total = 0;
    for (unsigned cpu = 0; cpu < 8; ++cpu) {
        const NodeStats &s = m.nodeStats(cpu);
        per_node_total += s.total.value();
        // Service categories never exceed the node's access count.
        EXPECT_LE(s.cache_hits.value() + s.local_mem.value() +
                      s.inc_hits.value() + s.remote_loads.value() +
                      s.invalidations.value(),
                  s.total.value() + 1);
    }
    EXPECT_EQ(per_node_total, ops.size());
    EXPECT_EQ(m.totalAccesses(), ops.size());
}

INSTANTIATE_TEST_SUITE_P(Architectures, ProtocolStress,
                         ::testing::Values(
                             NodeArch::Integrated,
                             NodeArch::ReferenceCcNuma,
                             NodeArch::SimpleComa),
                         [](const auto &info) {
                             switch (info.param) {
                               case NodeArch::Integrated:
                                 return "Integrated";
                               case NodeArch::ReferenceCcNuma:
                                 return "Reference";
                               case NodeArch::SimpleComa:
                                 return "SimpleComa";
                             }
                             return "Unknown";
                         });

TEST(ProtocolStressMixed, HotAndColdBlocksTogether)
{
    // Mix hot shared blocks with cold private ones; the protocol
    // must keep private data at 1-6 cycles throughout.
    NumaMachine m(config(NodeArch::Integrated, 4));
    Rng rng(13);
    for (int i = 0; i < 20000; ++i) {
        const unsigned cpu =
            static_cast<unsigned>(rng.uniformInt(4));
        if (rng.bernoulli(0.5)) {
            // Private region of this CPU (first touch pins home).
            const Addr addr = 0x10000000 + cpu * 0x1000000ull +
                              rng.uniformInt(256) * 32;
            m.access(cpu, addr, rng.bernoulli(0.3));
        } else {
            const Addr addr =
                0x100000 + rng.uniformInt(16) * 32;
            m.access(cpu, addr, rng.bernoulli(0.3));
        }
    }
    // Private re-reads end cheap on every node.
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        const Addr addr = 0x10000000 + cpu * 0x1000000ull;
        m.access(cpu, addr, false);
        EXPECT_LE(m.access(cpu, addr, false), 6u);
    }
}
