/**
 * @file
 * Tests of the bench option-parsing helpers: --jobs/--refs/--seed/
 * --quick, registered extra flags, and the comma-list parsers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace memwall;

namespace {

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::initializer_list<const char *> args)
        : strings_(args.begin(), args.end())
    {
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }

    int argc() { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

TEST(BenchUtil, DefaultsWithNoArguments)
{
    Argv a{"bench"};
    const auto opt = benchutil::parse(a.argc(), a.argv());
    EXPECT_EQ(opt.refs, 0u);
    EXPECT_FALSE(opt.quick);
    EXPECT_EQ(opt.seed, 42u);
    EXPECT_EQ(opt.jobs, benchutil::defaultJobs());
    EXPECT_TRUE(opt.extra.empty());
}

TEST(BenchUtil, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(benchutil::defaultJobs(), 1u);
}

TEST(BenchUtil, ParsesCoreFlags)
{
    Argv a{"bench", "--refs", "500000", "--quick", "--seed", "7",
           "--jobs", "3"};
    const auto opt = benchutil::parse(a.argc(), a.argv());
    EXPECT_EQ(opt.refs, 500000u);
    EXPECT_TRUE(opt.quick);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_EQ(opt.jobs, 3u);
}

TEST(BenchUtil, JobsZeroMeansHardwareDefault)
{
    Argv a{"bench", "--jobs", "0"};
    const auto opt = benchutil::parse(a.argc(), a.argv());
    EXPECT_EQ(opt.jobs, benchutil::defaultJobs());
}

TEST(BenchUtil, HexAndDecimalValues)
{
    Argv a{"bench", "--seed", "0x10", "--refs", "0x400"};
    const auto opt = benchutil::parse(a.argc(), a.argv());
    EXPECT_EQ(opt.seed, 16u);
    EXPECT_EQ(opt.refs, 1024u);
}

TEST(BenchUtil, ExtraFlagsLandInMap)
{
    Argv a{"bench", "--reseeds", "0,777,31415", "--jobs", "2",
           "--mode", "fast"};
    const auto opt = benchutil::parse(a.argc(), a.argv(),
                                      {"--reseeds", "--mode"});
    EXPECT_EQ(opt.jobs, 2u);
    EXPECT_EQ(opt.extraOr("--reseeds", ""), "0,777,31415");
    EXPECT_EQ(opt.extraOr("--mode", ""), "fast");
    EXPECT_EQ(opt.extraOr("--absent", "dflt"), "dflt");
}

TEST(BenchUtilDeathTest, UnknownFlagExitsWithUsage)
{
    Argv a{"bench", "--bogus"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchUtilDeathTest, UnknownFlagIsNamedInTheError)
{
    Argv a{"bench", "--bogus"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(2),
                "unknown flag '--bogus'");
}

TEST(BenchUtilDeathTest, UnregisteredExtraFlagExits)
{
    Argv a{"bench", "--mode", "fast"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv(), {"--reseeds"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchUtilDeathTest, MissingValueNamesTheFlag)
{
    Argv a{"bench", "--seed"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(2),
                "missing value for --seed");
}

TEST(BenchUtilDeathTest, MissingValueForExtraFlag)
{
    Argv a{"bench", "--reseeds"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv(), {"--reseeds"}),
                testing::ExitedWithCode(2),
                "missing value for --reseeds");
}

TEST(BenchUtilDeathTest, NonNumericValueRejected)
{
    // Silently mapping `--jobs abc` to the hardware default hid
    // typos; it must be a named parse error instead.
    Argv a{"bench", "--jobs", "abc"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(2),
                "invalid value 'abc' for --jobs");
}

TEST(BenchUtilDeathTest, TrailingJunkInValueRejected)
{
    Argv a{"bench", "--refs", "12x"};
    EXPECT_EXIT(benchutil::parse(a.argc(), a.argv()),
                testing::ExitedWithCode(2),
                "invalid value '12x' for --refs");
}

TEST(BenchUtil, SplitListBasic)
{
    const auto parts = benchutil::splitList("1,2,3");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "1");
    EXPECT_EQ(parts[1], "2");
    EXPECT_EQ(parts[2], "3");
}

TEST(BenchUtil, SplitListSingleAndEmpty)
{
    EXPECT_EQ(benchutil::splitList("solo"),
              (std::vector<std::string>{"solo"}));
    EXPECT_EQ(benchutil::splitList(""),
              (std::vector<std::string>{""}));
    EXPECT_EQ(benchutil::splitList("a,,b"),
              (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(benchutil::splitList("a,"),
              (std::vector<std::string>{"a", ""}));
}

TEST(BenchUtil, ParseU64List)
{
    EXPECT_EQ(benchutil::parseU64List("0,777,0x10"),
              (std::vector<std::uint64_t>{0, 777, 16}));
}

TEST(BenchUtil, ParseDoubleList)
{
    const auto vals = benchutil::parseDoubleList("0,1e-6,2.5");
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_DOUBLE_EQ(vals[0], 0.0);
    EXPECT_DOUBLE_EQ(vals[1], 1e-6);
    EXPECT_DOUBLE_EQ(vals[2], 2.5);
}

TEST(BenchUtilCkptFlagsDeath, EmptyCkptDirIsUsageError)
{
    Argv a{"bench", "--ckpt-dir", ""};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--ckpt-dir"});
    EXPECT_EXIT(
        benchutil::checkpointDirFlag(opt, "bench", {"--ckpt-dir"}),
        testing::ExitedWithCode(2), "--ckpt-dir: empty path");
}

TEST(BenchUtilCkptFlagsDeath, CkptDirOverRegularFileIsUsageError)
{
    Argv a{"bench", "--ckpt-dir", "/etc/hostname"};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--ckpt-dir"});
    EXPECT_EXIT(
        benchutil::checkpointDirFlag(opt, "bench", {"--ckpt-dir"}),
        testing::ExitedWithCode(2), "is not a directory");
}

TEST(BenchUtilCkptFlagsDeath, UncreatableCkptDirIsUsageError)
{
    Argv a{"bench", "--ckpt-dir", "/nonexistent/deep/dir"};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--ckpt-dir"});
    EXPECT_EXIT(
        benchutil::checkpointDirFlag(opt, "bench", {"--ckpt-dir"}),
        testing::ExitedWithCode(2),
        "cannot create '/nonexistent/deep/dir'");
}

TEST(BenchUtilCkptFlags, AbsentCkptDirReturnsEmpty)
{
    Argv a{"bench"};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--ckpt-dir"});
    EXPECT_EQ(
        benchutil::checkpointDirFlag(opt, "bench", {"--ckpt-dir"}),
        "");
}

TEST(BenchUtilCkptFlags, CkptDirIsCreatedWhenMissing)
{
    const std::string dir =
        ::testing::TempDir() + "benchutil-ckpt-dir";
    const std::string cleanup = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cleanup.c_str());
    Argv a{"bench", "--ckpt-dir", dir.c_str()};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--ckpt-dir"});
    EXPECT_EQ(
        benchutil::checkpointDirFlag(opt, "bench", {"--ckpt-dir"}),
        dir);
    struct stat st;
    EXPECT_EQ(::stat(dir.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    rc = std::system(cleanup.c_str());
}

TEST(BenchUtilCkptFlagsDeath, EmptyResumePathIsUsageError)
{
    Argv a{"bench", "--resume", ""};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--resume"});
    EXPECT_EXIT(
        benchutil::resumePathFlag(opt, "bench", {"--resume"}),
        testing::ExitedWithCode(2), "--resume: empty path");
}

TEST(BenchUtilCkptFlagsDeath, ResumeOverDirectoryIsUsageError)
{
    Argv a{"bench", "--resume", "/tmp"};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--resume"});
    EXPECT_EXIT(
        benchutil::resumePathFlag(opt, "bench", {"--resume"}),
        testing::ExitedWithCode(2), "is not a regular file");
}

TEST(BenchUtilCkptFlagsDeath, ResumeInUnwritableDirIsUsageError)
{
    Argv a{"bench", "--resume", "/nonexistent/dir/run.mwsj"};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--resume"});
    EXPECT_EXIT(
        benchutil::resumePathFlag(opt, "bench", {"--resume"}),
        testing::ExitedWithCode(2), "is not writable");
}

TEST(BenchUtilCkptFlagsDeath, ResumeStatFailureNamesPathAndErrno)
{
    // stat("/dev/null/x") fails with ENOTDIR (not ENOENT), so the
    // error must surface the failing path and the errno text rather
    // than being treated as a creatable fresh journal.
    Argv a{"bench", "--resume", "/dev/null/x.mwsj"};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--resume"});
    EXPECT_EXIT(
        benchutil::resumePathFlag(opt, "bench", {"--resume"}),
        testing::ExitedWithCode(2),
        "cannot stat '/dev/null/x\\.mwsj': Not a directory");
}

TEST(BenchUtilCkptFlags, ResumeAcceptsFreshPathInWritableDir)
{
    const std::string path = ::testing::TempDir() + "fresh.mwsj";
    ::unlink(path.c_str());
    Argv a{"bench", "--resume", path.c_str()};
    auto opt = benchutil::parse(a.argc(), a.argv(), {"--resume"});
    EXPECT_EQ(benchutil::resumePathFlag(opt, "bench", {"--resume"}),
              path);
}

} // namespace
